"""Pin the placement-routed simulator outputs bit-for-bit.

The hash-routing math moved from ``repro.sharing.carp`` into
``repro.placement.ring`` and now routes on the interned MD5 digest of
the URL (one hash per URL, shared with the summaries) instead of
re-hashing ``"{proxy}|{url}"`` per array member.  These tests freeze
the resulting owner assignments and the simulator outputs so any later
change to the ring math is a deliberate, visible break rather than a
silent drift between the simulator and the live proxy data plane.
"""

from __future__ import annotations

from repro.placement import HashRing
from repro.sharing import (
    carp_owner,
    simulate_carp,
    simulate_simple_sharing,
    simulate_single_copy_sharing,
)

PINNED_URLS = [
    f"http://server{i % 7}.example.com/path/{i}" for i in range(12)
]

#: Owner assignments frozen at the digest-routed implementation.
PINNED_OWNERS = {
    2: [1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0],
    4: [1, 0, 0, 0, 1, 3, 3, 3, 2, 2, 3, 0],
    8: [1, 6, 0, 5, 1, 5, 5, 3, 4, 2, 3, 4],
}


def test_carp_owner_assignments_are_pinned():
    for num_proxies, owners in PINNED_OWNERS.items():
        assert [
            carp_owner(url, num_proxies) for url in PINNED_URLS
        ] == owners


def test_carp_owner_matches_index_named_ring():
    ring = HashRing([str(i) for i in range(4)])
    for url in PINNED_URLS:
        assert carp_owner(url, 4) == int(ring.owner_of(url))


def test_simulate_carp_results_are_pinned(small_trace):
    r = simulate_carp(small_trace, 4, 256 * 1024)
    assert r.requests == 4000
    assert r.hits == 3158
    assert r.local_routed == 929
    assert r.remote_routed == 3071
    assert r.per_proxy_requests == [1190, 1056, 861, 893]


def test_simulate_single_copy_results_are_pinned(small_trace):
    r = simulate_single_copy_sharing(small_trace, 4, 256 * 1024)
    assert r.requests == 4000
    assert r.local_hits == 1511
    assert r.remote_hits == 1649
    assert r.remote_stale_hits == 13
    assert r.bytes_hit == 3123221


def test_simulate_simple_sharing_results_are_pinned(small_trace):
    r = simulate_simple_sharing(small_trace, 4, 256 * 1024)
    assert r.requests == 4000
    assert r.local_hits == 2547
    assert r.remote_hits == 571
    assert r.remote_stale_hits == 20
    assert r.bytes_hit == 3096210
