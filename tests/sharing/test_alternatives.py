"""Tests for the alternative-protocol baselines (CARP, directory server)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sharing.carp import CarpResult, carp_owner, simulate_carp
from repro.sharing.directory_server import simulate_directory_server
from repro.sharing.schemes import (
    simulate_global_cache,
    simulate_simple_sharing,
)
from repro.traces.model import Request, Trace


class TestCarpOwner:
    def test_deterministic(self):
        assert carp_owner("http://a.com/x", 8) == carp_owner(
            "http://a.com/x", 8
        )

    def test_within_range(self):
        for i in range(50):
            assert 0 <= carp_owner(f"http://u{i}.com/", 7) < 7

    def test_roughly_balanced(self):
        counts = [0] * 8
        for i in range(4000):
            counts[carp_owner(f"http://host{i}.net/doc{i}", 8)] += 1
        assert min(counts) > 350
        assert max(counts) < 650

    def test_rendezvous_stability(self):
        """Growing the array only moves keys TO the new member, never
        between old members -- the property CARP hashes for."""
        urls = [f"http://h{i}.com/d{i}" for i in range(500)]
        before = {u: carp_owner(u, 7) for u in urls}
        after = {u: carp_owner(u, 8) for u in urls}
        for url in urls:
            if after[url] != before[url]:
                assert after[url] == 7  # moved to the newcomer only

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            carp_owner("u", 0)


class TestCarpSimulation:
    def test_no_duplicate_storage(self, tiny_trace):
        # With one owner per URL, a repeat from ANY client hits.
        r = simulate_carp(tiny_trace, 2, 10_000)
        # /1 repeats twice, /2 once: 3 hits of 6 (same as global cache).
        g = simulate_global_cache(tiny_trace, 2, 5_000)
        assert r.hits == g.local_hits == 3

    def test_remote_routing_dominates_with_many_proxies(self, small_trace):
        r = simulate_carp(small_trace, 8, 100_000)
        # Only ~1/8 of requests hash to the client's own proxy.
        assert r.remote_routing_ratio == pytest.approx(7 / 8, abs=0.05)
        assert r.local_routed + r.remote_routed == r.requests

    def test_hit_ratio_close_to_global_cache(self, small_trace):
        carp = simulate_carp(small_trace, 4, 100_000)
        pooled = simulate_global_cache(small_trace, 4, 100_000)
        # CARP is a partitioned global cache; partitioning skew costs a
        # little but the ratios stay close.
        assert carp.hit_ratio == pytest.approx(
            pooled.total_hit_ratio, abs=0.05
        )

    def test_load_imbalance_metric(self):
        r = CarpResult(
            trace_name="t",
            num_proxies=2,
            requests=100,
            per_proxy_requests=[75, 25],
        )
        assert r.load_imbalance == pytest.approx(1.5)


class TestDirectoryServer:
    def test_hit_ratio_matches_simple_sharing(self, small_trace):
        ds, _load = simulate_directory_server(small_trace, 4, 200_000)
        oracle = simulate_simple_sharing(small_trace, 4, 200_000)
        assert ds.total_hit_ratio == pytest.approx(
            oracle.total_hit_ratio, abs=1e-9
        )
        assert ds.remote_hits == oracle.remote_hits

    def test_no_false_events(self, small_trace):
        ds, _load = simulate_directory_server(small_trace, 4, 200_000)
        # The central directory is exact and current.
        assert ds.false_hits == 0
        assert ds.false_misses == 0

    def test_server_load_accounting(self, small_trace):
        ds, load = simulate_directory_server(small_trace, 4, 200_000)
        misses = ds.requests - ds.local_hits
        assert load.queries == misses
        assert load.replies == misses
        # Every insert and evict notifies the server.
        assert load.change_notifications == ds.messages.update_messages
        assert load.total == load.queries + load.replies + (
            load.change_notifications
        )
        assert load.per_request(ds.requests) > 0.5

    def test_stale_copies_handled(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "u", 100, version=0),
                Request(1.0, 1, "u", 100, version=1),
            ]
        )
        ds, _load = simulate_directory_server(trace, 2, 10_000)
        assert ds.remote_stale_hits == 1
        assert ds.remote_hits == 0
