"""Tests for the Section III sharing schemes (Fig. 1)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sharing.schemes import (
    simulate_global_cache,
    simulate_no_sharing,
    simulate_simple_sharing,
    simulate_single_copy_sharing,
)
from repro.traces.model import Request, Trace


class TestTinyTraceByHand:
    """The 6-request fixture has an exactly computable outcome.

    Requests (client -> group with 2 groups): /1 by g0, /1 by g1,
    /2 by g0, /2 by g1, /1 by g0, /3 by g1.
    """

    CAPACITY = 10_000  # effectively infinite for the fixture

    def test_no_sharing(self, tiny_trace):
        r = simulate_no_sharing(tiny_trace, 2, self.CAPACITY)
        # g0 hits /1 on its second access; g1 never re-references.
        assert r.local_hits == 1
        assert r.remote_hits == 0
        assert r.total_hit_ratio == pytest.approx(1 / 6)

    def test_simple_sharing(self, tiny_trace):
        r = simulate_simple_sharing(tiny_trace, 2, self.CAPACITY)
        # g1's /1 and /2 are remote hits (g0 fetched them first);
        # g0's second /1 is a local hit.
        assert r.local_hits == 1
        assert r.remote_hits == 2
        assert r.total_hit_ratio == pytest.approx(0.5)

    def test_single_copy_sharing(self, tiny_trace):
        r = simulate_single_copy_sharing(tiny_trace, 2, self.CAPACITY)
        assert r.remote_hits == 2
        assert r.local_hits == 1
        assert r.total_hit_ratio == pytest.approx(0.5)

    def test_global_cache(self, tiny_trace):
        r = simulate_global_cache(tiny_trace, 2, self.CAPACITY)
        # One shared cache: /1 hit twice, /2 once.
        assert r.local_hits == 3
        assert r.total_hit_ratio == pytest.approx(0.5)


class TestSingleCopyKeepsOneCopy:
    def test_no_duplicate_caching_on_remote_hit(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "u", 100),
                Request(1.0, 1, "u", 100),  # remote hit: not copied
                Request(2.0, 1, "u", 100),  # still remote
            ]
        )
        r = simulate_single_copy_sharing(trace, 2, 10_000)
        assert r.remote_hits == 2
        assert r.local_hits == 0

    def test_simple_sharing_duplicates(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "u", 100),
                Request(1.0, 1, "u", 100),  # remote hit, copied locally
                Request(2.0, 1, "u", 100),  # now a local hit
            ]
        )
        r = simulate_simple_sharing(trace, 2, 10_000)
        assert r.remote_hits == 1
        assert r.local_hits == 1


class TestStaleness:
    def test_remote_stale_hit_counted(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "u", 100, version=0),
                Request(1.0, 1, "u", 100, version=1),  # peer copy stale
            ]
        )
        r = simulate_simple_sharing(trace, 2, 10_000)
        assert r.remote_hits == 0
        assert r.remote_stale_hits == 1

    def test_local_stale_counted(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "u", 100, version=0),
                Request(1.0, 0, "u", 100, version=1),
            ]
        )
        r = simulate_no_sharing(trace, 2, 10_000)
        assert r.local_hits == 0
        assert r.local_stale_hits == 1


class TestOrderings:
    """The orderings the paper reports in Fig. 1 on a real workload."""

    @pytest.fixture(scope="class")
    def results(self, small_trace):
        capacity = 200_000
        groups = 4
        return {
            "none": simulate_no_sharing(small_trace, groups, capacity),
            "simple": simulate_simple_sharing(small_trace, groups, capacity),
            "single": simulate_single_copy_sharing(
                small_trace, groups, capacity
            ),
            "global": simulate_global_cache(small_trace, groups, capacity),
            "global90": simulate_global_cache(
                small_trace, groups, capacity, capacity_scale=0.9
            ),
        }

    def test_sharing_beats_no_sharing(self, results):
        for name in ("simple", "single", "global"):
            assert (
                results[name].total_hit_ratio
                > results["none"].total_hit_ratio + 0.02
            )

    def test_sharing_schemes_are_close(self, results):
        ratios = [
            results[n].total_hit_ratio
            for n in ("simple", "single", "global")
        ]
        assert max(ratios) - min(ratios) < 0.08

    def test_smaller_global_cache_hits_less(self, results):
        assert (
            results["global90"].total_hit_ratio
            <= results["global"].total_hit_ratio + 1e-9
        )

    def test_request_conservation(self, results, small_trace):
        for r in results.values():
            assert r.requests == len(small_trace)
            assert r.total_hits <= r.requests


class TestValidation:
    def test_global_cache_scale_must_be_positive(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            simulate_global_cache(tiny_trace, 2, 1000, capacity_scale=0)


class TestPerProxyCapacities:
    def test_scalar_and_sequence_equivalent(self, tiny_trace):
        scalar = simulate_simple_sharing(tiny_trace, 2, 10_000)
        explicit = simulate_simple_sharing(
            tiny_trace, 2, [10_000, 10_000]
        )
        assert scalar.total_hit_ratio == explicit.total_hit_ratio

    def test_global_pools_heterogeneous_capacities(self, tiny_trace):
        r = simulate_global_cache(tiny_trace, 2, [400, 600])
        # Pooled capacity is the sum; the average is recorded.
        assert r.cache_capacity_bytes == 500

    def test_bigger_cache_for_busier_group_helps(self, small_trace):
        # Give the heavier groups more space: hit ratio must not drop
        # relative to splitting the same total evenly.
        shares = [0, 0, 0, 0]
        for req in small_trace:
            shares[req.client_id % 4] += 1
        total = 400_000
        proportional = [
            max(1, total * share // len(small_trace)) for share in shares
        ]
        even = simulate_no_sharing(small_trace, 4, total // 4)
        prop = simulate_no_sharing(small_trace, 4, proportional)
        assert prop.total_hit_ratio >= even.total_hit_ratio - 0.01

    def test_capacity_count_mismatch_rejected(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            simulate_no_sharing(tiny_trace, 2, [100])

    def test_nonpositive_capacity_rejected(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            simulate_no_sharing(tiny_trace, 2, [100, 0])
