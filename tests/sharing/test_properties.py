"""Property-based tests of the sharing simulators over random traces."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summary import SummaryConfig
from repro.sharing.schemes import (
    simulate_global_cache,
    simulate_no_sharing,
    simulate_simple_sharing,
    simulate_single_copy_sharing,
)
from repro.sharing.summary_sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_icp,
    simulate_summary_sharing,
)
from repro.traces.model import Request, Trace

requests_strategy = st.lists(
    st.tuples(
        st.integers(0, 7),  # client
        st.integers(0, 15),  # document
        st.integers(0, 1),  # version
    ),
    min_size=1,
    max_size=80,
)


def build_trace(raw) -> Trace:
    # Versions must be monotone per document for the trace to be
    # physically sensible; clamp them to a running maximum.
    latest = {}
    requests = []
    for i, (client, doc, version) in enumerate(raw):
        version = max(version, latest.get(doc, 0))
        latest[doc] = version
        requests.append(
            Request(
                timestamp=float(i),
                client_id=client,
                url=f"http://h{doc % 4}.com/d{doc}",
                size=100 + doc,
                version=version,
            )
        )
    return Trace(requests=requests, name="prop")


@given(requests_strategy, st.sampled_from([2, 3, 4]))
@settings(max_examples=60, deadline=None)
def test_conservation_across_all_schemes(raw, groups):
    """Every simulator accounts for every request exactly once and
    never reports more hits than requests."""
    trace = build_trace(raw)
    capacity = 5000
    results = [
        simulate_no_sharing(trace, groups, capacity),
        simulate_simple_sharing(trace, groups, capacity),
        simulate_single_copy_sharing(trace, groups, capacity),
        simulate_global_cache(trace, groups, capacity),
        simulate_icp(trace, groups, capacity),
    ]
    for r in results:
        assert r.requests == len(trace)
        assert 0 <= r.total_hits <= r.requests
        assert 0 <= r.bytes_hit <= r.bytes_requested

    no_share, simple = results[0], results[1]
    # Sharing can only help (oracle discovery, same caches).
    assert simple.total_hits >= no_share.local_hits


@given(
    requests_strategy,
    st.sampled_from(["exact-directory", "server-name", "bloom"]),
    st.sampled_from([0.0, 0.05, 0.5]),
)
@settings(max_examples=60, deadline=None)
def test_summary_sharing_invariants(raw, kind, threshold):
    trace = build_trace(raw)
    groups = 3
    result = simulate_summary_sharing(
        trace,
        groups,
        5000,
        SummarySharingConfig(
            summary=SummaryConfig(kind=kind, load_factor=8),
            update_policy=ThresholdUpdatePolicy(threshold),
            expected_doc_size=128,
        ),
    )
    assert result.requests == len(trace)
    # A request is at most one of: local hit, remote hit, miss.
    assert result.local_hits + result.remote_hits <= result.requests
    # False hits and stale hits only happen on non-local-hit requests.
    assert (
        result.false_hits + result.remote_stale_hits
        <= result.requests - result.local_hits
    )
    # Update messages always come in (n-1)-sized bursts.
    assert result.messages.update_messages % (groups - 1) == 0
    # Queries and replies pair up.
    assert (
        result.messages.query_messages == result.messages.reply_messages
    )


@given(requests_strategy)
@settings(max_examples=40, deadline=None)
def test_exact_directory_live_equals_icp_hits(raw):
    """With live exact summaries, summary sharing discovers exactly the
    hits ICP's flooding discovers."""
    trace = build_trace(raw)
    live = simulate_summary_sharing(
        trace,
        3,
        5000,
        SummarySharingConfig(
            summary=SummaryConfig(kind="exact-directory"),
            update_policy=ThresholdUpdatePolicy(0.0),
        ),
    )
    icp = simulate_icp(trace, 3, 5000)
    assert live.local_hits == icp.local_hits
    assert live.remote_hits == icp.remote_hits
    assert live.remote_stale_hits == icp.remote_stale_hits
    # ...with no more queries than ICP ever sends.
    assert (
        live.messages.query_messages <= icp.messages.query_messages
    )
