"""Tests for the summary cache simulator and ICP baseline (Section V)."""

from __future__ import annotations

import pytest

from repro.core.summary import SummaryConfig
from repro.errors import ConfigurationError
from repro.sharing.schemes import simulate_simple_sharing
from repro.sharing.summary_sharing import (
    IntervalUpdatePolicy,
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_icp,
    simulate_summary_sharing,
)
from repro.traces.model import Request, Trace

GROUPS = 4
CAPACITY = 200_000


def run(small_trace, **kwargs):
    defaults = dict(
        summary=SummaryConfig(kind="exact-directory"),
        update_policy=ThresholdUpdatePolicy(0.01),
        expected_doc_size=2048,
    )
    defaults.update(kwargs)
    cfg = SummarySharingConfig(**defaults)
    return simulate_summary_sharing(small_trace, GROUPS, CAPACITY, cfg)


class TestPolicies:
    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdUpdatePolicy(-0.1)
        with pytest.raises(ConfigurationError):
            ThresholdUpdatePolicy(1.5)

    def test_interval_validation(self):
        with pytest.raises(ConfigurationError):
            IntervalUpdatePolicy(0)

    def test_labels(self):
        assert ThresholdUpdatePolicy(0.01).label() == "threshold=0.01"
        assert IntervalUpdatePolicy(60).label() == "interval=60s"
        cfg = SummarySharingConfig(
            summary=SummaryConfig(kind="bloom", load_factor=8)
        )
        assert cfg.label() == "bloom-8/threshold=0.01"


class TestLiveSummariesMatchOracle:
    """Threshold 0 (no delay) with an exact directory is simple sharing."""

    def test_hit_ratio_equals_simple_sharing(self, small_trace):
        live = run(small_trace, update_policy=ThresholdUpdatePolicy(0.0))
        oracle = simulate_simple_sharing(small_trace, GROUPS, CAPACITY)
        assert live.total_hit_ratio == pytest.approx(
            oracle.total_hit_ratio, abs=1e-9
        )
        assert live.remote_hits == oracle.remote_hits

    def test_no_false_events_without_delay(self, small_trace):
        live = run(small_trace, update_policy=ThresholdUpdatePolicy(0.0))
        assert live.false_misses == 0
        assert live.false_hits == 0
        assert live.messages.update_messages == 0


class TestUpdateDelays:
    def test_delay_degrades_hit_ratio_monotonically(self, small_trace):
        ratios = []
        for threshold in (0.0, 0.01, 0.10):
            r = run(
                small_trace,
                update_policy=ThresholdUpdatePolicy(threshold),
            )
            ratios.append(r.total_hit_ratio)
        assert ratios[0] >= ratios[1] >= ratios[2] - 1e-9
        # Degradation at 1% is small (the paper: 0.02%..1.7%).
        assert ratios[0] - ratios[1] < 0.03

    def test_false_misses_grow_with_threshold(self, small_trace):
        small = run(
            small_trace, update_policy=ThresholdUpdatePolicy(0.01)
        )
        large = run(
            small_trace, update_policy=ThresholdUpdatePolicy(0.10)
        )
        assert large.false_misses >= small.false_misses

    def test_update_messages_fanout(self, small_trace):
        r = run(small_trace, update_policy=ThresholdUpdatePolicy(0.05))
        # Updates are unicast to n-1 peers, so the total is a multiple.
        assert r.messages.update_messages % (GROUPS - 1) == 0
        assert r.messages.update_messages > 0

    def test_interval_policy_updates_on_time(self, small_trace):
        r = run(
            small_trace,
            update_policy=IntervalUpdatePolicy(interval=30.0),
        )
        assert r.messages.update_messages > 0
        # At most one update per proxy per interval (plus one initial),
        # each fanned out to n-1 peers.
        per_proxy = small_trace.duration / 30.0 + 2
        max_updates = per_proxy * GROUPS * (GROUPS - 1)
        assert r.messages.update_messages <= max_updates


class TestRepresentations:
    def test_bloom_no_false_misses_beyond_delay(self, small_trace):
        """Bloom summaries are inclusive: with no update delay they can
        produce false hits but never false misses."""
        cfg = SummarySharingConfig(
            summary=SummaryConfig(kind="bloom", load_factor=16),
            update_policy=ThresholdUpdatePolicy(0.0),
            expected_doc_size=2048,
        )
        r = simulate_summary_sharing(small_trace, GROUPS, CAPACITY, cfg)
        assert r.false_misses == 0

    def test_server_name_has_most_false_hits(self, small_trace):
        results = {}
        for kind, lf in (
            ("exact-directory", 8),
            ("server-name", 8),
            ("bloom", 16),
        ):
            cfg = SummarySharingConfig(
                summary=SummaryConfig(kind=kind, load_factor=lf),
                update_policy=ThresholdUpdatePolicy(0.01),
                expected_doc_size=2048,
            )
            results[kind] = simulate_summary_sharing(
                small_trace, GROUPS, CAPACITY, cfg
            )
        assert (
            results["server-name"].false_hit_ratio
            > results["bloom"].false_hit_ratio
            > results["exact-directory"].false_hit_ratio - 1e-9
        )

    def test_bloom_memory_below_exact_directory(self, small_trace):
        exact = run(small_trace)
        bloom = run(
            small_trace,
            summary=SummaryConfig(kind="bloom", load_factor=8),
        )
        assert bloom.summary_memory_bytes < exact.summary_memory_bytes

    def test_higher_load_factor_fewer_false_hits(self, small_trace):
        lf8 = run(
            small_trace,
            summary=SummaryConfig(kind="bloom", load_factor=8),
        )
        lf32 = run(
            small_trace,
            summary=SummaryConfig(kind="bloom", load_factor=32),
        )
        assert lf32.false_hit_ratio <= lf8.false_hit_ratio
        assert lf32.summary_memory_bytes > lf8.summary_memory_bytes

    def test_hit_ratios_similar_across_representations(self, small_trace):
        ratios = []
        for kind in ("exact-directory", "bloom"):
            r = run(
                small_trace,
                summary=SummaryConfig(kind=kind, load_factor=16),
            )
            ratios.append(r.total_hit_ratio)
        assert abs(ratios[0] - ratios[1]) < 0.02


class TestIcpBaseline:
    def test_message_count_formula(self, small_trace):
        r = simulate_icp(small_trace, GROUPS, CAPACITY)
        misses = r.requests - r.local_hits
        assert r.messages.query_messages == misses * (GROUPS - 1)
        assert r.messages.reply_messages == misses * (GROUPS - 1)

    def test_icp_hit_ratio_matches_simple_sharing(self, small_trace):
        icp = simulate_icp(small_trace, GROUPS, CAPACITY)
        oracle = simulate_simple_sharing(small_trace, GROUPS, CAPACITY)
        assert icp.total_hit_ratio == pytest.approx(
            oracle.total_hit_ratio, abs=1e-9
        )

    def test_summary_cache_sends_fewer_messages(self, small_trace):
        # At laptop scale each cache holds only ~100 documents, so the
        # 1% threshold fires every few requests and updates dominate; a
        # 5% threshold is in proportion to the paper's regime (hundreds
        # of requests between updates).  The paper-scale 25-60x factor
        # is checked analytically in tests/analysis.
        icp = simulate_icp(small_trace, GROUPS, CAPACITY)
        bloom = run(
            small_trace,
            summary=SummaryConfig(kind="bloom", load_factor=16),
            update_policy=ThresholdUpdatePolicy(0.05),
        )
        assert (
            bloom.messages.total_messages
            < icp.messages.total_messages / 2
        )
        # Queries alone (the per-miss traffic ICP floods) drop by far
        # more than 2x.
        assert (
            bloom.messages.query_messages
            < icp.messages.query_messages / 4
        )

    def test_summary_cache_hit_ratio_close_to_icp(self, small_trace):
        icp = simulate_icp(small_trace, GROUPS, CAPACITY)
        bloom = run(
            small_trace,
            summary=SummaryConfig(kind="bloom", load_factor=16),
        )
        assert bloom.total_hit_ratio > icp.total_hit_ratio - 0.03


class TestAccountingInvariants:
    def test_outcomes_partition_requests(self, small_trace):
        r = run(small_trace)
        # Every request is exactly one of: local hit, remote hit, or a
        # miss (which may carry false-hit/stale/false-miss annotations).
        assert r.local_hits + r.remote_hits <= r.requests
        assert r.false_hits + r.remote_stale_hits <= (
            r.requests - r.local_hits
        )

    def test_stale_version_produces_remote_stale_hits(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "u", 100, version=0),
                Request(1.0, 1, "u", 100, version=1),
            ]
        )
        r = simulate_summary_sharing(
            trace,
            2,
            10_000,
            SummarySharingConfig(
                summary=SummaryConfig(kind="exact-directory"),
                update_policy=ThresholdUpdatePolicy(0.0),
            ),
        )
        assert r.remote_stale_hits == 1
        assert r.remote_hits == 0


class TestPacketFillPolicy:
    def test_updates_fire_at_record_threshold(self, small_trace):
        from repro.sharing.summary_sharing import PacketFillUpdatePolicy

        r = run(
            small_trace,
            summary=SummaryConfig(kind="bloom", load_factor=16),
            update_policy=PacketFillUpdatePolicy(records=64),
        )
        assert r.messages.update_messages > 0
        # Fewer, larger updates than a tight threshold policy.
        tight = run(
            small_trace,
            summary=SummaryConfig(kind="bloom", load_factor=16),
            update_policy=ThresholdUpdatePolicy(0.01),
        )
        assert (
            r.messages.update_messages < tight.messages.update_messages
        )

    def test_label_and_validation(self):
        from repro.sharing.summary_sharing import PacketFillUpdatePolicy

        assert PacketFillUpdatePolicy().label() == "packet-fill=342"
        with pytest.raises(ConfigurationError):
            PacketFillUpdatePolicy(records=0)


class TestEconomicalUpdateEncoding:
    def test_bloom_update_bytes_capped_by_whole_filter(self, small_trace):
        """At a huge threshold the delta would dwarf the bit array; the
        sender ships the whole filter instead ("whichever is smaller"),
        capping per-update bytes."""
        from repro.sharing.messages import whole_filter_update_bytes

        r = run(
            small_trace,
            summary=SummaryConfig(kind="bloom", load_factor=8),
            update_policy=ThresholdUpdatePolicy(0.9),
        )
        if r.messages.update_messages:
            per_update = (
                r.messages.update_bytes / r.messages.update_messages
            )
            # Filter sized for capacity/doc_size documents at lf 8.
            num_bits = (CAPACITY // 2048) * 8
            assert per_update <= whole_filter_update_bytes(num_bits)
