"""Tests for simulation result arithmetic."""

from __future__ import annotations

import pytest

from repro.sharing.results import MessageCounts, SharingResult


class TestMessageCounts:
    def test_totals_follow_paper_accounting(self):
        msgs = MessageCounts(
            query_messages=10,
            reply_messages=10,
            update_messages=5,
            query_bytes=700,
            reply_bytes=700,
            update_bytes=200,
        )
        # Fig. 7 counts queries + updates, not replies.
        assert msgs.total_messages == 15
        assert msgs.total_bytes == 900
        assert msgs.total_messages_with_replies == 25
        assert msgs.total_bytes_with_replies == 1600

    def test_per_request_normalization(self):
        msgs = MessageCounts(query_messages=30, update_messages=20)
        assert msgs.per_request(100) == pytest.approx(0.5)
        assert msgs.per_request(0) == 0.0

    def test_bytes_per_request(self):
        msgs = MessageCounts(query_bytes=500, update_bytes=500)
        assert msgs.bytes_per_request(100) == pytest.approx(10.0)


class TestSharingResult:
    def make(self) -> SharingResult:
        return SharingResult(
            scheme="test",
            trace_name="t",
            num_proxies=4,
            requests=1000,
            local_hits=300,
            remote_hits=100,
            false_hits=20,
            false_misses=5,
            remote_stale_hits=8,
            bytes_requested=10_000,
            bytes_hit=4_000,
            summary_memory_bytes=2048,
            cache_capacity_bytes=204_800,
        )

    def test_hit_ratios(self):
        r = self.make()
        assert r.total_hits == 400
        assert r.total_hit_ratio == pytest.approx(0.4)
        assert r.byte_hit_ratio == pytest.approx(0.4)

    def test_error_ratios(self):
        r = self.make()
        assert r.false_hit_ratio == pytest.approx(0.02)
        assert r.false_miss_ratio == pytest.approx(0.005)
        assert r.remote_stale_hit_ratio == pytest.approx(0.008)

    def test_memory_ratio(self):
        r = self.make()
        assert r.summary_memory_ratio == pytest.approx(0.01)

    def test_zero_division_guards(self):
        r = SharingResult(scheme="s", trace_name="t", num_proxies=2)
        assert r.total_hit_ratio == 0.0
        assert r.byte_hit_ratio == 0.0
        assert r.false_hit_ratio == 0.0
        assert r.messages_per_request == 0.0
        assert r.summary_memory_ratio == 0.0
