"""Tests for the Fig. 8 message-size model."""

from __future__ import annotations

from repro.sharing.messages import (
    BLOOM_FLIP_BYTES,
    BLOOM_UPDATE_HEADER_BYTES,
    DIGEST_CHANGE_BYTES,
    DIGEST_UPDATE_HEADER_BYTES,
    QUERY_MESSAGE_BYTES,
    bloom_update_bytes,
    digest_update_bytes,
    whole_filter_update_bytes,
)


def test_query_size_is_papers_70_bytes():
    # "20 bytes of header and 50 bytes of average URL"
    assert QUERY_MESSAGE_BYTES == 70


def test_digest_update_formula():
    # "20 bytes of header and 16 bytes per change"
    assert DIGEST_UPDATE_HEADER_BYTES == 20
    assert DIGEST_CHANGE_BYTES == 16
    assert digest_update_bytes(0) == 20
    assert digest_update_bytes(10) == 20 + 160


def test_bloom_update_formula():
    # "32 bytes of header plus 4 bytes per bit-flip"
    assert BLOOM_UPDATE_HEADER_BYTES == 32
    assert BLOOM_FLIP_BYTES == 4
    assert bloom_update_bytes(0) == 32
    assert bloom_update_bytes(100) == 32 + 400


def test_whole_filter_update():
    assert whole_filter_update_bytes(8) == 32 + 1
    assert whole_filter_update_bytes(8000) == 32 + 1000
    # Crossover: beyond ~num_bits/32 flips, the whole array is smaller.
    num_bits = 8000
    many_flips = num_bits // 32 + 10
    assert whole_filter_update_bytes(num_bits) < bloom_update_bytes(
        many_flips
    )
