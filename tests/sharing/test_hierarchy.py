"""Tests for the hierarchical (parent/child) sharing extension."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sharing.hierarchy import simulate_hierarchy
from repro.traces.model import Request, Trace


@pytest.fixture(scope="module")
def shared_doc_trace():
    """Two children; child 1 re-requests what child 0 fetched."""
    return Trace(
        name="hier",
        requests=[
            Request(0.0, 0, "http://a.com/1", 100),
            Request(1.0, 1, "http://a.com/1", 100),  # sibling/parent hit
            Request(2.0, 0, "http://b.com/2", 100),
            Request(3.0, 1, "http://b.com/2", 100),
            Request(4.0, 1, "http://c.com/3", 100),  # unique to child 1
        ],
    )


class TestByHand:
    def test_without_siblings_parent_absorbs_repeats(self, shared_doc_trace):
        r = simulate_hierarchy(
            shared_doc_trace,
            num_children=2,
            child_capacity=10_000,
            parent_capacity=10_000,
            sibling_sharing=False,
        )
        # Every first fetch goes to origin via the parent; the repeats
        # by the other child hit the parent's cache.
        assert r.origin_fetches == 3
        assert r.parent_hits == 2
        assert r.sibling_hits == 0
        assert r.parent_requests == 5
        assert r.total_hit_ratio == pytest.approx(2 / 5)

    def test_siblings_offload_the_parent(self, shared_doc_trace):
        r = simulate_hierarchy(
            shared_doc_trace,
            num_children=2,
            child_capacity=10_000,
            parent_capacity=10_000,
            sibling_sharing=True,
        )
        # The repeats are now sibling hits; the parent sees only the
        # three cold fetches.
        assert r.sibling_hits == 2
        assert r.parent_requests == 3
        assert r.origin_fetches == 3
        assert r.total_hit_ratio == pytest.approx(2 / 5)
        assert r.sibling_query_messages >= 2


class TestInvariants:
    def test_accounting_partitions_requests(self, small_trace):
        r = simulate_hierarchy(
            small_trace,
            num_children=4,
            child_capacity=100_000,
            parent_capacity=400_000,
        )
        assert (
            r.child_hits
            + r.sibling_hits
            + r.parent_hits
            + r.origin_fetches
            == r.requests
        )
        assert r.parent_requests == r.parent_hits + r.origin_fetches

    def test_sibling_sharing_reduces_parent_load(self, small_trace):
        kwargs = dict(
            num_children=4,
            child_capacity=100_000,
            parent_capacity=400_000,
        )
        without = simulate_hierarchy(
            small_trace, sibling_sharing=False, **kwargs
        )
        with_sib = simulate_hierarchy(
            small_trace, sibling_sharing=True, **kwargs
        )
        assert with_sib.parent_requests < without.parent_requests
        assert with_sib.sibling_hits > 0
        # Total origin avoidance stays comparable either way.
        assert abs(
            with_sib.total_hit_ratio - without.total_hit_ratio
        ) < 0.05

    def test_origin_ratio_complement(self, small_trace):
        r = simulate_hierarchy(
            small_trace,
            num_children=4,
            child_capacity=100_000,
            parent_capacity=400_000,
        )
        assert r.total_hit_ratio + r.origin_traffic_ratio == pytest.approx(
            1.0
        )

    def test_validation(self, small_trace):
        with pytest.raises(ConfigurationError):
            simulate_hierarchy(
                small_trace,
                num_children=0,
                child_capacity=1000,
                parent_capacity=1000,
            )
