"""Streamed replay is bit-exact with materialized replay.

The streaming trace engine changes how requests reach the simulators
(an mmap reader or a bare generator instead of an in-memory list) but
must not change a single counter of what they compute.  Every sharing
simulator is fed the same workload three ways -- materialized
:class:`~repro.traces.model.Trace`, :class:`~repro.traces.binary.
BinaryTraceReader`, and one-shot generator -- and the results compared
with dataclass equality (every hit, byte, and message count).
"""

from __future__ import annotations

import pytest

from repro.sharing.schemes import (
    simulate_global_cache,
    simulate_no_sharing,
    simulate_simple_sharing,
    simulate_single_copy_sharing,
)
from repro.sharing.summary_sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_icp,
    simulate_summary_sharing,
)
from repro.summaries import SummaryConfig
from repro.traces.binary import BinaryTraceReader, pack_trace

GROUPS = 4
CAPACITY = 256 * 1024


@pytest.fixture(scope="module")
def packed_path(small_trace, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("sctr") / "small.sctr")
    pack_trace(small_trace, path)
    return path


def _sources(small_trace, packed_path):
    """The three feed shapes: list-backed, mmap-backed, one-shot."""
    reader = BinaryTraceReader(packed_path)
    return {
        "trace": small_trace,
        "reader": reader,
        "generator": (r for r in small_trace.requests),
    }


@pytest.mark.parametrize(
    "simulate",
    [
        simulate_no_sharing,
        simulate_simple_sharing,
        simulate_single_copy_sharing,
        simulate_global_cache,
    ],
    ids=lambda f: f.__name__,
)
def test_schemes_identical_across_sources(
    simulate, small_trace, packed_path
):
    results = {
        label: simulate(source, GROUPS, CAPACITY)
        for label, source in _sources(small_trace, packed_path).items()
    }
    # trace_name differs by design ("stream" for the bare generator);
    # normalize it away and compare everything else.
    baseline = results["trace"]
    for label, result in results.items():
        comparable = {**result.__dict__, "trace_name": ""}
        expected = {**baseline.__dict__, "trace_name": ""}
        assert comparable == expected, label


def test_summary_sharing_identical_across_sources(
    small_trace, packed_path
):
    cfg = SummarySharingConfig(
        summary=SummaryConfig(kind="bloom", load_factor=8),
        update_policy=ThresholdUpdatePolicy(0.01),
    )
    results = {
        label: simulate_summary_sharing(source, GROUPS, CAPACITY, cfg)
        for label, source in _sources(small_trace, packed_path).items()
    }
    baseline = {**results["trace"].__dict__, "trace_name": ""}
    for label, result in results.items():
        assert {**result.__dict__, "trace_name": ""} == baseline, label


def test_icp_identical_across_sources(small_trace, packed_path):
    results = {
        label: simulate_icp(source, GROUPS, CAPACITY)
        for label, source in _sources(small_trace, packed_path).items()
    }
    baseline = {**results["trace"].__dict__, "trace_name": ""}
    for label, result in results.items():
        assert {**result.__dict__, "trace_name": ""} == baseline, label


def test_reader_keeps_trace_name(small_trace, packed_path):
    with BinaryTraceReader(packed_path) as reader:
        result = simulate_no_sharing(reader, GROUPS, CAPACITY)
    assert result.trace_name == small_trace.name


def test_generator_reports_stream_name(small_trace):
    result = simulate_no_sharing(
        (r for r in small_trace.requests), GROUPS, CAPACITY
    )
    assert result.trace_name == "stream"
