"""Tests for the cache-consistency substrate."""

from __future__ import annotations

import pytest

from repro.consistency import (
    AdaptiveTTL,
    FixedTTL,
    NeverValidate,
    OracleConsistency,
    PollEveryTime,
    simulate_consistency,
)
from repro.consistency.policies import CopyMeta
from repro.errors import ConfigurationError
from repro.traces.model import Request, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def churn_trace() -> Trace:
    return generate_trace(
        SyntheticTraceConfig(
            name="consistency",
            num_requests=8000,
            num_clients=30,
            num_documents=1500,
            mean_size=2048,
            max_size=128 * 1024,
            mod_probability=0.02,
            request_rate=10.0,
            seed=71,
        )
    )


CAPACITY = 1_000_000


class TestPolicyDecisions:
    def test_fixed_ttl_window(self):
        policy = FixedTTL(60.0)
        meta = CopyMeta(version=1, fetched_at=100.0, modified_at=0.0)
        assert policy.trust(meta, 150.0)
        assert not policy.trust(meta, 161.0)

    def test_adaptive_ttl_scales_with_age(self):
        policy = AdaptiveTTL(factor=0.5, min_ttl=10.0, max_ttl=1000.0)
        young = CopyMeta(version=1, fetched_at=100.0, modified_at=90.0)
        old = CopyMeta(version=1, fetched_at=100.0, modified_at=0.0)
        # Young doc: ttl = max(10, 0.5*10) = 10s.
        assert policy.trust(young, 109.0)
        assert not policy.trust(young, 111.0)
        # Old doc: ttl = 0.5*100 = 50s.
        assert policy.trust(old, 149.0)
        assert not policy.trust(old, 151.0)

    def test_adaptive_ttl_clamps(self):
        policy = AdaptiveTTL(factor=10.0, min_ttl=5.0, max_ttl=20.0)
        ancient = CopyMeta(version=1, fetched_at=1000.0, modified_at=0.0)
        assert not policy.trust(ancient, 1021.0)  # clamped at max_ttl

    def test_labels(self):
        assert FixedTTL(30).label() == "ttl=30s"
        assert AdaptiveTTL(0.2).label() == "adaptive-ttl(k=0.2)"
        assert OracleConsistency().label() == "oracle"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedTTL(0)
        with pytest.raises(ConfigurationError):
            AdaptiveTTL(factor=0)
        with pytest.raises(ConfigurationError):
            AdaptiveTTL(min_ttl=100, max_ttl=10)


class TestSimulation:
    def test_oracle_has_no_staleness_and_no_traffic(self, churn_trace):
        r = simulate_consistency(
            churn_trace, CAPACITY, OracleConsistency()
        )
        assert r.stale_served == 0
        assert r.validations == 0

    def test_poll_every_time_has_no_staleness(self, churn_trace):
        r = simulate_consistency(churn_trace, CAPACITY, PollEveryTime())
        assert r.stale_served == 0
        # Every served hit was validated.
        assert r.validated_hits == r.hits_served
        assert r.validations_per_request > 0.3

    def test_never_validate_serves_stale(self, churn_trace):
        r = simulate_consistency(churn_trace, CAPACITY, NeverValidate())
        assert r.stale_served > 0
        assert r.validations == 0

    def test_ttl_interpolates(self, churn_trace):
        never = simulate_consistency(
            churn_trace, CAPACITY, NeverValidate()
        )
        poll = simulate_consistency(
            churn_trace, CAPACITY, PollEveryTime()
        )
        ttl = simulate_consistency(
            churn_trace, CAPACITY, FixedTTL(120.0)
        )
        assert (
            poll.stale_serve_ratio
            <= ttl.stale_serve_ratio
            <= never.stale_serve_ratio
        )
        assert (
            never.validations_per_request
            <= ttl.validations_per_request
            <= poll.validations_per_request
        )

    def test_shorter_ttl_less_staleness_more_traffic(self, churn_trace):
        short = simulate_consistency(
            churn_trace, CAPACITY, FixedTTL(30.0)
        )
        long_ = simulate_consistency(
            churn_trace, CAPACITY, FixedTTL(600.0)
        )
        assert short.stale_serve_ratio <= long_.stale_serve_ratio
        assert (
            short.validations_per_request
            >= long_.validations_per_request
        )

    def test_accounting_conservation(self, churn_trace):
        r = simulate_consistency(
            churn_trace, CAPACITY, FixedTTL(120.0)
        )
        # Every request is served from cache or fetched from origin.
        assert r.hits_served + r.origin_fetches == r.requests
        assert r.validated_hits <= r.validations

    def test_no_churn_means_no_staleness(self):
        trace = Trace(
            requests=[
                Request(float(i), 0, f"u{i % 5}", 100, version=0)
                for i in range(50)
            ]
        )
        r = simulate_consistency(trace, 10_000, NeverValidate())
        assert r.stale_served == 0
        assert r.hits_served == 45
