"""Cross-module integration tests.

These check that independently implemented layers agree with each
other: the trace-driven simulator, the discrete-event simulator, and
the asyncio prototype all implement the same protocol, so on the same
workload their headline numbers must line up.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.summary import SummaryConfig
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_simple_sharing,
    simulate_summary_sharing,
)
from repro.simulation.experiment import run_replay_experiment
from repro.simulation.nodes import SimProxyConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

NUM_PROXIES = 4


@pytest.fixture(scope="module")
def workload():
    return generate_trace(
        SyntheticTraceConfig(
            name="integration",
            num_requests=2000,
            num_clients=16,
            num_documents=600,
            mean_size=1536,
            max_size=32 * 1024,
            mod_probability=0.0,
            seed=404,
        )
    )


CAPACITY = 400_000


class TestSimulatorsAgree:
    def test_trace_sim_and_des_hit_ratios_match(self, workload):
        """The analytic trace simulator and the discrete-event cluster
        run the same caches over the same requests: their hit ratios
        must agree closely (the DES adds timing, not policy)."""
        analytic = simulate_simple_sharing(
            workload, NUM_PROXIES, CAPACITY
        )
        des = run_replay_experiment(
            workload,
            ProxyMode.ICP,
            num_proxies=NUM_PROXIES,
            clients_per_proxy=1,  # serial per proxy: same order
            proxy_config=SimProxyConfig(cache_capacity=CAPACITY),
        )
        assert des.hit_ratio == pytest.approx(
            analytic.total_hit_ratio, abs=0.02
        )

    def test_trace_sim_and_prototype_agree(self, workload):
        """The asyncio prototype over real sockets lands near the
        trace simulator's hit ratio for the same SC-ICP config."""
        cfg = SummarySharingConfig(
            summary=SummaryConfig(kind="bloom", load_factor=8),
            update_policy=ThresholdUpdatePolicy(0.02),
            expected_doc_size=1536,
        )
        analytic = simulate_summary_sharing(
            workload, NUM_PROXIES, CAPACITY, cfg
        )

        async def run_prototype():
            base = ProxyConfig(
                summary=SummaryConfig(kind="bloom", load_factor=8),
                expected_doc_size=1536,
                update_threshold=0.02,
            )
            async with ProxyCluster(
                num_proxies=NUM_PROXIES,
                mode=ProxyMode.SC_ICP,
                cache_capacity=CAPACITY,
                base_config=base,
            ) as cluster:
                return await cluster.replay(
                    workload, clients_per_proxy=1
                )

        prototype = asyncio.run(run_prototype())
        # The prototype's freshness model is presence-based and its
        # update timing is asynchronous, so allow a few points of slack.
        assert prototype.total_hit_ratio == pytest.approx(
            analytic.total_hit_ratio, abs=0.05
        )
        # Both find a meaningful number of remote hits.
        proto_remote = sum(
            s.remote_hits for s in prototype.proxy_stats
        )
        assert proto_remote > 0
        assert analytic.remote_hits > 0


class TestPublicApi:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_alls_resolve(self):
        import importlib

        for module_name in (
            "repro.core",
            "repro.cache",
            "repro.traces",
            "repro.sharing",
            "repro.protocol",
            "repro.proxy",
            "repro.simulation",
            "repro.benchmarkkit",
            "repro.analysis",
            "repro.obs",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert getattr(module, name) is not None, (
                    f"{module_name}.{name} missing"
                )
