"""Live-cluster tests of the unified summary backend.

The prototype must run every Section V representation end to end:
representation-tagged DIRUPDATEs install remote copies at the peers,
and remote hits resolve through those copies.  The resize tests cover
the whole-filter resync path and the clean rejection of stale
old-geometry deltas (the proxy never guesses at a peer's geometry).
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

import pytest

from repro.protocol.wire import DirUpdate
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.summaries import SummaryConfig, ThresholdUpdatePolicy
from repro.summaries.bloom import BloomRemote
from repro.summaries.exact import ExactDirectoryRemote
from repro.summaries.servername import ServerNameRemote

REMOTE_TYPES = {
    "bloom": BloomRemote,
    "exact-directory": ExactDirectoryRemote,
    "server-name": ServerNameRemote,
}


def run(coro):
    return asyncio.run(coro)


def config_for(kind: str, **overrides) -> ProxyConfig:
    kwargs = {
        "summary": SummaryConfig(kind=kind, load_factor=8),
        "expected_doc_size": 1024,
        "update_threshold": 0.01,
    }
    kwargs.update(overrides)
    return ProxyConfig(**kwargs)


class TestRepresentationsEndToEnd:
    @pytest.mark.parametrize(
        "kind", ["bloom", "exact-directory", "server-name"]
    )
    def test_remote_hits_resolve_through_peer_summaries(self, kind):
        """Each representation's DIRUPDATEs must install a remote copy
        of the right type and steer the requester to the peer that
        holds the document."""

        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=config_for(kind),
            ) as cluster:
                d0 = cluster.driver_for(0)
                # Distinct server names so the server-name summary has
                # real content, not one collapsed entry.
                urls = [f"http://s{i}.rep.net/doc{i}" for i in range(30)]
                for url in urls:
                    await d0.fetch(url, size=512)
                await asyncio.sleep(0.1)
                proxy0, proxy1 = cluster.proxies
                view = proxy1.peer_summary(
                    (proxy0.config.host, proxy0.icp_port)
                )
                d1 = cluster.driver_for(1)
                body = await d1.fetch(urls[5], size=512)
                return proxy0, proxy1, view, urls, body

        proxy0, proxy1, view, urls, body = run(scenario())
        assert proxy0.stats.dirupdates_sent > 0
        assert isinstance(view, REMOTE_TYPES[kind])
        coverage = sum(view.may_contain(u) for u in urls)
        assert coverage > len(urls) * 0.9
        assert proxy1.stats.remote_hits == 1
        assert len(body) == 512
        assert proxy1.stats.dirupdate_rejects == 0

    @pytest.mark.parametrize("kind", ["exact-directory", "server-name"])
    def test_set_updates_carry_removals(self, kind):
        """Evictions must reach the peers as removal records, so the
        remote copy tracks the true directory, not its union."""

        async def scenario():
            config = config_for(kind, update_threshold=0.0)
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=16 * 1024,  # tiny: forces evictions
                base_config=config,
            ) as cluster:
                d0 = cluster.driver_for(0)
                urls = [f"http://e{i}.rm.net/d{i}" for i in range(24)]
                for url in urls:
                    await d0.fetch(url, size=4096)
                await asyncio.sleep(0.1)
                proxy0, proxy1 = cluster.proxies
                view = proxy1.peer_summary(
                    (proxy0.config.host, proxy0.icp_port)
                )
                return proxy0, view, urls

        proxy0, view, urls = run(scenario())
        assert proxy0.cache.stats.evictions > 0
        assert view is not None
        # The remote copy mirrors the live directory: old evicted
        # entries are gone from the exact copy (server names may
        # legitimately linger only while another doc shares them,
        # which these URLs never do).
        held = {u for u in urls if view.may_contain(u)}
        cached = {u for u in urls if u in proxy0.cache}
        assert held == cached


class TestLiveThreshold:
    def test_zero_threshold_ships_update_per_insert(self):
        """update_threshold=0 is the paper's no-delay line: every
        insert is announced immediately."""

        async def scenario():
            config = config_for("bloom", update_threshold=0.0)
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=config,
            ) as cluster:
                d0 = cluster.driver_for(0)
                sent_after_each = []
                for i in range(10):
                    await d0.fetch(f"http://live.net/d{i}", size=512)
                    sent_after_each.append(
                        cluster.proxies[0].stats.dirupdates_sent
                    )
                return sent_after_each

        sent_after_each = run(scenario())
        # One peer, one small delta per insert: the counter advances
        # with every single fetch.
        assert sent_after_each == list(range(1, 11))

    def test_zero_threshold_policy_is_live(self):
        assert ThresholdUpdatePolicy(0.0).live is True
        assert ThresholdUpdatePolicy(0.01).live is False


class TestResizeResync:
    def _scenario_result(self):
        async def scenario():
            config = config_for(
                "bloom",
                expected_doc_size=32 * 1024,  # drastically undersized
                update_threshold=0.05,
            )
            async with ProxyCluster(
                num_proxies=3,
                mode=ProxyMode.SC_ICP,
                cache_capacity=2 * 2**20,
                base_config=config,
            ) as cluster:
                d0 = cluster.driver_for(0)
                urls = [f"http://rz.net/d{i}" for i in range(200)]
                for url in urls:
                    await d0.fetch(url, size=512)
                await asyncio.sleep(0.1)
                proxy0, proxy1, proxy2 = cluster.proxies
                addr0 = (proxy0.config.host, proxy0.icp_port)
                views = [
                    proxy1.peer_summary(addr0),
                    proxy2.peer_summary(addr0),
                ]

                # Inject a stale delta with the pre-resize geometry, as
                # if it had been in flight across the resize.
                old_bits = proxy0.summary.num_bits // 2
                fn_num, fn_bits = proxy0.summary.hash_family.spec()
                stale = DirUpdate(
                    function_num=fn_num,
                    function_bits=fn_bits,
                    bit_array_size=old_bits,
                    flips=((1, True), (2, True)),
                )
                rejects_before = proxy1.stats.dirupdate_rejects
                proxy1._on_datagram(stale.encode(), addr0)

                d1 = cluster.driver_for(1)
                await d1.fetch(urls[7], size=512)
                return (
                    proxy0,
                    proxy1,
                    views,
                    urls,
                    rejects_before,
                )

        return run(scenario())

    def test_peers_resync_through_digest_and_reject_stale_deltas(self):
        proxy0, proxy1, views, urls, rejects_before = (
            self._scenario_result()
        )
        assert proxy0.stats.summary_resizes >= 1
        # The registry counter tracks the stat (and carries the
        # representation label).
        counter = proxy0.registry.counter(
            "proxy_summary_resizes_total",
            labels={"representation": "bloom"},
        )
        assert counter.value == proxy0.stats.summary_resizes

        # Every peer converged on the post-resize geometry with no
        # stale view: remote probes answer for the current directory.
        for view in views:
            assert view is not None
            assert view.num_bits == proxy0.summary.num_bits
            coverage = sum(view.may_contain(u) for u in urls)
            assert coverage > len(urls) * 0.9

        # The stale old-geometry delta was rejected cleanly: counted,
        # copy untouched, proxy still serving.
        assert proxy1.stats.dirupdate_rejects == rejects_before + 1
        assert views[0].num_bits == proxy0.summary.num_bits
        assert proxy1.stats.remote_hits == 1
