"""End-to-end tests of the asyncio proxy prototype on localhost."""

from __future__ import annotations

import asyncio
from dataclasses import replace

import pytest

from repro.core.summary import SummaryConfig
from repro.errors import ConfigurationError
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.proxy.http import read_response, synth_body, write_request
from repro.traces.model import Request, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


def run(coro):
    return asyncio.run(coro)


def mini_trace(n: int = 300, clients: int = 8, docs: int = 100) -> Trace:
    return generate_trace(
        SyntheticTraceConfig(
            name="cluster-test",
            num_requests=n,
            num_clients=clients,
            num_documents=docs,
            mean_size=1024,
            max_size=32 * 1024,
            mod_probability=0.0,
            seed=21,
        )
    )


# A small cache so caching behaviour (not capacity) dominates; a small
# filter so DIRUPDATE messages stay light.
BASE_CONFIG = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
    update_threshold=0.01,
)


class TestModes:
    def test_no_icp_sends_no_udp(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=3,
                mode=ProxyMode.NO_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                result = await cluster.replay(mini_trace())
            return result

        result = run(scenario())
        assert result.udp_total == 0
        assert sum(s.remote_hits for s in result.proxy_stats) == 0
        assert result.total_hit_ratio > 0.1

    def test_icp_finds_remote_hits(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=3,
                mode=ProxyMode.ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                return await cluster.replay(mini_trace())

        result = run(scenario())
        assert sum(s.remote_hits for s in result.proxy_stats) > 0
        assert result.udp_total > 0
        # ICP multicasts on every miss: queries sent = (n-1) x misses
        # that reached the peer stage.
        queries = sum(s.icp_queries_sent for s in result.proxy_stats)
        assert queries % 2 == 0  # every query goes to exactly 2 peers

    def test_sc_icp_matches_icp_hit_ratio_with_less_udp(self):
        async def scenario(mode):
            async with ProxyCluster(
                num_proxies=3,
                mode=mode,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                return await cluster.replay(mini_trace())

        icp = run(scenario(ProxyMode.ICP))
        sc = run(scenario(ProxyMode.SC_ICP))
        assert sc.total_hit_ratio > icp.total_hit_ratio - 0.05
        icp_queries = sum(s.icp_queries_sent for s in icp.proxy_stats)
        sc_queries = sum(s.icp_queries_sent for s in sc.proxy_stats)
        assert sc_queries < icp_queries / 2
        assert sum(s.dirupdates_sent for s in sc.proxy_stats) > 0

    def test_modes_serve_identical_hit_counts_for_disjoint_clients(self):
        # With disjoint per-proxy document spaces there are no remote
        # hits, so every mode must produce the same hit ratio (the
        # Table II control).
        requests = []
        for i in range(240):
            client = i % 6
            doc = (i // 12) * 6 + client  # disjoint per client
            requests.append(
                Request(float(i), client, f"http://c{client}.com/d{doc}", 512)
            )
        requests_twice = requests + [
            replace_ts(r, 240 + i) for i, r in enumerate(requests)
        ]
        trace = Trace(requests=requests_twice, name="disjoint")

        async def scenario(mode):
            async with ProxyCluster(
                num_proxies=3,
                mode=mode,
                cache_capacity=1024 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                # One serial driver per proxy: concurrent drivers would
                # let duplicate in-flight requests resolve differently
                # per mode and blur the comparison.
                return await cluster.replay(trace, clients_per_proxy=1)

        ratios = [
            run(scenario(mode)).total_hit_ratio
            for mode in (ProxyMode.NO_ICP, ProxyMode.ICP, ProxyMode.SC_ICP)
        ]
        assert ratios[0] == pytest.approx(ratios[1], abs=1e-9)
        assert ratios[0] == pytest.approx(ratios[2], abs=1e-9)


def replace_ts(request: Request, ts: float) -> Request:
    return Request(
        timestamp=ts,
        client_id=request.client_id,
        url=request.url,
        size=request.size,
        version=request.version,
    )


class TestDataIntegrity:
    def test_bodies_survive_proxy_and_peer_path(self):
        """Every byte served (direct, cached, or via a peer) matches the
        origin's deterministic content."""

        async def scenario():
            mismatches = []
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                d0 = cluster.driver_for(0)
                d1 = cluster.driver_for(1)
                for i in range(20):
                    url = f"http://data.com/doc{i}"
                    body0 = await d0.fetch(url, size=700 + i)
                    body1 = await d1.fetch(url, size=700 + i)
                    expected = synth_body(url, 700 + i)
                    if body0 != expected or body1 != expected:
                        mismatches.append(url)
            return mismatches

        assert run(scenario()) == []

    def test_only_if_cached_gets_504_on_miss(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                base_config=BASE_CONFIG,
            ) as cluster:
                proxy = cluster.proxies[0]
                reader, writer = await asyncio.open_connection(
                    proxy.config.host, proxy.http_port
                )
                write_request(
                    writer,
                    "http://nowhere.com/x",
                    {"X-Only-If-Cached": "1"},
                )
                await writer.drain()
                response = await read_response(reader)
                writer.close()
                return response

        assert run(scenario()).status == 504


class TestSummaryPropagation:
    def test_dirupdates_install_peer_summaries(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                d0 = cluster.driver_for(0)
                urls = [f"http://p.com/d{i}" for i in range(40)]
                for url in urls:
                    await d0.fetch(url, size=512)
                # Give datagrams a beat to land.
                await asyncio.sleep(0.1)
                proxy0, proxy1 = cluster.proxies
                peer_view = proxy1.peer_summary(
                    (proxy0.config.host, proxy0.icp_port)
                )
                return urls, peer_view

        urls, peer_view = run(scenario())
        assert peer_view is not None
        hits = sum(peer_view.may_contain(u) for u in urls)
        # The threshold delays the tail, but most inserted URLs must
        # already be visible at the peer.
        assert hits > len(urls) * 0.5

    def test_reset_peer_forgets_summary(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                d0 = cluster.driver_for(0)
                for i in range(40):
                    await d0.fetch(f"http://p.com/d{i}", size=512)
                await asyncio.sleep(0.1)
                proxy0, proxy1 = cluster.proxies
                addr = (proxy0.config.host, proxy0.icp_port)
                proxy1.reset_peer(addr)
                return proxy1.peer_summary(addr)

        assert run(scenario()) is None


class TestClientDriver:
    def test_report_tracks_sources(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                base_config=BASE_CONFIG,
            ) as cluster:
                driver = cluster.driver_for(0)
                await driver.fetch("http://r.com/x", size=256)
                await driver.fetch("http://r.com/x", size=256)
                return driver.report

        report = run(scenario())
        assert report.requests == 2
        assert report.cache_sources.get("MISS") == 1
        assert report.cache_sources.get("HIT") == 1
        assert report.mean_latency > 0
        assert report.bytes_received == 512


class TestValidation:
    def test_cluster_requires_proxies(self):
        with pytest.raises(ConfigurationError):
            ProxyCluster(num_proxies=0)

    def test_unknown_assignment(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, base_config=BASE_CONFIG
            ) as cluster:
                await cluster.replay(mini_trace(10), assignment="zigzag")

        with pytest.raises(ConfigurationError):
            run(scenario())

    def test_digest_encoding_requires_bloom_summary(self):
        # Whole-filter digests (ICP_OP_DIGEST) are a Bloom-only wire
        # form; set representations must stick with delta updates.
        with pytest.raises(ConfigurationError):
            ProxyConfig(
                summary=SummaryConfig(kind="exact-directory"),
                update_encoding="digest",
            )

    def test_non_bloom_summaries_accepted(self):
        for kind in ("exact-directory", "server-name"):
            config = ProxyConfig(summary=SummaryConfig(kind=kind))
            assert config.summary.kind == kind


class TestDigestEncoding:
    def test_digest_updates_install_peer_summaries(self):
        """The cache-digest variant (whole-filter ICP_OP_DIGEST chunks)
        propagates summaries just like DIRUPDATE deltas."""

        async def scenario():
            config = replace(BASE_CONFIG, update_encoding="digest")
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=config,
            ) as cluster:
                d0 = cluster.driver_for(0)
                urls = [f"http://dg.com/d{i}" for i in range(40)]
                for url in urls:
                    await d0.fetch(url, size=512)
                await asyncio.sleep(0.1)
                proxy0, proxy1 = cluster.proxies
                view = proxy1.peer_summary(
                    (proxy0.config.host, proxy0.icp_port)
                )
                # Proxy 1 can now take remote hits via the digest view.
                d1 = cluster.driver_for(1)
                await d1.fetch(urls[0], size=512)
                return urls, view, proxy1.stats

        urls, view, stats = run(scenario())
        assert view is not None
        hits = sum(view.may_contain(u) for u in urls)
        assert hits > len(urls) * 0.5
        assert stats.remote_hits == 1

    def test_bad_encoding_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(BASE_CONFIG, update_encoding="carrier-pigeon")


class TestStatsEndpoint:
    def test_stats_json_reflects_activity(self):
        import json

        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                base_config=BASE_CONFIG,
            ) as cluster:
                driver = cluster.driver_for(0)
                await driver.fetch("http://s.com/a", size=256)
                await driver.fetch("http://s.com/a", size=256)
                proxy = cluster.proxies[0]
                reader, writer = await asyncio.open_connection(
                    proxy.config.host, proxy.http_port
                )
                write_request(writer, "/__stats__")
                await writer.drain()
                response = await read_response(reader)
                writer.close()
                return response

        response = run(scenario())
        assert response.status == 200
        assert response.header("content-type") == "application/json"
        stats = json.loads(response.body)
        assert stats["http_requests"] == 2
        assert stats["local_hits"] == 1
        assert stats["cache_entries"] == 1
        assert stats["mode"] == "no-icp"
        assert stats["cache_used_bytes"] == 256


class TestSummaryResize:
    def test_filter_grows_and_peers_resync(self):
        """When the cache holds far more documents than the filter was
        sized for, the proxy rebuilds at double the bits and resyncs
        peers with a whole-filter digest."""

        async def scenario():
            config = replace(
                BASE_CONFIG,
                expected_doc_size=32 * 1024,  # drastically undersized
                update_threshold=0.05,
            )
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=2 * 2**20,
                base_config=config,
            ) as cluster:
                d0 = cluster.driver_for(0)
                urls = [f"http://rs.com/d{i}" for i in range(200)]
                for url in urls:
                    await d0.fetch(url, size=512)
                await asyncio.sleep(0.1)
                proxy0, proxy1 = cluster.proxies
                view = proxy1.peer_summary(
                    (proxy0.config.host, proxy0.icp_port)
                )
                d1 = cluster.driver_for(1)
                await d1.fetch(urls[3], size=512)
                return proxy0, proxy1, view, urls

        proxy0, proxy1, view, urls = run(scenario())
        assert proxy0.stats.summary_resizes >= 1
        assert view is not None
        assert view.num_bits == proxy0.summary.num_bits
        coverage = sum(view.may_contain(u) for u in urls)
        assert coverage > len(urls) * 0.9
        assert proxy1.stats.remote_hits == 1

    def test_resize_disabled(self):
        async def scenario():
            config = replace(
                BASE_CONFIG,
                expected_doc_size=32 * 1024,
                resize_threshold=0.0,
            )
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.SC_ICP,
                cache_capacity=2 * 2**20,
                base_config=config,
            ) as cluster:
                d0 = cluster.driver_for(0)
                for i in range(150):
                    await d0.fetch(f"http://nr.com/d{i}", size=512)
                return cluster.proxies[0].stats

        stats = run(scenario())
        assert stats.summary_resizes == 0
