"""Regression tests for cancellation unwinding through the data plane.

Under asyncio every ``await`` is a cancellation point, and
``except Exception`` does not catch ``CancelledError``.  SC008 flagged
(and this PR fixed) two leak classes on that path: spans that never
end and pooled connections that never return to the pool.  These tests
cancel a task mid-fetch and assert both resources are accounted for.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

from repro.core.summary import SummaryConfig
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode


def run(coro):
    return asyncio.run(coro)


BASE_CONFIG = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
    update_threshold=0.01,
)


class TestCancelledFetch:
    def test_pooled_connection_released_on_cancel(self):
        # Cancel a fetch while the exchange awaits the (slow) origin:
        # the connection must be discarded back through the pool, not
        # stranded between acquire and release.
        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                base_config=BASE_CONFIG,
                origin_delay=5.0,
            ) as cluster:
                proxy = cluster.proxies[0]
                host, port = proxy.origin_address
                task = asyncio.create_task(
                    proxy._fetch(host, port, "http://slow.com/d", {})
                )
                # Let the task acquire a connection and start awaiting
                # the origin's (delayed) response.
                for _ in range(20):
                    await asyncio.sleep(0)
                assert proxy._pool.stats.created == 1
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                return proxy._pool.stats, proxy._pool.total_idle

        stats, idle = run(scenario())
        # Every created connection is either idle or discarded -- a
        # leak would leave created > discarded + idle.
        assert stats.created == 1
        assert stats.discarded == 1
        assert idle == 0

    def test_span_ended_on_cancelled_origin_fetch(self):
        # The origin.fetch span is opened before the await that the
        # cancellation lands on; the with-protocol must still end it.
        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                base_config=replace(BASE_CONFIG, trace_capacity=64),
                origin_delay=5.0,
            ) as cluster:
                proxy = cluster.proxies[0]
                task = asyncio.create_task(
                    proxy._fetch_from_origin("http://slow.com/d", "128")
                )
                for _ in range(20):
                    await asyncio.sleep(0)
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                return proxy.spans.spans(name="origin.fetch")

        spans = run(scenario())
        assert len(spans) == 1
        assert spans[0].duration is not None
        assert spans[0].status == "cancelled"
