"""Keep-alive semantics of the proxy data plane.

Covers the request loop in ``SummaryCacheProxy._handle_http``: multiple
requests on one connection, pipelining order, ``Connection: close``
fallback, idle-timeout reaping, mid-stream client disconnects,
per-connection request caps, upstream connection pooling, and --
the acceptance bar for the keep-alive rework -- bit-identical cache
behaviour versus the one-connection-per-GET discipline.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

from repro.core.summary import SummaryConfig
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.proxy.client import ClientDriver
from repro.proxy.http import read_response, synth_body, write_request


def run(coro):
    return asyncio.run(coro)


BASE_CONFIG = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
    update_threshold=0.01,
)


async def _connect(cluster, proxy_index=0):
    proxy = cluster.proxies[proxy_index]
    return await asyncio.open_connection(proxy.config.host, proxy.http_port)


class TestKeepAliveLoop:
    def test_multiple_requests_one_connection(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                reader, writer = await _connect(cluster)
                responses = []
                for i in range(3):
                    write_request(
                        writer,
                        f"http://ka.com/d{i}",
                        {"X-Size": "128"},
                        keep_alive=True,
                    )
                    await writer.drain()
                    responses.append(await read_response(reader))
                writer.close()
                return responses, cluster.proxies[0].stats

        responses, stats = run(scenario())
        assert [r.status for r in responses] == [200, 200, 200]
        assert all(r.keep_alive for r in responses)
        assert stats.http_requests == 3

    def test_pipelined_requests_answered_in_order(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                reader, writer = await _connect(cluster)
                urls = [f"http://pipe.com/d{i}" for i in range(5)]
                # Write every request before reading any response.
                for i, url in enumerate(urls):
                    write_request(
                        writer,
                        url,
                        {"X-Size": str(200 + i)},
                        keep_alive=True,
                    )
                await writer.drain()
                bodies = [
                    (await read_response(reader)).body for _ in urls
                ]
                writer.close()
                return urls, bodies

        urls, bodies = run(scenario())
        # Responses must arrive in request order, each with the right
        # (size-distinguishable, URL-deterministic) body.
        assert bodies == [
            synth_body(url, 200 + i) for i, url in enumerate(urls)
        ]

    def test_connection_close_fallback(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                reader, writer = await _connect(cluster)
                write_request(
                    writer, "http://cl.com/x", {"X-Size": "64"},
                    keep_alive=False,
                )
                await writer.drain()
                response = await read_response(reader)
                # The proxy must close its side after a close response.
                trailing = await reader.read(1)
                writer.close()
                return response, trailing

        response, trailing = run(scenario())
        assert response.status == 200
        assert not response.keep_alive
        assert trailing == b""

    def test_http10_defaults_to_close(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                reader, writer = await _connect(cluster)
                writer.write(
                    b"GET http://old.com/x HTTP/1.0\r\nX-Size: 64\r\n\r\n"
                )
                await writer.drain()
                response = await read_response(reader)
                trailing = await reader.read(1)
                writer.close()
                return response, trailing

        response, trailing = run(scenario())
        assert response.status == 200
        assert not response.keep_alive
        assert trailing == b""

    def test_idle_timeout_closes_connection(self):
        async def scenario():
            config = replace(BASE_CONFIG, idle_timeout=0.1)
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=config
            ) as cluster:
                reader, writer = await _connect(cluster)
                write_request(
                    writer, "http://idle.com/x", {"X-Size": "64"},
                    keep_alive=True,
                )
                await writer.drain()
                response = await read_response(reader)
                # Sit idle past the timeout; the proxy reaps us.
                trailing = await asyncio.wait_for(reader.read(1), timeout=2.0)
                writer.close()
                return response, trailing

        response, trailing = run(scenario())
        assert response.keep_alive
        assert trailing == b""

    def test_max_requests_per_connection_forces_close(self):
        async def scenario():
            config = replace(BASE_CONFIG, max_requests_per_connection=2)
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=config
            ) as cluster:
                reader, writer = await _connect(cluster)
                responses = []
                for i in range(2):
                    write_request(
                        writer,
                        f"http://cap.com/d{i}",
                        {"X-Size": "64"},
                        keep_alive=True,
                    )
                    await writer.drain()
                    responses.append(await read_response(reader))
                writer.close()
                return responses

        responses = run(scenario())
        assert responses[0].keep_alive
        assert not responses[1].keep_alive

    def test_mid_stream_client_disconnect_is_survived(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                # Ask for a large body, then vanish without reading it.
                reader, writer = await _connect(cluster)
                write_request(
                    writer,
                    "http://gone.com/big",
                    {"X-Size": str(4 * 1024 * 1024)},
                    keep_alive=True,
                )
                await writer.drain()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                # The proxy must still serve subsequent clients.
                driver = cluster.driver_for(0)
                body = await driver.fetch("http://gone.com/after", size=256)
                await driver.close()
                # Handler teardown is asynchronous; wait for the gauge
                # to confirm both connections were reaped.
                registry = cluster.proxies[0].registry
                open_conns = registry.value("proxy_connections_open")
                for _ in range(100):
                    if open_conns == 0:
                        break
                    await asyncio.sleep(0.02)
                    open_conns = registry.value("proxy_connections_open")
                return body, open_conns

        body, open_conns = run(scenario())
        assert body == synth_body("http://gone.com/after", 256)
        assert open_conns == 0

    def test_malformed_request_gets_400_and_close(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                reader, writer = await _connect(cluster)
                writer.write(b"BLARGH\r\n\r\n")
                await writer.drain()
                response = await read_response(reader)
                trailing = await reader.read(1)
                writer.close()
                return response, trailing

        response, trailing = run(scenario())
        assert response.status == 400
        assert not response.keep_alive
        assert trailing == b""

    def test_oversized_head_gets_400_not_traceback(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                reader, writer = await _connect(cluster)
                # 20 KiB of padding blows the 16 KiB head cap but stays
                # under the 64 KiB stream limit.
                writer.write(
                    b"GET http://big.com/x HTTP/1.1\r\n"
                    + b"X-Padding: " + b"a" * (20 * 1024) + b"\r\n\r\n"
                )
                await writer.drain()
                response = await read_response(reader)
                writer.close()
                return response

        assert run(scenario()).status == 400


class TestClientDriverKeepAlive:
    def test_driver_reuses_one_connection(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                driver = cluster.driver_for(0)
                for i in range(5):
                    await driver.fetch(f"http://dr.com/d{i}", size=128)
                await driver.close()
                return driver

        driver = run(scenario())
        assert driver.report.requests == 5
        assert driver.connections_opened == 1

    def test_non_keepalive_driver_opens_one_per_request(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                proxy = cluster.proxies[0]
                driver = ClientDriver(
                    proxy.config.host, proxy.http_port, keep_alive=False
                )
                for i in range(4):
                    await driver.fetch(f"http://nk.com/d{i}", size=128)
                return driver

        driver = run(scenario())
        assert driver.connections_opened == 4

    def test_driver_reconnects_after_server_cap(self):
        async def scenario():
            config = replace(BASE_CONFIG, max_requests_per_connection=2)
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=config
            ) as cluster:
                driver = cluster.driver_for(0)
                for i in range(6):
                    await driver.fetch(f"http://rc.com/d{i}", size=128)
                await driver.close()
                return driver

        driver = run(scenario())
        assert driver.report.errors == 0
        # 6 requests at 2 per connection = 3 connections.
        assert driver.connections_opened == 3


class TestUpstreamPooling:
    def test_pool_reuse_across_sequential_misses(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=BASE_CONFIG
            ) as cluster:
                driver = cluster.driver_for(0)
                for i in range(6):  # distinct URLs: all origin fetches
                    await driver.fetch(f"http://pool.com/d{i}", size=128)
                await driver.close()
                return cluster.proxies[0]._pool.stats

        stats = run(scenario())
        # First miss opens the origin connection; the rest ride it.
        assert stats.created == 1
        assert stats.reused == 5

    def test_pool_disabled_opens_per_fetch(self):
        async def scenario():
            config = replace(BASE_CONFIG, pool_size=0)
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=config
            ) as cluster:
                driver = cluster.driver_for(0)
                for i in range(4):
                    await driver.fetch(f"http://np.com/d{i}", size=128)
                await driver.close()
                proxy = cluster.proxies[0]
                return proxy._pool.stats, proxy.stats

        pool_stats, stats = run(scenario())
        assert pool_stats.created == 0  # pool bypassed entirely
        assert stats.origin_fetches == 4

    def test_stale_pooled_connection_is_retried(self):
        async def scenario():
            config = replace(BASE_CONFIG, pool_idle_timeout=30.0)
            async with ProxyCluster(
                num_proxies=1, mode=ProxyMode.NO_ICP, base_config=config
            ) as cluster:
                driver = cluster.driver_for(0)
                await driver.fetch("http://st.com/d0", size=128)
                # Kill the pooled origin connection behind the pool's
                # back: the next fetch must fall back to a fresh socket.
                proxy = cluster.proxies[0]
                for conns in proxy._pool._idle.values():
                    for conn in conns:
                        conn.writer.transport.abort()
                await asyncio.sleep(0.05)
                body = await driver.fetch("http://st.com/d1", size=128)
                await driver.close()
                return body

        body = run(scenario())
        assert body == synth_body("http://st.com/d1", 128)


class TestCacheBehaviourEquivalence:
    def test_keepalive_matches_per_connection_cache_behaviour(self):
        """The keep-alive data plane must be bit-identical in cache
        terms: same hits, same remote hits, same ICP message counts as
        the one-connection-per-GET discipline (the acceptance bar for
        the rework)."""

        urls = [f"http://eq.com/d{i}" for i in range(30)]

        async def scenario(keep_alive: bool):
            base = BASE_CONFIG if keep_alive else replace(
                BASE_CONFIG, pool_size=0
            )
            async with ProxyCluster(
                num_proxies=3,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=base,
            ) as cluster:
                p0 = cluster.proxies[0]
                d0 = ClientDriver(
                    p0.config.host, p0.http_port, keep_alive=keep_alive
                )
                # Phase 1: populate proxy 0.
                for url in urls:
                    await d0.fetch(url, size=512)
                await d0.close()
                await asyncio.sleep(0.2)  # let DIRUPDATEs land
                # Phase 2: the same URLs via proxy 1 -> remote hits.
                p1 = cluster.proxies[1]
                d1 = ClientDriver(
                    p1.config.host, p1.http_port, keep_alive=keep_alive
                )
                sources = []
                for url in urls:
                    await d1.fetch(url, size=512)
                await d1.close()
                sources.append(dict(d1.report.cache_sources))
                return (
                    [
                        (
                            s.http_requests,
                            s.local_hits,
                            s.remote_hits,
                            s.icp_queries_sent,
                            s.icp_replies_sent,
                        )
                        for s in (p.stats for p in cluster.proxies)
                    ],
                    sources,
                )

        per_request = run(scenario(keep_alive=False))
        keepalive = run(scenario(keep_alive=True))
        assert keepalive == per_request
