"""End-to-end tests of owner-routed placement on the live data plane.

Covers the cooperation policies (carp owner routing, single-copy
discovery) over real sockets, membership-change rebalancing through
:meth:`ProxyCluster.add_proxy` / :meth:`ProxyCluster.remove_proxy`,
and failover when a peer dies mid-replay without saying goodbye.
"""

from __future__ import annotations

import asyncio

from repro.core.hashing import md5_digest
from repro.core.summary import SummaryConfig
from repro.placement import CooperationPolicy
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode

BASE_CONFIG = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
    update_threshold=0.01,
)


def run(coro):
    return asyncio.run(coro)


def cached_urls(proxy) -> set:
    return set(proxy.cache.digests())


class TestCarpRouting:
    def test_single_copy_per_object_at_the_owner(self):
        """Under carp every document lands exactly once cluster-wide,
        at the proxy the hash ring names as its owner."""

        async def scenario():
            async with ProxyCluster(
                num_proxies=3,
                mode=ProxyMode.NO_ICP,
                cache_capacity=4 * 1024 * 1024,
                base_config=BASE_CONFIG,
                cooperation="carp",
            ) as cluster:
                urls = [f"http://carp.com/d{i}" for i in range(24)]
                drivers = [cluster.driver_for(i) for i in range(3)]
                for i, url in enumerate(urls):
                    await drivers[i % 3].fetch(url, size=512)
                # Second pass from *different* proxies: all hits.
                for i, url in enumerate(urls):
                    await drivers[(i + 1) % 3].fetch(url, size=512)
                holdings = [cached_urls(p) for p in cluster.proxies]
                owners = {
                    url: cluster.proxies[0].placement.owner(md5_digest(url))
                    for url in urls
                }
                names = [p.config.name for p in cluster.proxies]
                origin_requests = cluster.origin.stats.requests
                reports = [d.report for d in drivers]
                stats = [p.stats for p in cluster.proxies]
            return urls, holdings, owners, names, origin_requests, reports, stats

        urls, holdings, owners, names, origin_requests, reports, stats = run(
            scenario()
        )
        # Each document was fetched from the origin exactly once ...
        assert origin_requests == len(urls)
        # ... lives at exactly one proxy: the ring's owner for it.
        for url in urls:
            holders = [
                name
                for name, held in zip(names, holdings)
                if url in held
            ]
            assert holders == [owners[url]]
        # The second pass never touched the origin.
        sources: dict = {}
        for report in reports:
            for source, count in report.cache_sources.items():
                sources[source] = sources.get(source, 0) + count
        assert sources.get("MISS", 0) == len(urls)
        assert (
            sources.get("HIT", 0) + sources.get("REMOTE-HIT", 0)
            == len(urls)
        )
        assert sum(s.peer_forwards for s in stats) > 0
        assert all(r.errors == 0 for r in reports)

    def test_stats_endpoint_reports_cooperation(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.NO_ICP,
                base_config=BASE_CONFIG,
                cooperation=CooperationPolicy.CARP,
            ) as cluster:
                proxy = cluster.proxies[0]
                return (
                    proxy.config.cooperation,
                    sorted(proxy.placement.members),
                )

        cooperation, members = run(scenario())
        assert cooperation is CooperationPolicy.CARP
        assert members == ["proxy0", "proxy1"]


class TestSingleCopyDiscovery:
    def test_remote_hits_are_not_duplicated(self):
        """single-copy discovers peer copies via summaries but never
        caches them locally; summary duplicates them."""

        async def scenario(cooperation):
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=4 * 1024 * 1024,
                base_config=BASE_CONFIG,
                cooperation=cooperation,
            ) as cluster:
                d0 = cluster.driver_for(0)
                d1 = cluster.driver_for(1)
                urls = [f"http://sc.com/d{i}" for i in range(20)]
                for url in urls:
                    await d0.fetch(url, size=512)
                await asyncio.sleep(0.1)  # let DIRUPDATEs land
                for url in urls:
                    await d1.fetch(url, size=512)
                copies = sum(
                    len(cached_urls(p)) for p in cluster.proxies
                )
                remote_hits = sum(
                    p.stats.remote_hits for p in cluster.proxies
                )
            return copies, remote_hits, len(urls)

        copies, remote_hits, n = run(scenario("single-copy"))
        assert remote_hits > 0
        assert copies == n  # discovery without duplication
        copies, remote_hits, n = run(scenario("summary"))
        assert remote_hits > 0
        assert copies > n  # summary re-caches remote hits locally


class TestMembershipChange:
    def test_join_rebalances_and_newcomer_serves(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.NO_ICP,
                cache_capacity=4 * 1024 * 1024,
                base_config=BASE_CONFIG,
                cooperation="carp",
            ) as cluster:
                d0 = cluster.driver_for(0)
                urls = [f"http://join.com/d{i}" for i in range(30)]
                for url in urls:
                    await d0.fetch(url, size=512)
                before = [p.stats.placement_rebalances for p in cluster.proxies]
                assert before == [0, 0]
                newcomer = await cluster.add_proxy()
                stats = [p.stats for p in cluster.proxies[:2]]
                invalidated = sum(
                    s.placement_entries_invalidated for s in stats
                )
                # Everything displaced onto the newcomer was dropped at
                # the old owner; replaying re-fetches it exactly once
                # and stores it at the newcomer.
                for url in urls:
                    await d0.fetch(url, size=512)
                copies = sum(
                    len(cached_urls(p)) for p in cluster.proxies
                )
                members = sorted(newcomer.placement.members)
                rebalances = [s.placement_rebalances for s in stats]
                newcomer_holdings = len(cached_urls(newcomer))
                registry_count = cluster.proxies[0].registry.counter(
                    "placement_rebalances_total"
                ).value
            return (
                invalidated,
                copies,
                len(urls),
                members,
                rebalances,
                newcomer_holdings,
                registry_count,
            )

        (
            invalidated,
            copies,
            n,
            members,
            rebalances,
            newcomer_holdings,
            registry_count,
        ) = run(scenario())
        assert members == ["proxy0", "proxy1", "proxy2"]
        assert rebalances == [1, 1]
        assert registry_count >= 1
        assert invalidated > 0
        # The single-copy invariant survives the join.
        assert copies == n
        assert newcomer_holdings == invalidated

    def test_graceful_leave_displaces_nothing(self):
        """Rendezvous hashing only moves keys *from* the departed
        member, so survivors invalidate nothing on a clean leave."""

        async def scenario():
            async with ProxyCluster(
                num_proxies=3,
                mode=ProxyMode.NO_ICP,
                cache_capacity=4 * 1024 * 1024,
                base_config=BASE_CONFIG,
                cooperation="carp",
            ) as cluster:
                d0 = cluster.driver_for(0)
                for i in range(30):
                    await d0.fetch(f"http://leave.com/d{i}", size=512)
                held_before = [
                    len(cached_urls(p)) for p in cluster.proxies[:2]
                ]
                await cluster.remove_proxy(2)
                stats = [p.stats for p in cluster.proxies]
                held_after = [
                    len(cached_urls(p)) for p in cluster.proxies
                ]
            return held_before, held_after, stats

        held_before, held_after, stats = run(scenario())
        assert all(s.placement_rebalances == 1 for s in stats)
        assert all(s.placement_entries_invalidated == 0 for s in stats)
        assert held_after == held_before


class TestFailover:
    def test_killed_peer_fails_over_without_5xx(self):
        """Kill one proxy mid-replay without telling anyone: requests
        owned by it must fail over (origin or survivor) with no error
        surfaced to clients, and the survivors must rebalance."""

        async def scenario():
            async with ProxyCluster(
                num_proxies=3,
                mode=ProxyMode.NO_ICP,
                cache_capacity=4 * 1024 * 1024,
                base_config=BASE_CONFIG,
                cooperation="carp",
            ) as cluster:
                d0 = cluster.driver_for(0)
                urls = [f"http://kill.com/d{i}" for i in range(36)]
                for url in urls[:18]:
                    await d0.fetch(url, size=512)
                # Crash proxy2: drop it from the harness so teardown
                # won't double-stop it, and stop it without notifying
                # the survivors -- they must discover the death from
                # failed forwards.
                dead = cluster.proxies.pop(2)
                cluster.num_proxies = 2
                await dead.stop()
                for url in urls:  # replay everything, misses included
                    await d0.fetch(url, size=512)
                report = d0.report
                stats = [p.stats for p in cluster.proxies]
                members = sorted(cluster.proxies[0].placement.members)
                invalidated = cluster.proxies[0].registry.counter(
                    "placement_entries_invalidated_total"
                ).value
            return report, stats, members, invalidated

        report, stats, members, invalidated = run(scenario())
        # No 5xx reached the client: every fetch returned a 200 body.
        assert report.errors == 0
        assert report.requests == 18 + 36
        # The dead peer was discovered and retired from the ring.
        assert members == ["proxy0", "proxy1"]
        assert stats[0].peer_forward_failures >= 1
        assert stats[0].placement_rebalances >= 1
        assert invalidated >= 0
