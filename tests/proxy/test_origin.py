"""Tests for the origin server."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import ProtocolError
from repro.proxy.http import read_response, synth_body, write_request
from repro.proxy.origin import OriginServer


def run(coro):
    return asyncio.run(coro)


async def fetch(origin: OriginServer, url: str, headers=None):
    reader, writer = await asyncio.open_connection(*origin.address)
    try:
        write_request(writer, url, headers or {})
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()


class TestOriginServer:
    def test_serves_requested_size(self):
        async def scenario():
            origin = OriginServer()
            await origin.start()
            try:
                response = await fetch(
                    origin, "http://a.com/x", {"X-Size": "1234"}
                )
            finally:
                await origin.stop()
            return response

        response = run(scenario())
        assert response.status == 200
        assert len(response.body) == 1234
        assert response.body == synth_body("http://a.com/x", 1234)

    def test_default_size_is_deterministic(self):
        async def scenario():
            origin = OriginServer()
            await origin.start()
            try:
                a = await fetch(origin, "http://a.com/x")
                b = await fetch(origin, "http://a.com/x")
            finally:
                await origin.stop()
            return a, b

        a, b = run(scenario())
        assert a.body == b.body
        assert 256 <= len(a.body) < 16384

    def test_fixed_default_size(self):
        async def scenario():
            origin = OriginServer(default_size=99)
            await origin.start()
            try:
                return await fetch(origin, "http://a.com/x")
            finally:
                await origin.stop()

        assert len(run(scenario()).body) == 99

    def test_delay_is_applied(self):
        async def scenario():
            origin = OriginServer(delay=0.15)
            await origin.start()
            try:
                start = time.perf_counter()
                await fetch(origin, "http://a.com/x", {"X-Size": "10"})
                return time.perf_counter() - start
            finally:
                await origin.stop()

        assert run(scenario()) >= 0.14

    def test_bad_request_gets_400(self):
        async def scenario():
            origin = OriginServer()
            await origin.start()
            try:
                reader, writer = await asyncio.open_connection(
                    *origin.address
                )
                writer.write(b"BOGUS\r\n\r\n")
                await writer.drain()
                response = await read_response(reader)
                writer.close()
                return response, origin.stats.errors
            finally:
                await origin.stop()

        response, errors = run(scenario())
        assert response.status == 400
        assert errors == 1

    def test_stats_accumulate(self):
        async def scenario():
            origin = OriginServer()
            await origin.start()
            try:
                await fetch(origin, "http://a.com/1", {"X-Size": "100"})
                await fetch(origin, "http://a.com/2", {"X-Size": "200"})
            finally:
                await origin.stop()
            return origin.stats

        stats = run(scenario())
        assert stats.requests == 2
        assert stats.bytes_served == 300

    def test_port_property_requires_running(self):
        origin = OriginServer()
        with pytest.raises(ProtocolError):
            _ = origin.port

    def test_malformed_x_size_falls_back(self):
        async def scenario():
            origin = OriginServer(default_size=None)
            await origin.start()
            try:
                return await fetch(
                    origin, "http://a.com/x", {"X-Size": "wat"}
                )
            finally:
                await origin.stop()

        response = run(scenario())
        assert response.status == 200
        assert response.body == b""
