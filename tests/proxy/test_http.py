"""Tests for the prototype's HTTP subset."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.proxy.http import (
    MAX_BODY_BYTES,
    MAX_HEAD_BYTES,
    parse_content_length,
    read_body,
    read_request,
    read_response,
    stream_body,
    synth_body,
    write_request,
    write_response,
)


class _Writer:
    """A StreamWriter stand-in that accumulates bytes."""

    def __init__(self) -> None:
        self.data = b""

    def write(self, data) -> None:
        self.data += bytes(data)  # accepts bytes and memoryview slices


async def _parse(parser, data: bytes):
    # The StreamReader must be created inside the running loop.
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return await parser(reader)


def parse_request(data: bytes):
    return asyncio.run(_parse(read_request, data))


def parse_response(data: bytes):
    return asyncio.run(_parse(read_response, data))


class TestRequests:
    def test_write_read_roundtrip(self):
        writer = _Writer()
        write_request(
            writer,
            "http://a.com/x",
            headers={"X-Size": "123", "X-Only-If-Cached": "1"},
        )
        request = parse_request(writer.data)
        assert request.url == "http://a.com/x"
        assert request.header("x-size") == "123"
        assert request.header("X-ONLY-IF-CACHED") == "1"
        assert request.header("missing", "dflt") == "dflt"

    def test_rejects_post(self):
        data = b"POST /x HTTP/1.0\r\n\r\n"
        with pytest.raises(ProtocolError, match="request line"):
            parse_request(data)

    def test_rejects_truncated(self):
        with pytest.raises(ProtocolError):
            parse_request(b"GET /x HTTP/1.0\r\n")

    def test_rejects_malformed_header(self):
        data = b"GET /x HTTP/1.0\r\nbadheader\r\n\r\n"
        with pytest.raises(ProtocolError, match="header"):
            parse_request(data)


class TestResponses:
    def test_write_read_roundtrip(self):
        writer = _Writer()
        write_response(
            writer, 200, b"hello", headers={"X-Cache": "HIT"}
        )
        response = parse_response(writer.data)
        assert response.status == 200
        assert response.body == b"hello"
        assert response.header("x-cache") == "HIT"
        assert response.header("content-length") == "5"

    def test_empty_body(self):
        writer = _Writer()
        write_response(writer, 504)
        response = parse_response(writer.data)
        assert response.status == 504
        assert response.body == b""

    def test_unknown_status_gets_reason(self):
        writer = _Writer()
        write_response(writer, 418)
        assert b"418 Unknown" in writer.data

    def test_rejects_bad_status_line(self):
        with pytest.raises(ProtocolError, match="status"):
            parse_response(b"NOPE\r\n\r\n")

    def test_rejects_bad_content_length(self):
        data = b"HTTP/1.0 200 OK\r\nContent-Length: x\r\n\r\n"
        with pytest.raises(ProtocolError, match="Content-Length"):
            parse_response(data)

    def test_rejects_non_numeric_status(self):
        with pytest.raises(ProtocolError):
            parse_response(b"HTTP/1.0 abc OK\r\n\r\n")


class TestFramingValidation:
    """Satellite of the keep-alive rework: strict body framing."""

    def test_negative_content_length_rejected(self):
        with pytest.raises(ProtocolError, match="negative"):
            parse_content_length({"content-length": "-5"})

    def test_non_numeric_content_length_rejected(self):
        for bad in ("x", "1e3", "0x10", " ", "+-1"):
            with pytest.raises(ProtocolError, match="Content-Length"):
                parse_content_length({"content-length": bad})

    def test_oversized_content_length_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds limit"):
            parse_content_length(
                {"content-length": str(MAX_BODY_BYTES + 1)}
            )

    def test_absent_content_length_is_zero(self):
        assert parse_content_length({}) == 0

    def test_response_with_negative_length_rejected(self):
        data = b"HTTP/1.1 200 OK\r\nContent-Length: -1\r\n\r\n"
        with pytest.raises(ProtocolError, match="negative"):
            parse_response(data)

    def test_oversized_head_rejected(self):
        # Above MAX_HEAD_BYTES but below the 64 KiB stream limit, so
        # the explicit head cap (not the stream limit) fires.
        padding = b"a" * (MAX_HEAD_BYTES + 1024)
        data = b"GET /x HTTP/1.1\r\nX-Pad: " + padding + b"\r\n\r\n"
        with pytest.raises(ProtocolError, match="size limit"):
            parse_request(data)

    def test_body_truncation_rejected(self):
        data = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort"
        with pytest.raises(ProtocolError, match="mid-body"):
            parse_response(data)

    def test_read_body_chunked_reassembly(self):
        async def scenario():
            reader = asyncio.StreamReader()
            payload = synth_body("u", 10_000)
            reader.feed_data(payload)
            reader.feed_eof()
            body = await read_body(reader, len(payload), chunk_size=512)
            return payload, body

        payload, body = asyncio.run(scenario())
        assert body == payload


class TestKeepAliveSemantics:
    def test_http11_defaults_to_keep_alive(self):
        request = parse_request(b"GET /x HTTP/1.1\r\n\r\n")
        assert request.keep_alive

    def test_http11_close_honoured(self):
        request = parse_request(
            b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        request = parse_request(b"GET /x HTTP/1.0\r\n\r\n")
        assert not request.keep_alive

    def test_http10_explicit_keep_alive(self):
        request = parse_request(
            b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"
        )
        assert request.keep_alive

    def test_clean_eof_returns_none(self):
        # An empty stream is a finished keep-alive conversation, not an
        # error.
        assert parse_request(b"") is None

    def test_write_request_emits_connection_header(self):
        writer = _Writer()
        write_request(writer, "/x", keep_alive=True)
        assert b"Connection: keep-alive\r\n" in writer.data
        writer = _Writer()
        write_request(writer, "/x", keep_alive=False)
        assert b"Connection: close\r\n" in writer.data


class _FakeTransport:
    """Reports a configurable write-buffer size."""

    def __init__(self, sizes):
        self._sizes = list(sizes)

    def get_write_buffer_size(self):
        return self._sizes.pop(0) if self._sizes else 0


class _StreamWriterStub(_Writer):
    def __init__(self, buffer_sizes=()):
        super().__init__()
        self.transport = _FakeTransport(buffer_sizes)
        self.drains = 0

    async def drain(self):
        self.drains += 1


class TestStreamBody:
    def test_streams_all_bytes_without_backpressure(self):
        writer = _StreamWriterStub()
        body = synth_body("s", 200_000)
        waits = asyncio.run(stream_body(writer, body, chunk_size=4096))
        assert writer.data == body
        assert waits == 0
        assert writer.drains == 0

    def test_drains_when_buffer_exceeds_ceiling(self):
        # Buffer reports over-ceiling on the first two chunks.
        writer = _StreamWriterStub(buffer_sizes=[300_000, 300_000, 0])
        body = synth_body("s", 3 * 4096)
        waits = asyncio.run(
            stream_body(
                writer, body, chunk_size=4096, max_inflight=256 * 1024
            )
        )
        assert writer.data == body
        assert waits == 2
        assert writer.drains == 2


class TestSynthBody:
    def test_exact_size(self):
        assert len(synth_body("http://a.com/x", 1000)) == 1000

    def test_deterministic_per_url(self):
        assert synth_body("u", 64) == synth_body("u", 64)
        assert synth_body("u", 64) != synth_body("v", 64)

    def test_zero_and_negative(self):
        assert synth_body("u", 0) == b""
        assert synth_body("u", -5) == b""
