"""Tests for the prototype's HTTP subset."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.proxy.http import (
    read_request,
    read_response,
    synth_body,
    write_request,
    write_response,
)


class _Writer:
    """A StreamWriter stand-in that accumulates bytes."""

    def __init__(self) -> None:
        self.data = b""

    def write(self, data: bytes) -> None:
        self.data += data


async def _parse(parser, data: bytes):
    # The StreamReader must be created inside the running loop.
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return await parser(reader)


def parse_request(data: bytes):
    return asyncio.run(_parse(read_request, data))


def parse_response(data: bytes):
    return asyncio.run(_parse(read_response, data))


class TestRequests:
    def test_write_read_roundtrip(self):
        writer = _Writer()
        write_request(
            writer,
            "http://a.com/x",
            headers={"X-Size": "123", "X-Only-If-Cached": "1"},
        )
        request = parse_request(writer.data)
        assert request.url == "http://a.com/x"
        assert request.header("x-size") == "123"
        assert request.header("X-ONLY-IF-CACHED") == "1"
        assert request.header("missing", "dflt") == "dflt"

    def test_rejects_post(self):
        data = b"POST /x HTTP/1.0\r\n\r\n"
        with pytest.raises(ProtocolError, match="request line"):
            parse_request(data)

    def test_rejects_truncated(self):
        with pytest.raises(ProtocolError):
            parse_request(b"GET /x HTTP/1.0\r\n")

    def test_rejects_malformed_header(self):
        data = b"GET /x HTTP/1.0\r\nbadheader\r\n\r\n"
        with pytest.raises(ProtocolError, match="header"):
            parse_request(data)


class TestResponses:
    def test_write_read_roundtrip(self):
        writer = _Writer()
        write_response(
            writer, 200, b"hello", headers={"X-Cache": "HIT"}
        )
        response = parse_response(writer.data)
        assert response.status == 200
        assert response.body == b"hello"
        assert response.header("x-cache") == "HIT"
        assert response.header("content-length") == "5"

    def test_empty_body(self):
        writer = _Writer()
        write_response(writer, 504)
        response = parse_response(writer.data)
        assert response.status == 504
        assert response.body == b""

    def test_unknown_status_gets_reason(self):
        writer = _Writer()
        write_response(writer, 418)
        assert b"418 Unknown" in writer.data

    def test_rejects_bad_status_line(self):
        with pytest.raises(ProtocolError, match="status"):
            parse_response(b"NOPE\r\n\r\n")

    def test_rejects_bad_content_length(self):
        data = b"HTTP/1.0 200 OK\r\nContent-Length: x\r\n\r\n"
        with pytest.raises(ProtocolError, match="Content-Length"):
            parse_response(data)

    def test_rejects_non_numeric_status(self):
        with pytest.raises(ProtocolError):
            parse_response(b"HTTP/1.0 abc OK\r\n\r\n")


class TestSynthBody:
    def test_exact_size(self):
        assert len(synth_body("http://a.com/x", 1000)) == 1000

    def test_deterministic_per_url(self):
        assert synth_body("u", 64) == synth_body("u", 64)
        assert synth_body("u", 64) != synth_body("v", 64)

    def test_zero_and_negative(self):
        assert synth_body("u", 0) == b""
        assert synth_body("u", -5) == b""
