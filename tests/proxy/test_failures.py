"""Failure-injection tests for the proxy prototype.

The paper's implementation "leverages Squid's built-in support to
detect failure and recovery of neighbor proxies, and reinitializes a
failed neighbor's bit array when it recovers."  These tests verify the
prototype degrades gracefully when peers vanish mid-run.
"""

from __future__ import annotations

import asyncio

from repro.core.summary import SummaryConfig
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.proxy.config import PeerAddress
from repro.proxy.http import synth_body

BASE_CONFIG = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
    update_threshold=0.01,
    icp_timeout=0.15,
)


def run(coro):
    return asyncio.run(coro)


class TestDeadPeers:
    def test_icp_times_out_and_falls_back_to_origin(self):
        """Queries to a dead peer (nothing listening) must not wedge a
        request: the ICP timeout expires and the origin serves it."""

        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.ICP,
                base_config=BASE_CONFIG,
            ) as cluster:
                proxy = cluster.proxies[0]
                # Point the proxy at a peer that does not exist.
                proxy.set_peers(
                    [
                        PeerAddress(
                            name="ghost",
                            host="127.0.0.1",
                            http_port=1,  # nothing listens here
                            icp_port=1,
                        )
                    ]
                )
                driver = cluster.driver_for(0)
                body = await driver.fetch("http://x.com/doc", size=500)
                return body, proxy.stats

        body, stats = run(scenario())
        assert body == synth_body("http://x.com/doc", 500)
        assert stats.origin_fetches == 1
        assert stats.icp_queries_sent == 1
        assert stats.icp_replies_received == 0

    def test_peer_dying_mid_run_does_not_break_service(self):
        """Stop one proxy of a live SC-ICP pair; the survivor keeps
        serving (stale summary entries become failed peer fetches or
        timeouts, then origin fallbacks)."""

        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                d0 = cluster.driver_for(0)
                d1 = cluster.driver_for(1)
                urls = [f"http://warm.com/d{i}" for i in range(30)]
                for url in urls:
                    await d1.fetch(url, size=400)  # warm proxy 1
                await asyncio.sleep(0.05)  # let DIRUPDATEs land

                # Proxy 1 dies; proxy 0 still holds its summary.
                await cluster.proxies[1].stop()

                bodies = []
                for url in urls[:5]:
                    bodies.append(await d0.fetch(url, size=400))
                return urls[:5], bodies, cluster.proxies[0].stats

        urls, bodies, stats = run(scenario())
        assert [len(b) for b in bodies] == [400] * 5
        for url, body in zip(urls, bodies):
            assert body == synth_body(url, 400)
        # Every request was ultimately satisfied (origin fallback).
        assert stats.origin_fetches == 5

    def test_garbage_datagrams_are_ignored(self):
        """Random bytes on the ICP port must not crash the proxy."""

        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.SC_ICP,
                base_config=BASE_CONFIG,
            ) as cluster:
                proxy = cluster.proxies[0]
                loop = asyncio.get_event_loop()
                transport, _protocol = (
                    await loop.create_datagram_endpoint(
                        asyncio.DatagramProtocol,
                        remote_addr=(
                            proxy.config.host,
                            proxy.icp_port,
                        ),
                    )
                )
                transport.sendto(b"\x00\x01garbage")
                transport.sendto(b"")
                transport.sendto(b"\xff" * 200)
                transport.close()
                await asyncio.sleep(0.05)
                # The proxy still serves.
                driver = cluster.driver_for(0)
                body = await driver.fetch("http://ok.com/x", size=128)
                return body

        assert run(scenario()) == synth_body("http://ok.com/x", 128)
