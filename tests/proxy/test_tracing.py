"""Distributed-tracing integration tests across a live cluster.

The headline scenario is the acceptance case for cross-proxy tracing:
one client request produces one trace id whose reassembled spans cover
the client request, the summary lookup, the SC-ICP query round, and the
remote-peer fetch -- with spans retained in *two different proxies'*
rings and fused back together by the cluster aggregator.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.summary import SummaryConfig
from repro.obs.spans import TRACE_HEADER
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.proxy.http import read_response, write_request


def run(coro):
    return asyncio.run(coro)


BASE_CONFIG = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
    # Ship a DIRUPDATE after every insert so the warmed document is
    # advertised to peers without waiting out a threshold.
    update_threshold=0.0,
)


async def _wait_until_advertised(cluster, holder_index, seeker_index, url):
    """Poll until the seeker's copy of the holder's summary has *url*."""
    target = cluster.proxies[holder_index].address().icp_addr
    for _ in range(400):
        summary = cluster.proxies[seeker_index].peer_summary(target)
        if summary is not None and summary.may_contain(url):
            return
        await asyncio.sleep(0.01)
    pytest.fail(f"{url} never appeared in the propagated summary")


class TestCrossProxyTrace:
    def test_remote_hit_trace_reassembles_across_rings(self):
        url = "/docs/shared-trace-doc"

        async def scenario():
            async with ProxyCluster(
                num_proxies=3,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                warmer = cluster.driver_for(1)
                client = cluster.driver_for(0)
                try:
                    await warmer.fetch(url, size=2048)
                    await _wait_until_advertised(cluster, 1, 0, url)
                    body = await client.fetch(url, size=2048)
                    trace_id = client.last_trace
                    snapshot = await cluster.snapshot()
                finally:
                    await warmer.close()
                    await client.close()
                return body, trace_id, client.report, snapshot

        body, trace_id, report, snapshot = run(scenario())
        assert body
        assert report.cache_sources == {"REMOTE-HIT": 1}

        spans = snapshot.trace(trace_id)
        names = {span["name"] for span in spans}
        assert {
            "http.request",
            "summary.lookup",
            "icp.round",
            "icp.query",
            "peer.fetch",
            "peer.serve",
        } <= names
        # Spans for one trace id were retained in two proxies' rings.
        by_proxy = {span["proxy"] for span in spans}
        assert {"proxy0", "proxy1"} <= by_proxy

        root = next(s for s in spans if s["name"] == "http.request")
        assert root["proxy"] == "proxy0"
        assert root["attributes"]["source"] == "REMOTE-HIT"
        assert root["status"] == "ok"
        # The root joined the client driver's context: its parent is a
        # span id no ring retains, but the trace id is the client's.
        assert root["parent_id"] is not None

        lookup = next(s for s in spans if s["name"] == "summary.lookup")
        assert lookup["attributes"]["outcome"] == "remote_hit"
        assert lookup["attributes"]["representation"] == "bloom"
        assert lookup["attributes"]["predicted_fp_rate"] >= 0.0
        assert lookup["parent_id"] == root["span_id"]

        query = next(s for s in spans if s["name"] == "icp.query")
        assert query["proxy"] in ("proxy1", "proxy2")
        assert query["attributes"]["hit"] in (True, False)

        serve = next(s for s in spans if s["name"] == "peer.serve")
        assert serve["proxy"] == "proxy1"
        assert serve["attributes"]["hit"] is True

        # The fused snapshot counts this as a cross-proxy trace and the
        # remote hit shows up in the cluster-wide accounting.
        assert snapshot.as_dict()["cross_proxy_traces"] >= 1
        assert snapshot.total("proxy_remote_hits_total") == 1.0


class TestHeaderEcho:
    def test_proxy_echoes_and_joins_client_context(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                proxy = cluster.proxies[0]
                reader, writer = await asyncio.open_connection(
                    proxy.config.host, proxy.http_port
                )
                try:
                    write_request(
                        writer,
                        "/docs/echo?size=512",
                        headers={TRACE_HEADER: "cafecafe-00000001"},
                    )
                    await writer.drain()
                    response = await read_response(reader)
                finally:
                    writer.close()
                    await writer.wait_closed()
                spans = proxy.spans.trace(0xCAFECAFE)
                return response, [s.name for s in spans]

        response, names = run(scenario())
        assert response.status == 200
        # The echo carries the joined trace id and the proxy's own root
        # span id (the context a downstream caller would parent under).
        assert response.header(TRACE_HEADER).startswith("cafecafe-")
        assert response.header(TRACE_HEADER) != "cafecafe-00000001"
        assert "http.request" in names

    def test_requests_without_context_get_fresh_trace(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                proxy = cluster.proxies[0]
                reader, writer = await asyncio.open_connection(
                    proxy.config.host, proxy.http_port
                )
                try:
                    write_request(writer, "/docs/fresh?size=512")
                    await writer.drain()
                    response = await read_response(reader)
                finally:
                    writer.close()
                    await writer.wait_closed()
                return response, proxy.spans.spans(name="http.request")

        response, roots = run(scenario())
        echoed = response.header(TRACE_HEADER)
        assert echoed  # the proxy minted a trace and reported it
        assert roots[0].trace_id != 0
        assert f"{roots[0].trace_id:08x}" == echoed.split("-")[0]


class TestTracingDisabled:
    def test_disabled_ring_retains_nothing_and_echoes_nothing(self):
        config = ProxyConfig(
            summary=SummaryConfig(kind="bloom", load_factor=8),
            expected_doc_size=1024,
            update_threshold=0.0,
            trace_enabled=False,
        )

        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=config,
            ) as cluster:
                proxy = cluster.proxies[0]
                reader, writer = await asyncio.open_connection(
                    proxy.config.host, proxy.http_port
                )
                try:
                    write_request(
                        writer,
                        "/docs/dark?size=512",
                        headers={TRACE_HEADER: "cafecafe-00000001"},
                    )
                    await writer.drain()
                    response = await read_response(reader)
                finally:
                    writer.close()
                    await writer.wait_closed()
                snapshot = await cluster.snapshot()
                return response, snapshot

        response, snapshot = run(scenario())
        assert response.status == 200
        assert response.header(TRACE_HEADER) == ""
        snap = snapshot.proxies["proxy0"]
        assert snap.trace_enabled is False
        assert snap.spans == []
        assert snapshot.spans() == []


class TestRingCapacity:
    def test_small_ring_drops_and_counts(self):
        config = ProxyConfig(
            summary=SummaryConfig(kind="bloom", load_factor=8),
            expected_doc_size=1024,
            update_threshold=0.01,
            trace_capacity=4,
        )

        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                cache_capacity=512 * 1024,
                base_config=config,
            ) as cluster:
                driver = cluster.driver_for(0)
                try:
                    for i in range(12):
                        await driver.fetch(f"/docs/{i}", size=256)
                finally:
                    await driver.close()
                return await cluster.snapshot()

        snapshot = run(scenario())
        snap = snapshot.proxies["proxy0"]
        assert snap.trace_ring_capacity == 4
        assert len(snap.spans) <= 4
        assert snap.trace_ring_dropped > 0
        assert (
            snap.metric("trace_ring_dropped_total")
            == snap.trace_ring_dropped
        )
