"""Integration tests: the live ``/metrics`` endpoint on a proxy cluster."""

from __future__ import annotations

import asyncio
import json

from repro.core.summary import SummaryConfig
from repro.obs.export import parse_prometheus
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.proxy.client import ClientDriver
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


def run(coro):
    return asyncio.run(coro)


def mini_trace(n: int = 300, clients: int = 8, docs: int = 100):
    return generate_trace(
        SyntheticTraceConfig(
            name="metrics-test",
            num_requests=n,
            num_clients=clients,
            num_documents=docs,
            mean_size=1024,
            max_size=32 * 1024,
            mod_probability=0.0,
            seed=21,
        )
    )


BASE_CONFIG = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
    update_threshold=0.01,
)


async def _replay_and_scrape():
    async with ProxyCluster(
        num_proxies=3,
        mode=ProxyMode.SC_ICP,
        cache_capacity=512 * 1024,
        base_config=BASE_CONFIG,
    ) as cluster:
        await cluster.replay(mini_trace())
        scrapes = []
        for proxy in cluster.proxies:
            driver = ClientDriver(proxy.config.host, proxy.http_port)
            text = (await driver.fetch("/metrics")).decode()
            doc = json.loads(
                (await driver.fetch("/metrics?format=json")).decode()
            )
            scrapes.append((proxy, parse_prometheus(text), doc))
        return scrapes


class TestMetricsEndpoint:
    def test_scrape_matches_proxy_and_cache_stats(self):
        scrapes = run(_replay_and_scrape())
        saw_queries = saw_updates = 0
        for proxy, parsed, _doc in scrapes:
            stats = proxy.stats
            # The ProxyStats counters and the registry increment at the
            # same sites, so a scrape must agree exactly.  The two
            # /metrics fetches themselves are client requests served
            # after the counter was read, so allow their off-by-N.
            assert (
                parsed["proxy_http_requests_total"][""]
                <= stats.http_requests
            )
            assert parsed["proxy_local_hits_total"][""] <= stats.local_hits
            assert (
                parsed["proxy_remote_hits_total"][""] == stats.remote_hits
            )
            assert (
                parsed["proxy_icp_queries_sent_total"][""]
                == stats.icp_queries_sent
            )
            assert (
                parsed["proxy_icp_replies_received_total"][""]
                == stats.icp_replies_received
            )
            # DIRUPDATE counters carry the summary representation label.
            rep = 'representation="%s"' % proxy.config.summary.kind
            assert (
                parsed["proxy_dirupdates_sent_total"][rep]
                == stats.dirupdates_sent
            )
            assert (
                parsed["proxy_dirupdates_received_total"][rep]
                == stats.dirupdates_received
            )
            assert (
                parsed["proxy_icp_false_hits_total"][""]
                == stats.false_query_rounds
            )
            # Scrape-time gauges read CacheStats live: exact agreement.
            cache_stats = proxy.cache.stats
            assert parsed["proxy_cache_hits"][""] == cache_stats.hits
            assert (
                parsed["proxy_cache_requests"][""] == cache_stats.requests
            )
            assert (
                parsed["proxy_cache_evictions"][""] == cache_stats.evictions
            )
            saw_queries += stats.icp_queries_sent
            saw_updates += stats.dirupdates_sent
        # The replay must actually have exercised the SC-ICP paths,
        # otherwise the equalities above are vacuous.
        assert saw_queries > 0
        assert saw_updates > 0

    def test_json_variant_carries_identity_and_trace(self):
        scrapes = run(_replay_and_scrape())
        for proxy, _parsed, doc in scrapes:
            assert doc["name"] == proxy.config.name
            assert doc["mode"] == "sc-icp"
            names = {record["name"] for record in doc["metrics"]}
            assert "proxy_http_requests_total" in names
            assert isinstance(doc["trace_events"], list)
            assert doc["trace_events"], "replay should leave trace events"
            kinds = {event["kind"] for event in doc["trace_events"]}
            assert kinds & {
                "http.request",
                "http.served",
                "icp.query.sent",
                "icp.reply",
                "dirupdate.drain",
                "dirupdate.apply",
            }

    def test_trace_ring_correlates_one_lifecycle(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                await cluster.replay(mini_trace(n=120))
                proxy = cluster.proxies[0]
                served = proxy.trace.events(kind="http.served")
                assert served
                lifecycle = proxy.trace.trace(served[-1].trace_id)
                kinds = [e.kind for e in lifecycle]
                assert kinds[0] == "http.request"
                assert kinds[-1] == "http.served"

        run(scenario())
