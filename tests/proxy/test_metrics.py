"""Integration tests: the live ``/metrics`` endpoint on a proxy cluster."""

from __future__ import annotations

import asyncio
import json

from repro.core.summary import SummaryConfig
from repro.obs.export import parse_prometheus
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.proxy.client import ClientDriver
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


def run(coro):
    return asyncio.run(coro)


def mini_trace(n: int = 300, clients: int = 8, docs: int = 100):
    return generate_trace(
        SyntheticTraceConfig(
            name="metrics-test",
            num_requests=n,
            num_clients=clients,
            num_documents=docs,
            mean_size=1024,
            max_size=32 * 1024,
            mod_probability=0.0,
            seed=21,
        )
    )


BASE_CONFIG = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
    update_threshold=0.01,
)


async def _replay_and_scrape():
    async with ProxyCluster(
        num_proxies=3,
        mode=ProxyMode.SC_ICP,
        cache_capacity=512 * 1024,
        base_config=BASE_CONFIG,
    ) as cluster:
        await cluster.replay(mini_trace())
        scrapes = []
        for proxy in cluster.proxies:
            driver = ClientDriver(proxy.config.host, proxy.http_port)
            text = (await driver.fetch("/metrics")).decode()
            doc = json.loads(
                (await driver.fetch("/metrics?format=json")).decode()
            )
            scrapes.append((proxy, parse_prometheus(text), doc))
        return scrapes


class TestMetricsEndpoint:
    def test_scrape_matches_proxy_and_cache_stats(self):
        scrapes = run(_replay_and_scrape())
        saw_queries = saw_updates = 0
        for proxy, parsed, _doc in scrapes:
            stats = proxy.stats
            # The ProxyStats counters and the registry increment at the
            # same sites, so a scrape must agree exactly.  The two
            # /metrics fetches themselves are client requests served
            # after the counter was read, so allow their off-by-N.
            assert (
                parsed["proxy_http_requests_total"][""]
                <= stats.http_requests
            )
            assert parsed["proxy_local_hits_total"][""] <= stats.local_hits
            assert (
                parsed["proxy_remote_hits_total"][""] == stats.remote_hits
            )
            assert (
                parsed["proxy_icp_queries_sent_total"][""]
                == stats.icp_queries_sent
            )
            assert (
                parsed["proxy_icp_replies_received_total"][""]
                == stats.icp_replies_received
            )
            # DIRUPDATE counters carry the summary representation label.
            rep = 'representation="%s"' % proxy.config.summary.kind
            assert (
                parsed["proxy_dirupdates_sent_total"][rep]
                == stats.dirupdates_sent
            )
            assert (
                parsed["proxy_dirupdates_received_total"][rep]
                == stats.dirupdates_received
            )
            assert (
                parsed["proxy_icp_false_hits_total"][""]
                == stats.false_query_rounds
            )
            # Scrape-time gauges read CacheStats live: exact agreement.
            cache_stats = proxy.cache.stats
            assert parsed["proxy_cache_hits"][""] == cache_stats.hits
            assert (
                parsed["proxy_cache_requests"][""] == cache_stats.requests
            )
            assert (
                parsed["proxy_cache_evictions"][""] == cache_stats.evictions
            )
            saw_queries += stats.icp_queries_sent
            saw_updates += stats.dirupdates_sent
        # The replay must actually have exercised the SC-ICP paths,
        # otherwise the equalities above are vacuous.
        assert saw_queries > 0
        assert saw_updates > 0

    def test_json_variant_carries_identity_and_spans(self):
        scrapes = run(_replay_and_scrape())
        for proxy, _parsed, doc in scrapes:
            assert doc["name"] == proxy.config.name
            assert doc["mode"] == "sc-icp"
            names = {record["name"] for record in doc["metrics"]}
            assert "proxy_http_requests_total" in names
            assert isinstance(doc["spans"], list)
            assert doc["spans"], "replay should leave spans in the ring"
            assert doc["trace_ring_dropped"] == proxy.spans.dropped
            span_names = {span["name"] for span in doc["spans"]}
            assert span_names & {
                "http.request",
                "summary.lookup",
                "icp.round",
                "icp.query",
                "dirupdate.drain",
                "dirupdate.apply",
            }

    def test_span_ring_correlates_one_lifecycle(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                await cluster.replay(mini_trace(n=120))
                proxy = cluster.proxies[0]
                roots = proxy.spans.spans(name="http.request")
                assert roots
                # Pick a root whose request went down the miss path so
                # the trace has more than one span.
                root = next(
                    r for r in roots if r.attributes["source"] != "HIT"
                )
                lifecycle = proxy.spans.trace(root.trace_id)
                names = [s.name for s in lifecycle]
                assert names[0] == "http.request"
                assert "summary.lookup" in names
                # Every span of the trace closed with a duration, and
                # the children all point back at retained parents.
                by_id = {s.span_id: s for s in lifecycle}
                for span in lifecycle:
                    assert span.duration is not None
                    # Non-root spans point back at retained parents;
                    # the root's parent is the client driver's context,
                    # which lives outside the proxy's ring.
                    if span.parent_id and span.name != "http.request":
                        assert span.parent_id in by_id
                kinds = {
                    event["kind"]
                    for span in lifecycle
                    for event in span.events
                }
                assert "http.served" in kinds

        run(scenario())
