"""Unit tests of proxy internals (no sockets)."""

from __future__ import annotations

from dataclasses import replace

from repro.core.bloom import BloomFilter
from repro.core.summary import SummaryConfig
from repro.proxy.config import PeerAddress, ProxyConfig, ProxyMode
from repro.proxy.server import SummaryCacheProxy, _PeerState

BASE = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
)

ORIGIN = ("127.0.0.1", 9)


def make_proxy(mode: ProxyMode) -> SummaryCacheProxy:
    return SummaryCacheProxy(replace(BASE, mode=mode), ORIGIN)


def peer_state(name: str, port: int) -> _PeerState:
    return _PeerState(
        PeerAddress(name=name, host="127.0.0.1", http_port=1, icp_port=port)
    )


class TestCandidatePeers:
    def test_no_icp_mode_queries_nobody(self):
        proxy = make_proxy(ProxyMode.NO_ICP)
        proxy._peers = {("127.0.0.1", 1001): peer_state("p1", 1001)}
        assert proxy._candidate_peers("http://a.com/x") == []

    def test_icp_mode_queries_all_alive_peers(self):
        proxy = make_proxy(ProxyMode.ICP)
        alive = peer_state("p1", 1001)
        dead = peer_state("p2", 1002)
        dead.alive = False
        proxy._peers = {
            alive.address.icp_addr: alive,
            dead.address.icp_addr: dead,
        }
        candidates = proxy._candidate_peers("http://a.com/x")
        assert candidates == [alive]

    def test_sc_icp_skips_peers_without_summaries(self):
        proxy = make_proxy(ProxyMode.SC_ICP)
        uninitialized = peer_state("p1", 1001)
        proxy._peers = {uninitialized.address.icp_addr: uninitialized}
        assert proxy._candidate_peers("http://a.com/x") == []

    def test_sc_icp_queries_only_positive_summaries(self):
        proxy = make_proxy(ProxyMode.SC_ICP)
        knows = peer_state("p1", 1001)
        knows.summary = BloomFilter(8192)
        knows.summary.add("http://a.com/x")
        blank = peer_state("p2", 1002)
        blank.summary = BloomFilter(8192)
        proxy._peers = {
            knows.address.icp_addr: knows,
            blank.address.icp_addr: blank,
        }
        assert proxy._candidate_peers("http://a.com/x") == [knows]
        assert proxy._candidate_peers("http://other.com/y") == []


class TestCacheBodySync:
    def test_store_keeps_cache_and_bodies_aligned(self):
        proxy = make_proxy(ProxyMode.NO_ICP)
        proxy._store("http://a.com/x", b"x" * 100)
        assert proxy._lookup_local("http://a.com/x") == b"x" * 100

    def test_oversized_body_not_retained(self):
        proxy = make_proxy(ProxyMode.NO_ICP)
        too_big = b"x" * (BASE.max_object_size + 1)
        proxy._store("http://a.com/huge", too_big)
        assert proxy._lookup_local("http://a.com/huge") is None
        assert "http://a.com/huge" not in proxy._bodies

    def test_desync_repaired_on_lookup(self):
        # If the body vanished (bug or manual eviction), the cache entry
        # must be dropped rather than serving nothing.
        proxy = make_proxy(ProxyMode.NO_ICP)
        proxy._store("http://a.com/x", b"data")
        proxy._bodies.pop("http://a.com/x")
        assert proxy._lookup_local("http://a.com/x") is None
        assert "http://a.com/x" not in proxy.cache

    def test_eviction_removes_body(self):
        config = replace(BASE, cache_capacity=1024)
        proxy = SummaryCacheProxy(config, ORIGIN)
        proxy._store("http://a.com/1", b"x" * 600)
        proxy._store("http://a.com/2", b"x" * 600)  # evicts /1
        assert "http://a.com/1" not in proxy._bodies
        assert proxy._lookup_local("http://a.com/2") is not None


class TestSummaryMaintenance:
    def test_inserts_and_evictions_tracked(self):
        config = replace(BASE, cache_capacity=1024)
        proxy = SummaryCacheProxy(config, ORIGIN)
        proxy._store("http://a.com/1", b"x" * 600)
        assert proxy.summary.may_contain("http://a.com/1")
        proxy._store("http://a.com/2", b"x" * 600)
        # /1 evicted: counters removed it from the local summary.
        assert not proxy.summary.may_contain("http://a.com/1")
        assert proxy.summary.may_contain("http://a.com/2")

    def test_reset_peer(self):
        proxy = make_proxy(ProxyMode.SC_ICP)
        state = peer_state("p1", 1001)
        state.summary = BloomFilter(64)
        proxy._peers = {state.address.icp_addr: state}
        proxy.reset_peer(state.address.icp_addr)
        assert proxy.peer_summary(state.address.icp_addr) is None

    def test_reset_unknown_peer_is_noop(self):
        proxy = make_proxy(ProxyMode.SC_ICP)
        proxy.reset_peer(("10.0.0.1", 99))  # no exception
