"""End-to-end: a real-world workflow from a Squid access.log on disk.

A downstream user's path through the library: parse an access log,
characterize it, pick parameters, simulate sharing over it.  This test
drives that entire pipeline with a log written in Squid's native format.
"""

from __future__ import annotations

import pytest

from repro.core.summary import SummaryConfig
from repro.sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_icp,
    simulate_no_sharing,
    simulate_summary_sharing,
)
from repro.traces import (
    compute_stats,
    mean_cacheable_size,
    read_squid_log,
    sharing_potential,
    write_squid_log,
)
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def squid_log_path(tmp_path_factory):
    """A realistic access.log on disk, written in Squid's format."""
    trace = generate_trace(
        SyntheticTraceConfig(
            name="squid-e2e",
            num_requests=5000,
            num_clients=24,
            num_documents=1500,
            mean_size=2048,
            max_size=128 * 1024,
            mod_probability=0.0,  # logs carry no validators
            seed=88,
        )
    )
    path = tmp_path_factory.mktemp("logs") / "access.log"
    write_squid_log(trace, path)
    return path


def test_full_pipeline_from_access_log(squid_log_path):
    # 1. Parse the operator's log.
    trace = read_squid_log(squid_log_path)
    assert len(trace) == 5000

    # 2. Characterize it.
    stats = compute_stats(trace)
    assert stats.max_hit_ratio > 0.2
    potential = sharing_potential(trace, 4)
    assert potential > 0.02  # sharing is worth considering

    # 3. Derive configuration from the workload itself.
    capacity = max(1, int(stats.infinite_cache_bytes * 0.10 / 4))
    doc_size = mean_cacheable_size(trace)

    # 4. Simulate: does summary cache deliver on this log?
    alone = simulate_no_sharing(trace, 4, capacity)
    icp = simulate_icp(trace, 4, capacity)
    bloom = simulate_summary_sharing(
        trace,
        4,
        capacity,
        SummarySharingConfig(
            summary=SummaryConfig(kind="bloom", load_factor=16),
            update_policy=ThresholdUpdatePolicy(0.05),
            expected_doc_size=doc_size,
        ),
    )

    # The pipeline's verdict must match the paper's story: sharing
    # lifts the hit ratio, and summary cache gets (almost) all of ICP's
    # benefit at a fraction of its messages.
    assert icp.total_hit_ratio > alone.total_hit_ratio + 0.01
    assert bloom.total_hit_ratio > icp.total_hit_ratio - 0.02
    assert (
        bloom.messages.query_messages < icp.messages.query_messages / 3
    )
