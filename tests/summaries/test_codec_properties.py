"""Property tests for the representation-tagged codec.

The representation id is attacker-controlled input (it arrives in the
ICP Options field of any DIRUPDATE datagram), so the codec must reject
unknown ids and truncated payloads with the library's own error types
-- never mis-decode, never raise anything else.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ProtocolError
from repro.protocol.wire import (
    REPR_BLOOM,
    REPR_EXACT,
    REPR_SERVER_NAME,
    SET_REPRESENTATIONS,
    DirUpdate,
    SetDirUpdate,
    decode_message,
)
from repro.summaries.codec import (
    KIND_TO_REPRESENTATION,
    representation_id,
    representation_kind,
)

KNOWN_IDS = frozenset(KIND_TO_REPRESENTATION.values())

#: Wire header offset of the 32-bit Options field carrying the id.
_OPTS_OFFSET = 8

unknown_ids = st.integers(0, 0xFFFFFFFF).filter(
    lambda rep_id: rep_id not in KNOWN_IDS
)

digests = st.binary(min_size=16, max_size=16)
server_names = st.text(min_size=1, max_size=40).map(
    lambda s: s.encode("utf-8")
).filter(lambda b: 1 <= len(b) <= 0xFFFF)


def _set_updates() -> st.SearchStrategy[SetDirUpdate]:
    def build(representation: int) -> st.SearchStrategy[SetDirUpdate]:
        records = digests if representation == REPR_EXACT else server_names
        return st.builds(
            SetDirUpdate,
            representation=st.just(representation),
            added=st.lists(records, max_size=8).map(tuple),
            removed=st.lists(records, max_size=8).map(tuple),
            request_number=st.integers(0, 0xFFFFFFFF),
        )

    return st.sampled_from(SET_REPRESENTATIONS).flatmap(build)


def _bloom_updates() -> st.SearchStrategy[DirUpdate]:
    return st.builds(
        DirUpdate,
        function_num=st.integers(1, 16),
        function_bits=st.integers(1, 32),
        bit_array_size=st.just(10_000),
        flips=st.lists(
            st.tuples(st.integers(0, 9_999), st.booleans()), max_size=16
        ).map(tuple),
    )


class TestUnknownRepresentationIds:
    @given(unknown_ids)
    @settings(max_examples=200, deadline=None)
    def test_representation_kind_rejects_unknown_id(self, rep_id):
        with pytest.raises(ConfigurationError):
            representation_kind(rep_id)

    @given(st.text(min_size=0, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_representation_id_rejects_unknown_kind(self, kind):
        if kind in KIND_TO_REPRESENTATION:
            assert representation_kind(representation_id(kind)) == kind
        else:
            with pytest.raises(ConfigurationError):
                representation_id(kind)

    def test_mapping_round_trips_every_known_id(self):
        for kind, rep_id in KIND_TO_REPRESENTATION.items():
            assert representation_kind(rep_id) == kind
            assert representation_id(kind) == rep_id
        assert KNOWN_IDS == {REPR_BLOOM, REPR_EXACT, REPR_SERVER_NAME}

    @given(_set_updates(), unknown_ids)
    @settings(max_examples=100, deadline=None)
    def test_tampered_options_field_rejected(self, update, bogus_id):
        """Flipping the wire Options field to an unknown id must fail."""
        wire = bytearray(update.encode())
        struct.pack_into("!I", wire, _OPTS_OFFSET, bogus_id)
        with pytest.raises(ProtocolError):
            decode_message(bytes(wire))

    @given(_set_updates(), st.sampled_from(sorted(SET_REPRESENTATIONS)))
    @settings(max_examples=100, deadline=None)
    def test_retagged_known_id_never_escapes_error_contract(
        self, update, other_id
    ):
        """Retagging between known set ids decodes or fails cleanly.

        An exact-directory payload relabelled as server-name (or vice
        versa) must either parse as the relabelled representation or
        raise ProtocolError -- never any other exception.
        """
        wire = bytearray(update.encode())
        struct.pack_into("!I", wire, _OPTS_OFFSET, other_id)
        try:
            decoded = decode_message(bytes(wire))
        except ProtocolError:
            return
        assert decoded.representation == other_id


class TestTruncatedPayloads:
    @given(_set_updates(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_set_update_prefixes_rejected(self, update, data):
        wire = update.encode()
        cut = data.draw(st.integers(0, len(wire) - 1), label="cut")
        with pytest.raises(ProtocolError):
            decode_message(wire[:cut])

    @given(_bloom_updates(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_bloom_update_prefixes_rejected(self, update, data):
        wire = update.encode()
        cut = data.draw(st.integers(0, len(wire) - 1), label="cut")
        with pytest.raises(ProtocolError):
            decode_message(wire[:cut])

    @given(_set_updates())
    @settings(max_examples=100, deadline=None)
    def test_untampered_update_round_trips(self, update):
        assert decode_message(update.encode()) == update
