"""Tests for the representation-tagged summary codec."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    ProtocolError,
    SummaryMismatchError,
)
from repro.protocol.wire import (
    REPR_BLOOM,
    REPR_EXACT,
    REPR_SERVER_NAME,
    DigestChunk,
    DirUpdate,
    SetDirUpdate,
)
from repro.summaries import SummaryConfig, SummaryNode, codec
from repro.summaries.bloom import BloomRemote, BloomSummary
from repro.summaries.exact import ExactDirectoryRemote, ExactDirectorySummary
from repro.summaries.servername import ServerNameRemote, ServerNameSummary

URLS = [f"http://c{i % 5}.codec.net/doc{i}" for i in range(25)]


def node_for(kind: str) -> SummaryNode:
    return SummaryNode(SummaryConfig(kind=kind), 1024 * 1024)


def messages_for(node: SummaryNode, now: float = 1.0):
    delta = node.publish(now)
    return codec.delta_messages(node.local, delta, mtu=1400)


class TestRepresentationIds:
    @pytest.mark.parametrize(
        "kind, rep",
        [
            ("bloom", REPR_BLOOM),
            ("exact-directory", REPR_EXACT),
            ("server-name", REPR_SERVER_NAME),
        ],
    )
    def test_kind_id_roundtrip(self, kind, rep):
        assert codec.representation_id(kind) == rep
        assert codec.representation_kind(rep) == kind

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            codec.representation_id("merkle")

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError):
            codec.representation_kind(9)


class TestDeltaMessages:
    @pytest.mark.parametrize(
        "kind, message_type",
        [
            ("bloom", DirUpdate),
            ("exact-directory", SetDirUpdate),
            ("server-name", SetDirUpdate),
        ],
    )
    def test_dispatch_per_summary_type(self, kind, message_type):
        node = node_for(kind)
        for url in URLS:
            node.on_insert(url)
        messages = messages_for(node)
        assert messages
        assert all(isinstance(m, message_type) for m in messages)

    def test_empty_delta_yields_no_messages(self):
        node = node_for("exact-directory")
        assert messages_for(node) == []

    def test_whole_summary_messages_bloom_only(self):
        node = node_for("bloom")
        node.on_insert(URLS[0])
        chunks = codec.whole_summary_messages(node.local, mtu=1400)
        assert chunks
        assert all(isinstance(c, DigestChunk) for c in chunks)
        with pytest.raises(ConfigurationError):
            codec.whole_summary_messages(
                node_for("server-name").local, mtu=1400
            )


class TestApplyUpdate:
    @pytest.mark.parametrize(
        "kind, remote_type",
        [
            ("bloom", BloomRemote),
            ("exact-directory", ExactDirectoryRemote),
            ("server-name", ServerNameRemote),
        ],
    )
    def test_lazy_init_and_sync(self, kind, remote_type):
        """A peer starting from None converges on the sender's summary
        by replaying its update stream."""
        node = node_for(kind)
        remote = None
        for batch in (URLS[:10], URLS[10:]):
            for url in batch:
                node.on_insert(url)
            for message in messages_for(node):
                remote, changed = codec.apply_update(remote, message)
                assert changed > 0
        assert isinstance(remote, remote_type)
        assert all(remote.may_contain(u) for u in URLS)

    def test_removals_replay(self):
        node = node_for("exact-directory")
        for url in URLS:
            node.on_insert(url)
        remote = None
        for message in messages_for(node):
            remote, _ = codec.apply_update(remote, message)
        node.on_evict(URLS[3])
        for message in messages_for(node, now=2.0):
            remote, _ = codec.apply_update(remote, message)
        assert not remote.may_contain(URLS[3])
        assert remote.may_contain(URLS[4])

    def test_bloom_delta_onto_set_copy_mismatch(self):
        bloom_node = node_for("bloom")
        bloom_node.on_insert(URLS[0])
        message = messages_for(bloom_node)[0]
        set_copy = ExactDirectoryRemote(set())
        with pytest.raises(SummaryMismatchError):
            codec.apply_update(set_copy, message)

    def test_set_delta_onto_wrong_set_copy_mismatch(self):
        name_node = node_for("server-name")
        name_node.on_insert(URLS[0])
        message = messages_for(name_node)[0]
        with pytest.raises(SummaryMismatchError):
            codec.apply_update(ExactDirectoryRemote(set()), message)

    def test_bloom_geometry_change_mismatch(self):
        node = node_for("bloom")
        node.on_insert(URLS[0])
        message = messages_for(node)[0]
        remote, _ = codec.apply_update(None, message)
        stale = DirUpdate(
            function_num=message.function_num,
            function_bits=message.function_bits,
            bit_array_size=message.bit_array_size * 2,
            flips=((0, True),),
        )
        with pytest.raises(SummaryMismatchError):
            codec.apply_update(remote, stale)

    def test_mismatch_is_a_protocol_error(self):
        assert issubclass(SummaryMismatchError, ProtocolError)


class TestLocalRemoteAgreement:
    """The local summary and a remote copy built from its exports must
    answer membership identically (up to Bloom false positives)."""

    @pytest.mark.parametrize(
        "summary_cls", [ExactDirectorySummary, ServerNameSummary]
    )
    def test_export_matches_local(self, summary_cls):
        summary = summary_cls()
        for url in URLS:
            summary.add(url)
        remote = summary.export()
        probes = URLS + ["http://other.net/x", "http://c0.codec.net/no"]
        for url in probes:
            assert remote.may_contain(url) == summary.may_contain(url)

    def test_bloom_export_matches_local(self):
        summary = BloomSummary(1000, config=SummaryConfig(kind="bloom"))
        for url in URLS:
            summary.add(url)
        remote = BloomRemote(summary.export())
        for url in URLS + ["http://other.net/x"]:
            assert remote.may_contain(url) == summary.may_contain(url)
