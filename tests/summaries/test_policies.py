"""Tests for the update policies and their CLI spec parser."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.summaries import (
    IntervalUpdatePolicy,
    PacketFillUpdatePolicy,
    ThresholdUpdatePolicy,
    parse_update_policy,
)


def due(policy, **overrides):
    kwargs = {
        "new_documents": 0,
        "cached_documents": 100,
        "pending_records": 0,
        "now": 0.0,
        "last_update": 0.0,
    }
    kwargs.update(overrides)
    return policy.due(**kwargs)


class TestThreshold:
    def test_fires_at_fraction(self):
        policy = ThresholdUpdatePolicy(0.05)
        assert not due(policy, new_documents=4, cached_documents=100)
        assert due(policy, new_documents=5, cached_documents=100)

    def test_empty_cache_uses_floor_of_one(self):
        assert due(
            ThresholdUpdatePolicy(0.5), new_documents=1, cached_documents=0
        )

    def test_zero_threshold_is_live_and_fires_per_insert(self):
        policy = ThresholdUpdatePolicy(0.0)
        assert policy.live
        assert not due(policy, new_documents=0)
        assert due(policy, new_documents=1, cached_documents=10_000)

    def test_nonzero_threshold_is_not_live(self):
        assert not ThresholdUpdatePolicy(0.01).live

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_range_validated(self, bad):
        with pytest.raises(ConfigurationError):
            ThresholdUpdatePolicy(bad)


class TestInterval:
    def test_fires_on_elapsed_time(self):
        policy = IntervalUpdatePolicy(300.0)
        assert not due(policy, now=299.0, last_update=0.0)
        assert due(policy, now=300.0, last_update=0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            IntervalUpdatePolicy(0.0)


class TestPacketFill:
    def test_fires_on_pending_records(self):
        policy = PacketFillUpdatePolicy(342)
        assert not due(policy, pending_records=341)
        assert due(policy, pending_records=342)

    def test_default_is_one_mtu_of_flip_records(self):
        assert PacketFillUpdatePolicy().records == (1400 - 32) // 4

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            PacketFillUpdatePolicy(0)


class TestParse:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("threshold:0.05", ThresholdUpdatePolicy(0.05)),
            ("threshold:0", ThresholdUpdatePolicy(0.0)),
            ("threshold", ThresholdUpdatePolicy()),
            ("interval:60", IntervalUpdatePolicy(60.0)),
            ("interval", IntervalUpdatePolicy()),
            ("packet-fill:100", PacketFillUpdatePolicy(100)),
            ("packet-fill", PacketFillUpdatePolicy()),
            ("  Threshold:0.1 ", ThresholdUpdatePolicy(0.1)),
        ],
    )
    def test_accepted_specs(self, spec, expected):
        assert parse_update_policy(spec) == expected

    @pytest.mark.parametrize(
        "spec",
        ["", "bogus", "threshold:x", "interval:abc", "packet-fill:1.5",
         "threshold:2"],
    )
    def test_rejected_specs(self, spec):
        with pytest.raises(ConfigurationError):
            parse_update_policy(spec)

    def test_labels_are_stable(self):
        assert ThresholdUpdatePolicy(0.01).label() == "threshold=0.01"
        assert IntervalUpdatePolicy(300).label() == "interval=300s"
        assert PacketFillUpdatePolicy(342).label() == "packet-fill=342"
