"""Tests for the shared summary backend (ABCs, factory, SummaryNode)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.summaries import (
    SummaryConfig,
    SummaryNode,
    ThresholdUpdatePolicy,
    make_local_summary,
)
from repro.summaries.bloom import BloomSummary
from repro.summaries.exact import ExactDirectorySummary
from repro.summaries.servername import ServerNameSummary

ALL_KINDS = ("bloom", "exact-directory", "server-name")

URLS = [f"http://host{i % 7}.net/doc{i}" for i in range(40)]


class TestFactory:
    @pytest.mark.parametrize(
        "kind, cls",
        [
            ("bloom", BloomSummary),
            ("exact-directory", ExactDirectorySummary),
            ("server-name", ServerNameSummary),
        ],
    )
    def test_kind_selects_class(self, kind, cls):
        summary = make_local_summary(
            SummaryConfig(kind=kind), 1024 * 1024
        )
        assert isinstance(summary, cls)

    def test_unknown_kind_rejected_at_config(self):
        with pytest.raises(ConfigurationError):
            SummaryConfig(kind="merkle")

    def test_labels(self):
        assert SummaryConfig(kind="bloom", load_factor=16).label() == (
            "bloom-16"
        )
        assert SummaryConfig(kind="server-name").label() == "server-name"


class TestSummaryNode:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_shipped_copy_lags_until_publish(self, kind):
        node = SummaryNode(SummaryConfig(kind=kind), 1024 * 1024)
        for url in URLS:
            node.on_insert(url)
        # The live summary sees everything; the shipped copy nothing.
        assert all(node.local.may_contain(u) for u in URLS)
        assert not any(node.shipped.may_contain(u) for u in URLS)
        node.publish(now=1.0)
        assert all(node.shipped.may_contain(u) for u in URLS)
        assert node.new_since_update == 0
        assert node.last_update_time == 1.0

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_evictions_propagate_through_delta(self, kind):
        node = SummaryNode(SummaryConfig(kind=kind), 1024 * 1024)
        for url in URLS:
            node.on_insert(url)
        node.publish(now=1.0)
        victim = URLS[0]  # host0 URLs: doc0, doc7, ... share the server
        node.on_evict(victim)
        node.publish(now=2.0)
        if kind == "server-name":
            # Other docs on host0 remain: the name must survive.
            assert node.shipped.may_contain(victim)
        elif kind == "exact-directory":
            assert not node.shipped.may_contain(victim)
        # (Bloom may keep answering True: false positives are allowed.)
        survivors = [u for u in URLS[1:]]
        assert all(node.shipped.may_contain(u) for u in survivors)

    def test_due_for_update_consults_policy(self):
        node = SummaryNode(SummaryConfig(kind="bloom"), 1024 * 1024)
        policy = ThresholdUpdatePolicy(0.10)
        for url in URLS[:5]:
            node.on_insert(url)
        assert not node.due_for_update(policy, now=0.0, cached_documents=100)
        assert node.due_for_update(policy, now=0.0, cached_documents=50)

    def test_untracked_node_keeps_no_shipped_copy(self):
        node = SummaryNode(
            SummaryConfig(kind="bloom"), 1024 * 1024, track_shipped=False
        )
        node.on_insert(URLS[0])
        assert node.shipped is None
        delta = node.publish(now=1.0)
        assert not delta.is_empty()
        assert node.shipped is None

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_rebuild_resets_bookkeeping(self, kind):
        node = SummaryNode(SummaryConfig(kind=kind), 64 * 1024)
        for url in URLS:
            node.on_insert(url)
        live = URLS[:10]
        node.rebuild(live, now=5.0)
        assert node.new_since_update == 0
        assert node.last_update_time == 5.0
        assert all(node.local.may_contain(u) for u in live)
        # The shipped copy is refreshed wholesale (digest resync).
        assert all(node.shipped.may_contain(u) for u in live)

    def test_bloom_rebuild_doubles_bits(self):
        node = SummaryNode(SummaryConfig(kind="bloom"), 64 * 1024)
        before = node.local.num_bits
        node.rebuild(URLS, now=0.0)
        assert node.local.num_bits == before * 2
        # Rebuild discards pending flips: peers resync via digest.
        assert node.local.pending_change_count() == 0

    def test_bloom_overloaded_thresholds(self):
        node = SummaryNode(
            SummaryConfig(kind="bloom", load_factor=8), 64 * 1024
        )
        expected = node.local.num_bits // 8
        assert not node.local.overloaded(expected * 2, 2.0)
        assert node.local.overloaded(expected * 2 + 1, 2.0)

    @pytest.mark.parametrize("kind", ["exact-directory", "server-name"])
    def test_set_summaries_never_overloaded(self, kind):
        node = SummaryNode(SummaryConfig(kind=kind), 64 * 1024)
        assert not node.local.overloaded(10**9, 2.0)


class TestRebuildFromStoredDigests:
    """Rebuilds fed cache-stored MD5 digests must match rebuild-by-hashing."""

    URLS = [f"http://digest{i}.example.com/obj/{i}" for i in range(40)]

    def _digests(self):
        import hashlib

        return {u: hashlib.md5(u.encode()).digest() for u in self.URLS}

    def test_bloom_rebuild_identical(self):
        hashed = BloomSummary(128, SummaryConfig(kind="bloom"))
        from_digests = BloomSummary(128, SummaryConfig(kind="bloom"))
        hashed.rebuild(self.URLS)
        from_digests.rebuild(self.URLS, digests=self._digests())
        assert (
            from_digests.counting_filter.snapshot()
            == hashed.counting_filter.snapshot()
        )

    def test_bloom_rebuild_partial_digests_fall_back_to_hashing(self):
        digests = self._digests()
        for url in self.URLS[::3]:
            del digests[url]
        hashed = BloomSummary(128, SummaryConfig(kind="bloom"))
        partial = BloomSummary(128, SummaryConfig(kind="bloom"))
        hashed.rebuild(self.URLS)
        partial.rebuild(self.URLS, digests=digests)
        assert (
            partial.counting_filter.snapshot()
            == hashed.counting_filter.snapshot()
        )

    def test_bloom_wide_family_ignores_digests(self):
        # 5 x 32 = 160 stream bits > 128: digests cannot cover the
        # geometry, so the rebuild must hash and still be correct.
        config = SummaryConfig(kind="bloom", num_hashes=5)
        hashed = BloomSummary(128, config)
        wide = BloomSummary(128, config)
        hashed.rebuild(self.URLS)
        wide.rebuild(self.URLS, digests=self._digests())
        assert (
            wide.counting_filter.snapshot()
            == hashed.counting_filter.snapshot()
        )

    def test_exact_rebuild_identical(self):
        hashed = ExactDirectorySummary()
        from_digests = ExactDirectorySummary()
        hashed.rebuild(self.URLS)
        from_digests.rebuild(self.URLS, digests=self._digests())
        assert len(from_digests) == len(hashed)
        for url in self.URLS:
            assert from_digests.may_contain(url)
            assert from_digests.export().may_contain(url)
