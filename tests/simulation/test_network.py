"""Tests for the network model and packet counters."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.network import (
    TCP_MSS,
    NetworkModel,
    PacketCounters,
    _segments,
)


class TestSegments:
    def test_minimum_one(self):
        assert _segments(0) == 1
        assert _segments(-5) == 1

    def test_mss_boundaries(self):
        assert _segments(TCP_MSS) == 1
        assert _segments(TCP_MSS + 1) == 2
        assert _segments(10 * TCP_MSS) == 10


class TestPacketCounters:
    def test_udp_counts_both_ends(self):
        a, b = PacketCounters(), PacketCounters()
        a.count_udp(b)
        assert a.udp_sent == 1
        assert b.udp_received == 1
        assert a.total_packets == 1
        assert b.total_packets == 1

    def test_tcp_exchange_is_symmetric(self):
        a, b = PacketCounters(), PacketCounters()
        a.count_tcp_exchange(b, bytes_to_other=200, bytes_from_other=8000)
        # Whatever a sends, b receives, and vice versa.
        assert a.tcp_sent == b.tcp_received
        assert a.tcp_received == b.tcp_sent
        # The 8000-byte direction needs 6 data segments.
        assert b.tcp_sent >= 6

    def test_total_packets_sums_all(self):
        c = PacketCounters(
            udp_sent=1, udp_received=2, tcp_sent=3, tcp_received=4
        )
        assert c.total_packets == 10


class TestNetworkModel:
    def test_transfer_time_components(self):
        net = NetworkModel(lan_latency=0.001, bandwidth=1000.0)
        assert net.transfer_time(0) == pytest.approx(0.001)
        assert net.transfer_time(500) == pytest.approx(0.001 + 0.5)

    def test_defaults_are_fast_ethernet(self):
        net = NetworkModel()
        # 100 Mb/s: 12500 bytes take ~1 ms plus latency.
        assert net.transfer_time(12500) == pytest.approx(
            net.lan_latency + 0.001
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(lan_latency=-1)
        with pytest.raises(ConfigurationError):
            NetworkModel(bandwidth=0)
