"""Tests for the measured Section V-F run and dissemination policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.nodes import SimProxyConfig
from repro.simulation.scale import (
    DISSEMINATION_POLICIES,
    run_scale_experiment,
)
from repro.traces.binary import BinaryTraceReader, pack_trace
from repro.traces.model import Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

NUM_PROXIES = 8


@pytest.fixture(scope="module")
def scale_trace() -> Trace:
    return generate_trace(
        SyntheticTraceConfig(
            name="scale-test",
            num_requests=2500,
            num_clients=NUM_PROXIES * 4,
            num_documents=900,
            mean_size=2048,
            max_size=64 * 1024,
            mod_probability=0.01,
            seed=7,
        )
    )


@pytest.fixture(scope="module")
def results(scale_trace):
    return {
        policy: run_scale_experiment(
            scale_trace,
            num_proxies=NUM_PROXIES,
            dissemination=policy,
            fanout=2,
            cache_capacity=128 * 1024,
            origin_delay=0.1,
        )
        for policy in DISSEMINATION_POLICIES
    }


class TestScaleRun:
    def test_every_request_served(self, scale_trace, results):
        for result in results.values():
            assert result.requests == len(scale_trace)

    def test_udp_conservation(self, results):
        # Every datagram sent is received by exactly one node.
        for result in results.values():
            assert result.udp_sent == result.udp_received
            assert result.udp_sent > 0

    def test_policies_agree_on_cache_outcomes(self, results):
        unicast = results["unicast"]
        hierarchy = results["hierarchy"]
        # Relayed updates arrive a few hops later, so peer summaries lag
        # slightly and round counts can drift by a round or two -- but
        # the aggregate behaviour must stay the same.
        assert hierarchy.hit_ratio == pytest.approx(
            unicast.hit_ratio, rel=0.05
        )
        assert hierarchy.update_messages == pytest.approx(
            unicast.update_messages, rel=0.02
        )

    def test_update_rounds_ship_to_every_peer(self, results):
        # One update round = N-1 messages under either policy (unicast
        # sends them all itself; hierarchy splits them across relays).
        for result in results.values():
            assert result.update_messages % (NUM_PROXIES - 1) == 0

    def test_hierarchy_bounds_sender_load(self, results):
        # The relay tree spreads the updater's fan-out over peers, so
        # the busiest sender ships no more updates than under all-pairs
        # unicast (per-updater rotation spreads relay duty).
        assert (
            results["hierarchy"].sender_max_dirupdates
            <= results["unicast"].sender_max_dirupdates
        )

    def test_prediction_attached(self, results):
        for result in results.values():
            assert result.predicted["summary_memory_bytes"] > 0
            assert result.predicted["update_messages_per_request"] > 0

    def test_memory_accounting_positive(self, results):
        for result in results.values():
            assert result.summary_memory_bytes > 0
            assert result.counter_memory_bytes > 0
            assert result.peak_rss_bytes > 0

    def test_to_dict_round_trips_fields(self, results):
        payload = results["unicast"].to_dict()
        assert payload["num_proxies"] == NUM_PROXIES
        assert payload["dissemination"] == "unicast"


class TestFeedShapes:
    def test_reader_feed_matches_trace_feed(self, scale_trace, tmp_path):
        path = str(tmp_path / "scale.sctr")
        pack_trace(scale_trace, path)
        in_memory = run_scale_experiment(
            scale_trace,
            num_proxies=4,
            cache_capacity=128 * 1024,
            origin_delay=0.1,
        )
        with BinaryTraceReader(path) as reader:
            streamed = run_scale_experiment(
                reader,
                num_proxies=4,
                cache_capacity=128 * 1024,
                origin_delay=0.1,
            )
        assert streamed.requests == in_memory.requests
        assert streamed.hit_ratio == in_memory.hit_ratio
        assert streamed.update_messages == in_memory.update_messages
        assert streamed.udp_sent == in_memory.udp_sent

    def test_one_shot_generator_rejected(self, scale_trace):
        with pytest.raises(ConfigurationError, match="re-iterable"):
            run_scale_experiment(
                (r for r in scale_trace.requests), num_proxies=4
            )


class TestValidation:
    def test_unknown_policy_rejected(self, scale_trace):
        with pytest.raises(ConfigurationError, match="dissemination"):
            run_scale_experiment(
                scale_trace, num_proxies=4, dissemination="multicast"
            )

    def test_config_rejects_unknown_dissemination(self):
        with pytest.raises(ConfigurationError):
            SimProxyConfig(dissemination="broadcast")

    def test_config_rejects_bad_fanout(self):
        with pytest.raises(ConfigurationError):
            SimProxyConfig(
                dissemination="hierarchy", dissemination_fanout=0
            )

    def test_fanout_one_degenerates_to_chain(self, scale_trace):
        # fanout=1 is a relay chain -- the extreme tree still delivers
        # every update exactly once.
        chain = run_scale_experiment(
            scale_trace,
            num_proxies=4,
            dissemination="hierarchy",
            fanout=1,
            cache_capacity=128 * 1024,
            origin_delay=0.1,
        )
        unicast = run_scale_experiment(
            scale_trace,
            num_proxies=4,
            dissemination="unicast",
            cache_capacity=128 * 1024,
            origin_delay=0.1,
        )
        assert chain.update_messages % 3 == 0
        assert chain.update_messages == pytest.approx(
            unicast.update_messages, rel=0.02
        )
        assert chain.hit_ratio == pytest.approx(
            unicast.hit_ratio, rel=0.05
        )
        assert chain.udp_sent == chain.udp_received
