"""Tests for the Table II / IV / V experiment harnesses."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.proxy.config import ProxyMode
from repro.simulation.costs import CostModel, CpuAccount
from repro.simulation.experiment import (
    run_overhead_experiment,
    run_replay_experiment,
)
from repro.simulation.nodes import SimProxyConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

SMALL = dict(clients_per_proxy=4, requests_per_client=50)


@pytest.fixture(scope="module")
def overhead_results():
    return {
        mode: run_overhead_experiment(mode, **SMALL)
        for mode in (ProxyMode.NO_ICP, ProxyMode.ICP, ProxyMode.SC_ICP)
    }


class TestCostModel:
    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(http_user=-1)

    def test_cpu_account(self):
        acct = CpuAccount()
        total = acct.charge(user=1.0, system=2.0)
        assert total == 3.0
        assert acct.user == 1.0
        assert acct.system == 2.0
        assert acct.total == 3.0


class TestOverheadExperiment:
    def test_no_remote_hits_by_construction(self, overhead_results):
        # "the requests issued by different clients do not overlap;
        # there is no remote cache hit among proxies."
        for result in overhead_results.values():
            assert result.remote_hit_ratio == 0.0

    def test_hit_ratio_same_across_modes(self, overhead_results):
        ratios = [r.hit_ratio for r in overhead_results.values()]
        assert max(ratios) - min(ratios) < 1e-9

    def test_icp_udp_factor_in_papers_range(self, overhead_results):
        base = overhead_results[ProxyMode.NO_ICP]
        icp = overhead_results[ProxyMode.ICP]
        base_udp = base.udp_sent + base.udp_received
        icp_udp = icp.udp_sent + icp.udp_received
        assert base_udp > 0  # keep-alives
        factor = icp_udp / base_udp
        # The paper's Table II: a factor of 73-90 at full benchmark
        # size.  This unit test runs at 1/15 of that size, where the
        # request rate (and hence ICP traffic per keep-alive) is lower.
        assert 10 < factor < 120

    def test_sc_icp_udp_far_below_icp(self, overhead_results):
        icp = overhead_results[ProxyMode.ICP]
        sc = overhead_results[ProxyMode.SC_ICP]
        icp_udp = icp.udp_sent + icp.udp_received
        sc_udp = sc.udp_sent + sc.udp_received
        # The paper: "The improved protocol reduces the UDP traffic by
        # a factor of 50."
        assert icp_udp / max(1, sc_udp) > 10

    def test_icp_cpu_and_latency_overheads_positive(self, overhead_results):
        base = overhead_results[ProxyMode.NO_ICP]
        icp = overhead_results[ProxyMode.ICP]
        overhead = icp.overhead_vs(base)
        assert 5 < overhead["user_cpu"] < 60
        assert 2 < overhead["system_cpu"] < 30
        # Latency inflation is queueing-driven and shrinks with the
        # light load of this small run; it just needs to be visible.
        assert overhead["latency"] > 0.1

    def test_sc_icp_close_to_no_icp(self, overhead_results):
        base = overhead_results[ProxyMode.NO_ICP]
        sc = overhead_results[ProxyMode.SC_ICP]
        overhead = sc.overhead_vs(base)
        assert overhead["user_cpu"] < 10
        assert overhead["latency"] < 3

    def test_icp_query_count_formula(self, overhead_results):
        icp = overhead_results[ProxyMode.ICP]
        misses = round(icp.requests * (1 - icp.hit_ratio))
        # Every miss queries all 3 peers.
        assert icp.false_query_rounds == 0  # ICP mode has no summaries
        expected_queries = misses * 3
        # queries sent + replies received both count as UDP at the
        # requester; each also counts at the peer.
        assert icp.udp_sent >= expected_queries

    def test_deterministic_with_same_seed(self):
        a = run_overhead_experiment(ProxyMode.ICP, seed=7, **SMALL)
        b = run_overhead_experiment(ProxyMode.ICP, seed=7, **SMALL)
        assert a.hit_ratio == b.hit_ratio
        assert a.mean_latency == b.mean_latency
        assert a.udp_sent == b.udp_sent

    def test_higher_hit_ratio_lowers_latency(self):
        low = run_overhead_experiment(
            ProxyMode.NO_ICP, target_hit_ratio=0.25, **SMALL
        )
        high = run_overhead_experiment(
            ProxyMode.NO_ICP, target_hit_ratio=0.45, **SMALL
        )
        assert high.hit_ratio > low.hit_ratio + 0.1
        assert high.mean_latency < low.mean_latency


@pytest.fixture(scope="module")
def replay_trace():
    return generate_trace(
        SyntheticTraceConfig(
            name="replay",
            num_requests=1500,
            num_clients=24,
            num_documents=500,
            mean_size=2048,
            max_size=64 * 1024,
            mod_probability=0.002,
            seed=31,
        )
    )


class TestReplayExperiment:
    def test_remote_hits_occur(self, replay_trace):
        result = run_replay_experiment(
            replay_trace, ProxyMode.SC_ICP, clients_per_proxy=4
        )
        assert result.remote_hit_ratio > 0.0

    def test_sc_icp_latency_not_worse_than_no_icp(self, replay_trace):
        # Table IV: "The enhanced ICP protocol lowers the client latency
        # slightly compared to the no-ICP case" (remote hits beat the
        # 1-second origin delay).
        base = run_replay_experiment(
            replay_trace, ProxyMode.NO_ICP, clients_per_proxy=4
        )
        sc = run_replay_experiment(
            replay_trace, ProxyMode.SC_ICP, clients_per_proxy=4
        )
        assert sc.mean_latency <= base.mean_latency * 1.02
        assert sc.hit_ratio > base.hit_ratio

    def test_sc_icp_udp_far_below_icp(self, replay_trace):
        icp = run_replay_experiment(
            replay_trace, ProxyMode.ICP, clients_per_proxy=4
        )
        # At this tiny scale the prototype's packet-fill policy (342
        # flips per update) barely fires, so use the threshold policy
        # to exercise the paper's recommended configuration.
        sc = run_replay_experiment(
            replay_trace,
            ProxyMode.SC_ICP,
            clients_per_proxy=4,
            proxy_config=SimProxyConfig(
                update_policy="threshold", update_threshold=0.01
            ),
        )
        # Total UDP drops; the per-miss query flood specifically drops
        # by a large factor (updates dominate SC-ICP's residual UDP at
        # this tiny cache scale -- a scale artifact, see EXPERIMENTS.md).
        assert (sc.udp_sent + sc.udp_received) < (
            icp.udp_sent + icp.udp_received
        )
        # (Both sides still include the keep-alive baseline, which is
        # why the divisor is 4 rather than the paper's larger factor.)
        sc_query_udp = sc.udp_sent - sc.dirupdates_sent
        assert sc_query_udp < icp.udp_sent / 4
        # Hit ratios stay close (the paper: "only slightly decreasing
        # the total hit ratio").
        assert sc.hit_ratio > icp.hit_ratio - 0.05

    def test_round_robin_assignment_runs(self, replay_trace):
        result = run_replay_experiment(
            replay_trace,
            ProxyMode.SC_ICP,
            clients_per_proxy=4,
            assignment="round-robin",
        )
        assert result.requests == len(replay_trace)

    def test_unknown_assignment_rejected(self, replay_trace):
        with pytest.raises(ConfigurationError):
            run_replay_experiment(
                replay_trace, ProxyMode.NO_ICP, assignment="zigzag"
            )
