"""Property-based tests of the DES kernel."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import Engine


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=80, deadline=None)
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    engine = Engine()
    fire_times = []
    for delay in delays:
        engine.call_later(delay, lambda: fire_times.append(engine.now))
    engine.run()
    assert len(fire_times) == len(delays)
    assert fire_times == sorted(fire_times)
    assert fire_times == sorted(delays)


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_resource_serializes_work_exactly(service_times):
    """A FIFO resource's total busy time equals the sum of service
    times, and the last job finishes exactly at that sum when all jobs
    arrive at time zero."""
    engine = Engine()
    cpu = engine.resource()
    completions = []

    def job(service):
        def process():
            yield cpu.serve(service)
            completions.append(engine.now)

        return process()

    for service in service_times:
        engine.spawn(job(service))
    end = engine.run()
    total = sum(service_times)
    assert cpu.busy_time == abs(cpu.busy_time)  # sanity
    assert abs(cpu.busy_time - total) < 1e-9 * max(1, len(service_times))
    assert abs(end - total) < 1e-6
    # Completion times are the prefix sums of the (FIFO) service order.
    prefix = 0.0
    for service, completed in zip(service_times, completions):
        prefix += service
        assert abs(completed - prefix) < 1e-6


@given(st.integers(1, 30), st.integers(0, 29))
@settings(max_examples=60, deadline=None)
def test_signal_wakes_every_waiter_once(num_waiters, fire_after):
    engine = Engine()
    signal = engine.signal()
    woken = []

    def waiter(i):
        def process():
            value = yield signal
            woken.append((i, value, engine.now))

        return process()

    for i in range(num_waiters):
        engine.spawn(waiter(i))
    engine.call_later(float(fire_after), signal.fire, "v")
    engine.run()
    assert len(woken) == num_waiters
    assert {i for i, _v, _t in woken} == set(range(num_waiters))
    assert all(v == "v" for _i, v, _t in woken)
    assert all(t == float(fire_after) for _i, _v, t in woken)
