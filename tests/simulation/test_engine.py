"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import Engine


class TestEventOrdering:
    def test_callbacks_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.call_later(2.0, order.append, "late")
        engine.call_later(1.0, order.append, "early")
        engine.call_later(3.0, order.append, "latest")
        engine.run()
        assert order == ["early", "late", "latest"]

    def test_ties_broken_by_scheduling_order(self):
        engine = Engine()
        order = []
        engine.call_later(1.0, order.append, "first")
        engine.call_later(1.0, order.append, "second")
        engine.run()
        assert order == ["first", "second"]

    def test_clock_advances(self):
        engine = Engine()
        times = []
        engine.call_later(5.0, lambda: times.append(engine.now))
        assert engine.run() == 5.0
        assert times == [5.0]

    def test_run_until(self):
        engine = Engine()
        fired = []
        engine.call_later(1.0, fired.append, 1)
        engine.call_later(10.0, fired.append, 10)
        assert engine.run(until=5.0) == 5.0
        assert fired == [1]
        # Remaining events still run on resume.
        engine.run()
        assert fired == [1, 10]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().call_later(-1, lambda: None)


class TestProcesses:
    def test_yield_number_sleeps(self):
        engine = Engine()
        trace = []

        def process():
            trace.append(engine.now)
            yield 2.5
            trace.append(engine.now)

        engine.spawn(process())
        engine.run()
        assert trace == [0.0, 2.5]

    def test_yield_signal_parks_until_fire(self):
        engine = Engine()
        signal = engine.signal()
        trace = []

        def waiter():
            value = yield signal
            trace.append((engine.now, value))

        engine.spawn(waiter())
        engine.call_later(4.0, signal.fire, "payload")
        engine.run()
        assert trace == [(4.0, "payload")]

    def test_yield_fired_signal_resumes_immediately(self):
        engine = Engine()
        signal = engine.signal()
        signal.fire("early")
        result = []

        def process():
            value = yield signal
            result.append(value)

        engine.spawn(process())
        engine.run()
        assert result == ["early"]

    def test_yield_garbage_raises(self):
        engine = Engine()

        def process():
            yield "not-a-signal"

        engine.spawn(process())
        with pytest.raises(SimulationError):
            engine.run()

    def test_multiple_waiters_all_wake(self):
        engine = Engine()
        signal = engine.signal()
        woken = []

        def make(name):
            def process():
                yield signal
                woken.append(name)

            return process()

        engine.spawn(make("a"))
        engine.spawn(make("b"))
        engine.call_later(1.0, signal.fire)
        engine.run()
        assert sorted(woken) == ["a", "b"]


class TestSignal:
    def test_double_fire_raises(self):
        engine = Engine()
        signal = engine.signal()
        signal.fire()
        with pytest.raises(SimulationError):
            signal.fire()

    def test_value_property(self):
        engine = Engine()
        signal = engine.signal()
        assert not signal.fired
        signal.fire(42)
        assert signal.fired
        assert signal.value == 42


class TestResource:
    def test_fifo_service(self):
        engine = Engine()
        cpu = engine.resource("cpu")
        completions = []

        def job(name, service):
            def process():
                yield cpu.serve(service)
                completions.append((name, engine.now))

            return process()

        engine.spawn(job("a", 2.0))
        engine.spawn(job("b", 1.0))
        engine.run()
        # FIFO: "a" (first spawned) serves first; "b" queues behind it.
        assert completions == [("a", 2.0), ("b", 3.0)]

    def test_busy_time_accumulates(self):
        engine = Engine()
        cpu = engine.resource()

        def process():
            yield cpu.serve(1.5)
            yield cpu.serve(0.5)

        engine.spawn(process())
        engine.run()
        assert cpu.busy_time == pytest.approx(2.0)
        assert cpu.jobs == 2

    def test_idle_resource_starts_immediately(self):
        engine = Engine()
        cpu = engine.resource()
        done_at = []

        def process():
            yield 10.0
            yield cpu.serve(1.0)
            done_at.append(engine.now)

        engine.spawn(process())
        engine.run()
        assert done_at == [11.0]

    def test_queue_length(self):
        engine = Engine()
        cpu = engine.resource()
        cpu.serve(5.0)
        cpu.serve(5.0)
        cpu.serve(5.0)
        assert cpu.queue_length == 2

    def test_negative_service_time_raises(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.resource().serve(-0.1)
