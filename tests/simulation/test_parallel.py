"""Tests for the parallel experiment runner (repro.simulation.parallel)."""

from __future__ import annotations

import pytest

from repro import experiments
from repro.errors import ConfigurationError
from repro.simulation.parallel import (
    ExperimentCell,
    fig5_grid,
    run_cell,
    run_cells,
)

#: Small but non-trivial: ~3 cells over a scaled-down 4-proxy workload.
SCALE = 0.2


def _signature(result):
    """The Fig. 5-8 numbers a cell must reproduce exactly."""
    return (
        result.scheme,
        result.requests,
        result.local_hits,
        result.remote_hits,
        result.false_hits,
        result.false_misses,
        result.total_hit_ratio,
        result.messages.total_messages,
        result.messages.total_bytes,
    )


class TestExperimentCell:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            ExperimentCell(workload="nlanr", kind="quantum")

    def test_labels(self):
        assert (
            ExperimentCell(workload="nlanr", kind="bloom", load_factor=16)
            .label()
            == "nlanr/bloom-16/t=0.01"
        )
        assert (
            ExperimentCell(workload="dec", kind="icp").label()
            == "dec/icp/t=0.01"
        )

    def test_cells_are_hashable_and_comparable(self):
        a = ExperimentCell(workload="nlanr")
        b = ExperimentCell(workload="nlanr")
        assert a == b
        assert hash(a) == hash(b)

    def test_run_cell_deterministic(self):
        cell = ExperimentCell(workload="nlanr", kind="bloom", scale=SCALE)
        assert _signature(run_cell(cell)) == _signature(run_cell(cell))

    def test_seed_override_changes_trace(self):
        base = ExperimentCell(workload="nlanr", kind="icp", scale=SCALE)
        reseeded = ExperimentCell(
            workload="nlanr", kind="icp", scale=SCALE, seed=2_024
        )
        assert _signature(run_cell(base)) != _signature(run_cell(reseeded))


class TestFig5Grid:
    def test_shape(self):
        grid = fig5_grid(
            ["nlanr", "upisa"], load_factors=(8, 16), thresholds=(0.01,)
        )
        # Per workload: exact + server-name + 2 blooms + icp = 5.
        assert len(grid) == 10
        kinds = {c.kind for c in grid}
        assert kinds == {"exact-directory", "server-name", "bloom", "icp"}

    def test_icp_once_per_workload_across_thresholds(self):
        grid = fig5_grid(
            ["nlanr"], load_factors=(8,), thresholds=(0.01, 0.1)
        )
        assert sum(1 for c in grid if c.kind == "icp") == 1


class TestRunCells:
    def test_empty(self):
        assert run_cells([], jobs=4) == []

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ConfigurationError):
            run_cells([ExperimentCell(workload="nlanr")], chunksize=0)

    def test_parallel_matches_serial_bit_for_bit(self):
        """The headline guarantee: jobs=N is bit-exact with jobs=1.

        A small Fig. 5-style grid both ways; hit ratios, false-hit
        counts, and message totals must be identical, in input order.
        """
        cells = fig5_grid(
            ["nlanr"], load_factors=(8,), thresholds=(0.01,), scale=SCALE
        )
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert [_signature(r) for r in serial] == [
            _signature(r) for r in parallel
        ]

    def test_results_come_back_in_input_order(self):
        cells = [
            ExperimentCell(workload="nlanr", kind="icp", scale=SCALE),
            ExperimentCell(workload="nlanr", kind="bloom", scale=SCALE),
        ]
        results = run_cells(cells, jobs=2)
        assert results[0].scheme == "icp"
        assert results[1].scheme.startswith("summary/bloom")


class TestExperimentsIntegration:
    def test_representations_jobs_matches_serial(self):
        serial = experiments.representations(
            "nlanr", scale=SCALE, threshold=0.01
        )
        parallel = experiments.representations(
            "nlanr", scale=SCALE, threshold=0.01, jobs=2
        )
        assert list(serial) == list(parallel)
        for label in serial:
            assert _signature(serial[label]) == _signature(parallel[label])

    def test_table3_jobs_matches_serial(self):
        serial = experiments.table3(workloads=("nlanr",), scale=SCALE)
        parallel = experiments.table3(
            workloads=("nlanr",), scale=SCALE, jobs=2
        )
        assert serial == parallel


class TestPackOnceReplayMany:
    def test_trace_path_cell_matches_generated_cell(self, tmp_path):
        from repro.traces.workloads import pack_workload

        path = str(tmp_path / "nlanr.sctr")
        pack_workload("nlanr", path, scale=SCALE)
        generated = ExperimentCell(workload="nlanr", scale=SCALE)
        packed = ExperimentCell(
            workload="nlanr", scale=SCALE, trace_path=path
        )
        assert _signature(run_cell(packed)) == _signature(
            run_cell(generated)
        )

    def test_pack_grid_traces_dedups_by_workload(self, tmp_path):
        from repro.simulation.parallel import pack_grid_traces

        cells = fig5_grid(
            ["nlanr"], load_factors=(8, 16), scale=SCALE
        )
        packed = pack_grid_traces(cells, tmp_path)
        assert len(packed) == len(cells)
        paths = {cell.trace_path for cell in packed}
        # Many cells, one workload -> exactly one packed file.
        assert len(paths) == 1
        assert list(tmp_path.glob("*.sctr"))

    def test_packed_grid_matches_generated_grid(self, tmp_path):
        from repro.simulation.parallel import pack_grid_traces

        cells = fig5_grid(
            ["nlanr"],
            load_factors=(8,),
            include_server_name=False,
            scale=SCALE,
        )
        direct = run_cells(cells, jobs=1)
        packed = run_cells(pack_grid_traces(cells, tmp_path), jobs=2)
        assert [_signature(r) for r in packed] == [
            _signature(r) for r in direct
        ]
