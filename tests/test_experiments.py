"""Smoke tests for the experiment runners (one per table/figure)."""

from __future__ import annotations

import pytest

from repro import experiments


class TestTable1:
    def test_rows_for_all_workloads(self):
        headers, rows = experiments.table1(scale=0.05)
        assert len(rows) == 5
        assert headers[0] == "trace"
        names = [row[0] for row in rows]
        assert names == list(experiments.ALL_WORKLOADS)


class TestFig1:
    def test_sharing_dominates_no_sharing(self):
        headers, rows = experiments.fig1(
            "upisa", scale=0.2, cache_fractions=(0.05, 0.10)
        )
        assert len(rows) == 2
        for row in rows:
            no_sharing = float(row[1])
            simple = float(row[2])
            global_cache = float(row[4])
            assert simple > no_sharing
            assert global_cache > no_sharing

    def test_hit_ratio_grows_with_cache_size(self):
        _headers, rows = experiments.fig1(
            "upisa", scale=0.2, cache_fractions=(0.01, 0.10)
        )
        assert float(rows[1][1]) > float(rows[0][1])


class TestFig2:
    def test_threshold_zero_is_best(self):
        _headers, rows = experiments.fig2(
            "upisa", scale=0.2, thresholds=(0.0, 0.01, 0.10)
        )
        hit_ratios = [float(row[1]) for row in rows]
        assert hit_ratios[0] >= hit_ratios[1] >= hit_ratios[2] - 1e-9
        # False misses are zero without delay.
        assert float(rows[0][2]) == 0.0


class TestTable3:
    def test_bloom_is_an_order_cheaper_than_exact(self):
        _headers, rows = experiments.table3(
            workloads=("upisa",), scale=0.2
        )
        (row,) = rows

        def pct(cell: str) -> float:
            return float(cell.rstrip("%"))

        exact, server, b8, b16, b32 = map(pct, row[1:])
        assert b8 < exact / 4
        assert b8 < b16 < b32


class TestFig4:
    def test_table_spans_axis(self):
        headers, rows = experiments.fig4()
        assert rows[0][0] == 2
        assert rows[-1][0] == 32


class TestRepresentations:
    @pytest.fixture(scope="class")
    def results(self):
        # A 5% threshold keeps update traffic in proportion at test
        # scale (tiny caches hold ~100 documents, so 1% would fire
        # every few requests); benches use the paper's 1% at full scale.
        return experiments.representations(
            "upisa", scale=0.3, threshold=0.05
        )

    def test_all_six_configs_present(self, results):
        assert set(results) == {
            "exact-directory",
            "server-name",
            "bloom-8",
            "bloom-16",
            "bloom-32",
            "icp",
        }

    def test_fig5_hit_ratios_close(self, results):
        ratios = [
            results[k].total_hit_ratio
            for k in ("exact-directory", "bloom-8", "bloom-16", "bloom-32")
        ]
        assert max(ratios) - min(ratios) < 0.02

    def test_fig6_false_hit_ordering(self, results):
        assert (
            results["server-name"].false_hit_ratio
            > results["bloom-8"].false_hit_ratio
            >= results["bloom-32"].false_hit_ratio
        )

    def test_fig7_icp_sends_most_messages(self, results):
        icp = results["icp"].messages_per_request
        for key in ("exact-directory", "bloom-16", "bloom-32"):
            assert results[key].messages_per_request < icp

    def test_fig8_bloom_bytes_below_icp(self, results):
        assert (
            results["bloom-16"].message_bytes_per_request
            < results["icp"].message_bytes_per_request
        )

    def test_rows_render(self, results):
        headers, rows = experiments.representation_rows(results)
        assert len(rows) == 6
        assert headers[0] == "summary"


class TestTable2:
    def test_rows_and_overheads(self):
        headers, rows = experiments.table2(
            target_hit_ratio=0.25,
            clients_per_proxy=3,
            requests_per_client=40,
        )
        configs = [row[0] for row in rows]
        assert configs[:3] == ["no-icp", "icp", "sc-icp"]
        assert "icp overhead" in configs[3]
        # All three modes show the same hit ratio (no remote hits).
        assert rows[0][1] == rows[1][1] == rows[2][1]


class TestTable45:
    def test_client_bound_replay(self):
        headers, rows = experiments.table45(
            assignment="client-bound",
            workload="upisa",
            scale=0.1,
            num_requests=1200,
            clients_per_proxy=4,
        )
        assert [row[0] for row in rows] == ["no-icp", "icp", "sc-icp"]
        # ICP and SC-ICP find remote hits; no-ICP cannot.
        assert float(rows[0][2]) == 0.0
        assert float(rows[1][2]) > 0.0


class TestScalability:
    def test_headline_row(self):
        _headers, rows = experiments.scalability(proxy_counts=(100,))
        (row,) = rows
        assert row[0] == 100
        assert float(row[5]) < 0.06
