"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.traces.readers import read_jsonl


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig1", "--workload", "aol"])


class TestCommands:
    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "bits/entry" in out

    def test_scalability(self, capsys):
        assert main(["scalability"]) == 0
        out = capsys.readouterr().out
        assert "Section V-F" in out
        assert "100" in out

    def test_fig1_small(self, capsys):
        assert main(["fig1", "--workload", "upisa", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "no-sharing" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--workload", "upisa", "--scale", "0.1"]) == 0
        assert "threshold" in capsys.readouterr().out

    def test_representations_small(self, capsys):
        assert (
            main(
                [
                    "representations",
                    "--workload",
                    "upisa",
                    "--scale",
                    "0.1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bloom-16" in out
        assert "icp" in out

    def test_table2_small(self, capsys):
        assert (
            main(
                [
                    "table2",
                    "--clients-per-proxy",
                    "2",
                    "--requests-per-client",
                    "30",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sc-icp" in out
        assert "overhead" in out

    def test_loadgen_small(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bench.json"
        assert (
            main(
                [
                    "loadgen",
                    "--proxies",
                    "1",
                    "--clients",
                    "2",
                    "--requests",
                    "8",
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "baseline_per_connection" in out
        assert "keepalive_pooled" in out
        assert "speedup" in out
        record = json.loads(out_path.read_text())
        assert record["benchmark"] == "proxy_loadgen"
        assert len(record["runs"]) == 2
        assert record["runs"][0]["errors"] == 0
        assert record["runs"][1]["errors"] == 0
        # Same workload, same cache behaviour, different connections.
        assert (
            record["runs"][0]["cache_sources"]
            == record["runs"][1]["cache_sources"]
        )

    def test_loadgen_single_phase(self, capsys):
        assert (
            main(
                [
                    "loadgen",
                    "--proxies",
                    "1",
                    "--clients",
                    "2",
                    "--requests",
                    "5",
                    "--phases",
                    "keepalive",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "keepalive_pooled" in out
        assert "baseline" not in out

    def test_gen_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "gen-trace",
                    "--workload",
                    "upisa",
                    "--scale",
                    "0.05",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        trace = read_jsonl(out_path)
        assert len(trace) > 0
        assert "wrote" in capsys.readouterr().out


class TestExtensionCommands:
    def test_hierarchy(self, capsys):
        assert (
            main(["hierarchy", "--workload", "questnet", "--scale", "0.1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Section VIII" in out
        assert "parent-load" in out

    def test_alternatives(self, capsys):
        assert (
            main(["alternatives", "--workload", "ucb", "--scale", "0.1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "carp" in out
        assert "directory-server" in out


class TestScaledTableCommands:
    def test_table1_scaled(self, capsys):
        assert main(["table1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "nlanr" in out

    def test_table3_scaled(self, capsys):
        assert main(["table3", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "bloom-16" in out


class TestObsCommands:
    def test_obs_cluster_booted(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "snapshot.json"
        assert (
            main(
                [
                    "obs",
                    "cluster",
                    "--boot",
                    "2",
                    "--clients",
                    "2",
                    "--requests",
                    "10",
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "proxy0" in out
        assert "traces:" in out
        doc = json.loads(out_path.read_text())
        assert set(doc["proxies"]) == {"proxy0", "proxy1"}
        assert doc["totals"]["proxy_http_requests_total"] > 0
        assert doc["false_hit_attribution"][0]["representation"] == "bloom"

    def test_obs_trace_requires_targets(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "trace", "deadbeef"])

    def test_obs_bad_target_spec(self):
        from repro.cli import _parse_targets
        from repro.errors import ConfigurationError

        assert _parse_targets(["127.0.0.1:8081", ":9000"]) == [
            ("127.0.0.1", 8081),
            ("127.0.0.1", 9000),
        ]
        with pytest.raises(ConfigurationError):
            _parse_targets(["no-port-here"])

    def test_obs_overhead_merges_bench_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"existing_key": 1}))
        assert (
            main(
                [
                    "obs",
                    "overhead",
                    "--proxies",
                    "2",
                    "--clients",
                    "2",
                    "--requests",
                    "10",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tracing overhead:" in out
        doc = json.loads(path.read_text())
        assert doc["existing_key"] == 1
        section = doc["tracing_overhead"]
        assert section["enabled_requests_per_second"] > 0
        assert section["disabled_requests_per_second"] > 0
        assert section["cache_sources_identical"] is True

    def test_serve_trace_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--trace-capacity", "64", "--no-trace"]
        )
        assert args.trace_capacity == 64
        assert args.no_trace is True


class TestTraceCommands:
    @pytest.fixture
    def packed(self, tmp_path, capsys):
        path = tmp_path / "nlanr.sctr"
        assert (
            main(
                [
                    "trace",
                    "pack",
                    "--workload",
                    "nlanr",
                    "--scale",
                    "0.1",
                    "--out",
                    str(path),
                ]
            )
            == 0
        )
        assert "packed" in capsys.readouterr().out
        return path

    def test_pack_then_info(self, packed, capsys):
        assert main(["trace", "info", str(packed)]) == 0
        out = capsys.readouterr().out
        assert "nlanr" in out
        assert "records" in out

    def test_verify_ok(self, packed, capsys):
        assert (
            main(
                [
                    "trace",
                    "verify",
                    str(packed),
                    "--workload",
                    "nlanr",
                    "--scale",
                    "0.1",
                    "--proxies",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bit-exact" in out

    def test_verify_detects_wrong_workload(self, packed, capsys):
        assert (
            main(
                [
                    "trace",
                    "verify",
                    str(packed),
                    "--workload",
                    "nlanr",
                    "--scale",
                    "0.1",
                    "--seed",
                    "9999",
                ]
            )
            == 1
        )
        assert "MISMATCH" in capsys.readouterr().out

    def test_requests_override(self, tmp_path, capsys):
        path = tmp_path / "short.sctr"
        assert (
            main(
                [
                    "trace",
                    "pack",
                    "--workload",
                    "nlanr",
                    "--requests",
                    "300",
                    "--out",
                    str(path),
                ]
            )
            == 0
        )
        assert "300" in capsys.readouterr().out

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestDisseminationCommand:
    def test_small_cluster_both_policies(self, tmp_path, capsys):
        import json

        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"existing_key": 1}))
        assert (
            main(
                [
                    "dissemination",
                    "--workload",
                    "nlanr",
                    "--scale",
                    "0.1",
                    "--requests",
                    "1500",
                    "--proxies",
                    "4",
                    "--cache-mb",
                    "0.5",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Section V-F measured" in out
        assert "unicast" in out
        assert "hierarchy" in out
        doc = json.loads(path.read_text())
        assert doc["existing_key"] == 1
        runs = doc["dissemination"]["runs"]
        assert [r["dissemination"] for r in runs] == [
            "unicast",
            "hierarchy",
        ]
        assert all(r["udp_sent"] == r["udp_received"] for r in runs)

    def test_single_policy_selection(self, capsys):
        assert (
            main(
                [
                    "dissemination",
                    "--workload",
                    "nlanr",
                    "--scale",
                    "0.1",
                    "--requests",
                    "800",
                    "--proxies",
                    "4",
                    "--cache-mb",
                    "0.5",
                    "--policies",
                    "hierarchy",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hierarchy" in out
        assert not any(
            line.startswith("unicast")
            for line in out.splitlines()
        )
