"""Unit tests for the interleaving sanitizer core and guards."""

from __future__ import annotations

import asyncio
from typing import Any, List

from repro.placement.live import Placement
from repro.sanitizer.core import Sanitizer, Violation
from repro.sanitizer.guards import GuardedPlacement, GuardedSummaryNode
from repro.summaries.backend import SummaryNode


def _run(coro: Any) -> Any:
    return asyncio.run(coro)


class TestViolationDetection:
    def test_read_foreign_write_write_is_a_violation(self) -> None:
        async def scenario(san: Sanitizer) -> None:
            gate_a = asyncio.Event()
            gate_b = asyncio.Event()

            async def task_a() -> None:
                san.record_read("k", "check")
                gate_b.set()  # let B mutate inside our window
                await gate_a.wait()
                san.record_write("k", "act")

            async def task_b() -> None:
                await gate_b.wait()
                san.record_write("k", "mutate")
                gate_a.set()

            await asyncio.gather(
                asyncio.create_task(task_a(), name="A"),
                asyncio.create_task(task_b(), name="B"),
            )

        san = Sanitizer()
        heard: List[Violation] = []
        san.add_listener(heard.append)
        _run(scenario(san))
        assert len(san.violations) == 1
        violation = san.violations[0]
        assert violation.key == "k"
        assert violation.task == "A"
        assert violation.interleaver == "B"
        assert violation.read_op == "check"
        assert violation.interleaved_op == "mutate"
        assert violation.write_op == "act"
        assert (
            violation.read_seq
            < violation.interleaved_seq
            < violation.write_seq
        )
        assert heard == [violation]
        assert "acting on the stale read" in violation.render()

    def test_fresh_read_after_foreign_write_revalidates(self) -> None:
        async def scenario(san: Sanitizer) -> None:
            gate_a = asyncio.Event()
            gate_b = asyncio.Event()

            async def task_a() -> None:
                san.record_read("k", "check")
                gate_b.set()
                await gate_a.wait()
                san.record_read("k", "recheck")  # re-validate
                san.record_write("k", "act")

            async def task_b() -> None:
                await gate_b.wait()
                san.record_write("k", "mutate")
                gate_a.set()

            await asyncio.gather(
                asyncio.create_task(task_a(), name="A"),
                asyncio.create_task(task_b(), name="B"),
            )

        san = Sanitizer()
        _run(scenario(san))
        assert san.violations == []

    def test_same_task_write_is_not_a_violation(self) -> None:
        async def scenario(san: Sanitizer) -> None:
            san.record_read("k", "check")
            san.record_write("k", "first")
            san.record_read("k", "check")
            san.record_write("k", "second")

        san = Sanitizer()
        _run(scenario(san))
        assert san.violations == []

    def test_begin_request_clears_only_current_task_markers(self) -> None:
        async def scenario(san: Sanitizer) -> None:
            gate_a = asyncio.Event()
            gate_b = asyncio.Event()

            async def task_a() -> None:
                san.record_read("k", "old-request-check")
                gate_b.set()
                await gate_a.wait()
                # New request on the same keep-alive task: the stale
                # marker from the previous request must not pair with
                # the write below.
                san.begin_request("trace-2")
                san.record_write("k", "act")

            async def task_b() -> None:
                await gate_b.wait()
                san.record_write("k", "mutate")
                gate_a.set()

            await asyncio.gather(
                asyncio.create_task(task_a(), name="A"),
                asyncio.create_task(task_b(), name="B"),
            )

        san = Sanitizer()
        _run(scenario(san))
        assert san.violations == []

    def test_trace_ids_attributed_to_both_sides(self) -> None:
        async def scenario(san: Sanitizer) -> None:
            gate_a = asyncio.Event()
            gate_b = asyncio.Event()

            async def task_a() -> None:
                san.begin_request("aaaa1111")
                san.record_read("k", "check")
                gate_b.set()
                await gate_a.wait()
                san.record_write("k", "act")

            async def task_b() -> None:
                san.begin_request("bbbb2222")
                await gate_b.wait()
                san.record_write("k", "mutate")
                gate_a.set()

            await asyncio.gather(
                asyncio.create_task(task_a(), name="A"),
                asyncio.create_task(task_b(), name="B"),
            )

        san = Sanitizer()
        _run(scenario(san))
        (violation,) = san.violations
        assert violation.trace == "aaaa1111"
        assert violation.interleaved_trace == "bbbb2222"

    def test_drain_returns_and_clears(self) -> None:
        san = Sanitizer()

        async def scenario() -> None:
            gate_a = asyncio.Event()
            gate_b = asyncio.Event()

            async def task_a() -> None:
                san.record_read("k", "check")
                gate_b.set()
                await gate_a.wait()
                san.record_write("k", "act")

            async def task_b() -> None:
                await gate_b.wait()
                san.record_write("k", "mutate")
                gate_a.set()

            await asyncio.gather(
                asyncio.create_task(task_a(), name="A"),
                asyncio.create_task(task_b(), name="B"),
            )

        _run(scenario())
        drained = san.drain()
        assert len(drained) == 1
        assert san.drain() == []


class TestPerturbation:
    def test_same_seed_same_yield_schedule(self) -> None:
        async def count_yields(san: Sanitizer, n: int) -> int:
            for _ in range(n):
                await san.perturb()
            return san.yields

        a = _run(count_yields(Sanitizer(seed=7, rate=0.5), 200))
        b = _run(count_yields(Sanitizer(seed=7, rate=0.5), 200))
        assert a == b
        assert 0 < a < 200

    def test_rate_zero_never_yields(self) -> None:
        async def scenario() -> int:
            san = Sanitizer(seed=7, rate=0.0)
            for _ in range(50):
                await san.perturb()
            return san.yields

        assert _run(scenario()) == 0


class TestGuards:
    def test_guarded_placement_records_reads_and_writes(self) -> None:
        async def scenario() -> Sanitizer:
            san = Sanitizer()
            placement = GuardedPlacement(
                Placement("p0", ("p1",)), san, "p0"
            )
            digest = b"\x12" * 16
            gate_a = asyncio.Event()
            gate_b = asyncio.Event()

            async def route() -> None:
                placement.owner(digest)  # recorded read
                gate_b.set()
                await gate_a.wait()
                placement.remove_member("p1")  # acts on the stale route

            async def churn() -> None:
                await gate_b.wait()
                placement.add_member("p2")
                gate_a.set()

            await asyncio.gather(
                asyncio.create_task(route(), name="route"),
                asyncio.create_task(churn(), name="churn"),
            )
            return san

        san = _run(scenario())
        (violation,) = san.violations
        assert violation.key == "p0.placement"
        assert violation.read_op == "owner"
        assert violation.interleaved_op == "add_member"
        assert violation.write_op == "remove_member"

    def test_guarded_placement_passthrough_fields(self) -> None:
        san = Sanitizer()
        inner = Placement("p0", ("p1",))
        guarded = GuardedPlacement(inner, san, "p0")
        assert guarded.self_name == "p0"
        assert guarded.members == inner.members
        assert guarded.version == inner.version

    def test_guarded_summary_node_attribute_passthrough(self) -> None:
        from repro.summaries.backend import SummaryConfig

        san = Sanitizer()
        node = SummaryNode(SummaryConfig(), 1 << 16)
        guarded = GuardedSummaryNode(node, san, "p0")
        assert guarded.local is node.local
        guarded.on_insert("http://a.com/1")
        assert [v.key for v in san.violations] == []
        assert san._last_write["p0.summary"].op == "on_insert"
