"""Regression tests for the SC005 exception migration.

Library code raises only the :mod:`repro.errors` hierarchy (enforced by
lint rule SC005).  Where a builtin type is the natural contract, the
domain class also subclasses it, so each case here asserts *both*
vocabularies: callers written against ``ReproError`` and callers written
against the builtin keep working.
"""

from __future__ import annotations

import pytest

from repro.cache.policies import LRUPolicy
from repro.core.bitarray import BitArray, CounterArray
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import MD5HashFamily
from repro.errors import (
    BitIndexError,
    CacheStateError,
    ConfigurationError,
    KeyTypeError,
    ReproError,
    SummaryStateError,
)
from repro.obs.trace import TraceRing
from repro.summaries.exact import ExactDirectorySummary
from repro.summaries.servername import ServerNameSummary


class TestDualInheritance:
    def test_bit_index_error_is_index_error(self):
        assert issubclass(BitIndexError, IndexError)
        assert issubclass(BitIndexError, ReproError)

    def test_key_type_error_is_type_error(self):
        assert issubclass(KeyTypeError, TypeError)
        assert issubclass(KeyTypeError, ReproError)

    def test_summary_state_error_is_value_error(self):
        assert issubclass(SummaryStateError, ValueError)
        assert issubclass(SummaryStateError, ReproError)

    def test_cache_state_error_is_key_error(self):
        assert issubclass(CacheStateError, KeyError)
        assert issubclass(CacheStateError, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ConfigurationError, ReproError)


class TestRaiseSites:
    def test_bitarray_out_of_range_get(self):
        bits = BitArray(8)
        with pytest.raises(BitIndexError):
            bits.get(8)
        with pytest.raises(IndexError):  # old-vocabulary callers
            bits.get(8)

    def test_bitarray_set_many_out_of_range(self):
        bits = BitArray(8)
        with pytest.raises(BitIndexError):
            bits.set_many([0, 99])

    def test_counter_array_out_of_range(self):
        counters = CounterArray(4)
        with pytest.raises(BitIndexError):
            counters.get(4)

    def test_counter_underflow(self):
        counters = CounterArray(4)
        with pytest.raises(SummaryStateError):
            counters.decrement(0)
        with pytest.raises(ValueError):  # old-vocabulary callers
            counters.decrement(0)

    def test_counting_bloom_remove_never_added(self):
        cbf = CountingBloomFilter(64, hash_family=MD5HashFamily())
        cbf.add("present")
        with pytest.raises(SummaryStateError):
            cbf.remove("absent")

    def test_exact_summary_remove_unknown_url(self):
        summary = ExactDirectorySummary()
        with pytest.raises(SummaryStateError):
            summary.remove("http://never.added/doc")

    def test_servername_summary_remove_unknown_server(self):
        summary = ServerNameSummary()
        with pytest.raises(SummaryStateError):
            summary.remove("http://never.added/doc")

    def test_policy_victim_on_empty_cache(self):
        policy = LRUPolicy()
        with pytest.raises(CacheStateError):
            policy.victim()
        with pytest.raises(KeyError):  # old-vocabulary callers
            policy.victim()

    def test_hashing_rejects_non_string_key(self):
        family = MD5HashFamily()
        with pytest.raises(KeyTypeError):
            family.hashes(1234, 64)  # type: ignore[arg-type]
        with pytest.raises(TypeError):  # old-vocabulary callers
            family.hashes(1234, 64)  # type: ignore[arg-type]

    def test_trace_ring_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            TraceRing(capacity=0)
        with pytest.raises(ValueError):  # old-vocabulary callers
            TraceRing(capacity=0)

    def test_all_cases_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            BitArray(8).get(99)
        with pytest.raises(ReproError):
            CounterArray(4).decrement(0)
        with pytest.raises(ReproError):
            LRUPolicy().victim()
