"""Tests for the proxy cache substrate."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import DEFAULT_MAX_OBJECT_SIZE, WebCache
from repro.errors import ConfigurationError


class TestBasics:
    def test_put_and_get(self):
        cache = WebCache(1000)
        cache.put("u1", 100)
        entry = cache.get("u1")
        assert entry is not None and entry.size == 100
        assert "u1" in cache
        assert cache.used_bytes == 100

    def test_miss_returns_none(self):
        cache = WebCache(1000)
        assert cache.get("absent") is None

    def test_peek_does_not_touch_recency(self):
        cache = WebCache(200)
        cache.put("a", 100)
        cache.put("b", 100)
        cache.peek("a")  # would rescue "a" if it updated recency
        cache.put("c", 100)
        assert "a" not in cache

    def test_capacity_enforced_by_lru_eviction(self):
        cache = WebCache(300)
        for name in ("a", "b", "c"):
            cache.put(name, 100)
        cache.get("a")  # refresh a
        evicted = cache.put("d", 100)
        assert evicted == ["b"]
        assert set(cache.urls()) == {"a", "c", "d"}
        assert cache.used_bytes == 300

    def test_paper_250kb_admission_rule(self):
        cache = WebCache(10 * 2**20)
        evicted = cache.put("huge", DEFAULT_MAX_OBJECT_SIZE + 1)
        assert evicted == []
        assert "huge" not in cache
        assert cache.stats.rejected_too_large == 1

    def test_object_larger_than_cache_rejected(self):
        cache = WebCache(100, max_object_size=None)
        cache.put("big", 200)
        assert "big" not in cache

    def test_disable_size_limit(self):
        cache = WebCache(10 * 2**20, max_object_size=None)
        cache.put("huge", 2 * 2**20)
        assert "huge" in cache

    def test_remove(self):
        cache = WebCache(1000)
        cache.put("a", 10)
        assert cache.remove("a") is True
        assert cache.remove("a") is False
        assert cache.used_bytes == 0

    def test_touch(self):
        cache = WebCache(200)
        cache.put("a", 100)
        cache.put("b", 100)
        assert cache.touch("a") is True
        cache.put("c", 100)
        assert "a" in cache and "b" not in cache
        assert cache.touch("nope") is False

    def test_clear(self):
        cache = WebCache(1000)
        cache.put("a", 10)
        cache.put("b", 10)
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WebCache(0)
        with pytest.raises(ConfigurationError):
            WebCache(100, max_object_size=0)
        with pytest.raises(ConfigurationError):
            WebCache(100).put("u", -1)


class TestVersioning:
    def test_version_mismatch_is_stale_miss(self):
        cache = WebCache(1000)
        cache.put("u", 100, version=1)
        assert cache.get("u", version=2) is None
        assert cache.stats.stale_hits == 1
        # The stale copy is dropped so the fresh one can be admitted.
        assert "u" not in cache

    def test_matching_version_is_hit(self):
        cache = WebCache(1000)
        cache.put("u", 100, version=3)
        assert cache.get("u", version=3) is not None

    def test_probe_classifies_without_side_effects(self):
        cache = WebCache(1000)
        cache.put("u", 100, version=1)
        assert cache.probe("u", version=1) == "hit"
        assert cache.probe("u", version=2) == "stale"
        assert cache.probe("v") == "miss"
        # probe never removes or counts.
        assert "u" in cache
        assert cache.stats.requests == 0

    def test_readmission_updates_size_and_version(self):
        cache = WebCache(1000)
        cache.put("u", 100, version=1)
        cache.put("u", 300, version=2)
        assert cache.used_bytes == 300
        assert cache.get("u", version=2).version == 2
        assert len(cache) == 1


class TestCallbacks:
    def test_insert_and_evict_callbacks_pair_up(self):
        inserted, evicted = [], []
        cache = WebCache(
            300,
            on_insert=inserted.append,
            on_evict=evicted.append,
        )
        for i in range(5):
            cache.put(f"u{i}", 100)
        assert inserted == [f"u{i}" for i in range(5)]
        assert evicted == ["u0", "u1"]
        # Invariant: inserted minus evicted == current contents.
        assert set(inserted) - set(evicted) == set(cache.urls())

    def test_remove_fires_evict_callback(self):
        evicted = []
        cache = WebCache(300, on_evict=evicted.append)
        cache.put("u", 100)
        cache.remove("u")
        assert evicted == ["u"]

    def test_rejected_put_fires_no_callbacks(self):
        inserted = []
        cache = WebCache(300, on_insert=inserted.append)
        cache.put("huge", DEFAULT_MAX_OBJECT_SIZE + 1)
        assert inserted == []


class TestPolicies:
    def test_size_policy_evicts_largest_first(self):
        cache = WebCache(600, policy="size")
        cache.put("small", 100)
        cache.put("large", 400)
        cache.put("mid", 200)  # overflow: 700 > 600
        assert "large" not in cache
        assert {"small", "mid"} <= set(cache.urls())

    def test_newcomer_protected_from_self_eviction(self):
        # With the SIZE policy a big newcomer would pick itself as
        # victim; the cache must evict something else instead.
        cache = WebCache(500, policy="size", max_object_size=None)
        cache.put("a", 200)
        cache.put("b", 150)
        cache.put("newcomer", 400)
        assert "newcomer" in cache

    def test_fifo_policy(self):
        cache = WebCache(300, policy="fifo")
        for name in ("a", "b", "c"):
            cache.put(name, 100)
        cache.get("a")
        cache.put("d", 100)
        assert "a" not in cache  # access did not save it

    def test_policy_instance_accepted(self):
        from repro.cache.policies import LRUPolicy

        cache = WebCache(100, policy=LRUPolicy())
        cache.put("u", 50)
        assert "u" in cache


class TestStats:
    def test_hit_and_byte_ratios(self):
        cache = WebCache(1000)
        cache.put("u", 100)
        cache.get("u", size=100)
        cache.get("missing", size=50)
        stats = cache.stats
        assert stats.requests == 2
        assert stats.hits == 1
        assert stats.hit_ratio == pytest.approx(0.5)
        assert stats.bytes_hit == 100
        assert stats.byte_hit_ratio == pytest.approx(100 / 150)

    def test_merge(self):
        cache = WebCache(1000)
        cache.put("u", 100)
        cache.get("u")
        merged = cache.stats.merge(cache.stats)
        assert merged.requests == 2
        assert merged.hits == 2


@given(
    st.lists(
        st.tuples(
            st.integers(0, 25),
            st.integers(1, 400),
        ),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_invariants_under_random_workload(ops):
    """Capacity is never exceeded, byte accounting matches contents, and
    callback streams reconstruct the cache exactly."""
    inserted, evicted = [], []
    cache = WebCache(
        1000,
        max_object_size=500,
        on_insert=inserted.append,
        on_evict=evicted.append,
    )
    for doc, size in ops:
        cache.put(f"u{doc}", size)
        assert cache.used_bytes <= 1000
    live = {}
    for url in inserted:
        live[url] = live.get(url, 0) + 1
    for url in evicted:
        live[url] -= 1
    reconstructed = {u for u, n in live.items() if n > 0}
    assert reconstructed == set(cache.urls())
    assert cache.used_bytes == sum(
        cache.peek(u).size for u in cache.urls()
    )


class TestStoredDigests:
    def test_off_by_default(self):
        cache = WebCache(10_000)
        cache.put("http://a.com/1", 100)
        assert cache.peek("http://a.com/1").digest is None

    def test_stored_at_insert_when_enabled(self):
        cache = WebCache(10_000, store_digests=True)
        cache.put("http://a.com/1", 100)
        entry = cache.peek("http://a.com/1")
        assert entry.digest == hashlib.md5(b"http://a.com/1").digest()

    def test_digests_backfills_missing(self):
        cache = WebCache(10_000)
        cache.put("http://a.com/1", 100)
        cache.put("http://b.com/2", 200)
        table = cache.digests()
        assert set(table) == {"http://a.com/1", "http://b.com/2"}
        assert table["http://a.com/1"] == hashlib.md5(
            b"http://a.com/1"
        ).digest()
        # Backfill persists on the entry.
        assert cache.peek("http://a.com/1").digest is not None

    def test_digests_covers_whole_directory_when_enabled(self):
        cache = WebCache(10_000, store_digests=True)
        for i in range(5):
            cache.put(f"http://a.com/{i}", 100)
        table = cache.digests()
        assert len(table) == len(cache)
        for url, digest in table.items():
            assert digest == hashlib.md5(url.encode()).digest()
