"""Regression tests for CacheStats, chiefly the merge of ``_by_policy``."""

from __future__ import annotations

from repro.cache.stats import CacheStats
from repro.cache.webcache import WebCache


class TestMergeByPolicy:
    def test_merge_sums_policy_eviction_counts(self):
        a = CacheStats(evictions=3)
        a.record_policy_eviction("lru", 2)
        a.record_policy_eviction("gdsf", 1)
        b = CacheStats(evictions=2)
        b.record_policy_eviction("lru", 1)
        b.record_policy_eviction("fifo", 1)

        merged = a.merge(b)
        # Regression: merge() used to drop _by_policy entirely.
        assert merged.by_policy() == {"lru": 3, "gdsf": 1, "fifo": 1}
        assert merged.evictions == 5
        # Inputs are untouched and the result holds its own dict.
        assert a.by_policy() == {"lru": 2, "gdsf": 1}
        assert b.by_policy() == {"lru": 1, "fifo": 1}
        merged.record_policy_eviction("lru")
        assert a.by_policy()["lru"] == 2

    def test_merge_with_empty_policy_map(self):
        a = CacheStats()
        a.record_policy_eviction("lru")
        assert a.merge(CacheStats()).by_policy() == {"lru": 1}
        assert CacheStats().merge(a).by_policy() == {"lru": 1}

    def test_by_policy_returns_copy(self):
        stats = CacheStats()
        stats.record_policy_eviction("lru")
        view = stats.by_policy()
        view["lru"] = 99
        assert stats.by_policy() == {"lru": 1}


class TestWebCacheAttribution:
    def test_evictions_attributed_to_policy_name(self):
        cache = WebCache(1000, max_object_size=None, policy="lru")
        for i in range(5):
            cache.put(f"http://x/{i}", 400)
        assert cache.stats.evictions > 0
        assert cache.stats.by_policy() == {"lru": cache.stats.evictions}

    def test_policy_object_name_derived_from_class(self):
        from repro.cache.policies import FIFOPolicy

        cache = WebCache(1000, max_object_size=None, policy=FIFOPolicy())
        for i in range(5):
            cache.put(f"http://x/{i}", 400)
        assert set(cache.stats.by_policy()) == {"fifo"}
