"""Property-based tests of replacement policies against reference models."""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import FIFOPolicy, LFUPolicy, LRUPolicy

KEYS = [f"k{i}" for i in range(12)]

# An operation stream: (key, is_access). Inserts happen implicitly the
# first time a key appears; accesses of untracked keys are skipped.
ops_strategy = st.lists(
    st.tuples(st.sampled_from(KEYS), st.booleans()), max_size=150
)


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_lru_matches_ordered_dict_model(ops):
    policy = LRUPolicy()
    model: "OrderedDict[str, None]" = OrderedDict()
    for key, is_access in ops:
        if key in model:
            if is_access:
                policy.on_access(key)
                model.move_to_end(key)
        else:
            policy.on_insert(key, 1)
            model[key] = None
    while model:
        expected = next(iter(model))
        assert policy.victim() == expected
        policy.on_remove(expected)
        del model[expected]


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_fifo_ignores_accesses(ops):
    policy = FIFOPolicy()
    insertion_order = []
    for key, is_access in ops:
        if key in insertion_order:
            if is_access:
                policy.on_access(key)
        else:
            policy.on_insert(key, 1)
            insertion_order.append(key)
    for expected in insertion_order:
        assert policy.victim() == expected
        policy.on_remove(expected)


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_lfu_victim_has_minimal_frequency(ops):
    policy = LFUPolicy()
    freq = {}
    for key, is_access in ops:
        if key in freq:
            if is_access:
                policy.on_access(key)
                freq[key] += 1
        else:
            policy.on_insert(key, 1)
            freq[key] = 1
    while freq:
        victim = policy.victim()
        assert freq[victim] == min(freq.values())
        policy.on_remove(victim)
        del freq[victim]


@given(
    st.lists(
        st.tuples(
            st.sampled_from(KEYS),
            st.integers(1, 500),
            st.booleans(),
        ),
        max_size=120,
    )
)
@settings(max_examples=60, deadline=None)
def test_every_policy_tracks_exact_key_set(ops):
    """Whatever the op stream, len(policy) equals the live key count and
    draining victims empties each policy exactly once per key."""
    from repro.cache.policies import make_policy

    for name in ("lru", "fifo", "lfu", "size", "gdsf"):
        policy = make_policy(name)
        live = set()
        for key, size, is_access in ops:
            if key in live:
                if is_access:
                    policy.on_access(key)
            else:
                policy.on_insert(key, size)
                live.add(key)
        assert len(policy) == len(live)
        drained = set()
        while live:
            victim = policy.victim()
            assert victim in live
            assert victim not in drained
            policy.on_remove(victim)
            live.discard(victim)
            drained.add(victim)
