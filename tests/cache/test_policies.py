"""Tests for the replacement policies."""

from __future__ import annotations

import pytest

from repro.cache.policies import (
    FIFOPolicy,
    GDSFPolicy,
    LFUPolicy,
    LRUPolicy,
    SizePolicy,
    make_policy,
)
from repro.errors import ConfigurationError


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy()
        for key in "abc":
            policy.on_insert(key, 1)
        policy.on_access("a")
        assert policy.victim() == "b"

    def test_remove(self):
        policy = LRUPolicy()
        policy.on_insert("a", 1)
        policy.on_insert("b", 1)
        policy.on_remove("a")
        assert policy.victim() == "b"
        assert len(policy) == 1


class TestFIFO:
    def test_access_does_not_refresh(self):
        policy = FIFOPolicy()
        for key in "abc":
            policy.on_insert(key, 1)
        policy.on_access("a")
        assert policy.victim() == "a"


class TestLFU:
    def test_evicts_least_frequent(self):
        policy = LFUPolicy()
        for key in "abc":
            policy.on_insert(key, 1)
        policy.on_access("a")
        policy.on_access("a")
        policy.on_access("b")
        assert policy.victim() == "c"

    def test_tie_broken_by_recency(self):
        policy = LFUPolicy()
        policy.on_insert("a", 1)
        policy.on_insert("b", 1)
        # Both have frequency 1; the earlier insert is the victim.
        assert policy.victim() == "a"

    def test_stale_heap_entries_skipped_after_remove(self):
        policy = LFUPolicy()
        for key in "abc":
            policy.on_insert(key, 1)
        policy.on_remove("a")
        assert policy.victim() == "b"

    def test_victim_on_empty_raises(self):
        with pytest.raises(KeyError):
            LFUPolicy().victim()


class TestSize:
    def test_evicts_largest(self):
        policy = SizePolicy()
        policy.on_insert("small", 10)
        policy.on_insert("big", 10_000)
        policy.on_insert("mid", 500)
        assert policy.victim() == "big"

    def test_remove_then_victim(self):
        policy = SizePolicy()
        policy.on_insert("big", 100)
        policy.on_insert("small", 1)
        policy.on_remove("big")
        assert policy.victim() == "small"

    def test_victim_on_empty_raises(self):
        with pytest.raises(KeyError):
            SizePolicy().victim()


class TestGDSF:
    def test_prefers_small_popular_documents(self):
        policy = GDSFPolicy()
        policy.on_insert("big-unpopular", 100_000)
        policy.on_insert("small-popular", 100)
        for _ in range(5):
            policy.on_access("small-popular")
        assert policy.victim() == "big-unpopular"

    def test_inflation_eventually_evicts_former_favourites(self):
        # A once-popular document must not be immortal: the inflation
        # term L rises with every eviction until it passes the old
        # favourite's fixed priority.
        policy = GDSFPolicy()
        policy.on_insert("old-star", 1000)
        for _ in range(3):
            policy.on_access("old-star")
        evicted = []
        for i in range(60):
            policy.on_insert(f"filler{i}", 1000)
            victim = policy.victim()
            policy.on_remove(victim)
            evicted.append(victim)
        assert "old-star" in evicted

    def test_victim_is_always_tracked(self):
        policy = GDSFPolicy()
        for i in range(10):
            policy.on_insert(f"k{i}", (i + 1) * 10)
        for _ in range(10):
            victim = policy.victim()
            assert victim.startswith("k")
            policy.on_remove(victim)

    def test_victim_on_empty_raises(self):
        with pytest.raises(KeyError):
            GDSFPolicy().victim()


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("lru", LRUPolicy),
            ("fifo", FIFOPolicy),
            ("lfu", LFUPolicy),
            ("size", SizePolicy),
            ("gdsf", GDSFPolicy),
            ("LRU", LRUPolicy),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_policy("belady")
