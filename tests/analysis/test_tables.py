"""Tests for the table renderer."""

from __future__ import annotations

from repro.analysis.tables import format_table


def test_alignment_and_title():
    out = format_table(
        ("name", "value"),
        [("a", 1), ("longer-name", 22)],
        title="My Table",
    )
    lines = out.splitlines()
    assert lines[0] == "My Table"
    assert lines[1] == "========"
    assert "name" in lines[2] and "value" in lines[2]
    # Columns align: 'value' column starts at the same offset everywhere.
    offset = lines[2].index("value")
    assert lines[4][offset:].startswith("1")
    assert lines[5][offset:].startswith("22")


def test_no_title():
    out = format_table(("h",), [("x",)])
    assert out.splitlines()[0] == "h"


def test_ragged_rows_tolerated():
    out = format_table(("a", "b"), [("1", "2", "3")])
    assert "3" in out


def test_empty_rows():
    out = format_table(("a", "b"), [])
    assert "a" in out and "b" in out
