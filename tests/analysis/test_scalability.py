"""Tests for the Section V-F extrapolation against the paper's numbers."""

from __future__ import annotations

import pytest

from repro.analysis.scalability import extrapolate
from repro.errors import ConfigurationError


class TestPaperNumbers:
    """The paper's 100-proxy back-of-the-envelope, quantity by quantity."""

    @pytest.fixture(scope="class")
    def estimate(self):
        return extrapolate(
            num_proxies=100,
            cache_bytes=8 * 2**30,
            page_size=8 * 1024,
            load_factor=16,
            num_hashes=10,
            update_threshold=0.01,
        )

    def test_one_million_pages(self, estimate):
        # "Each proxy stores on average about 1M Web pages."
        assert estimate.pages_per_proxy == 2**20

    def test_two_megabyte_filter(self, estimate):
        # "The Bloom filter memory needed to represent 1M pages is 2 MB
        # at load factor 16."
        assert estimate.filter_bytes_per_proxy == 2 * 2**20

    def test_about_200mb_of_summaries(self, estimate):
        # "Each proxy needs about 200 MB to represent all the summaries"
        assert estimate.summary_memory_bytes == 99 * 2 * 2**20
        assert 190 * 2**20 < estimate.summary_memory_bytes < 210 * 2**20

    def test_8mb_of_counters(self, estimate):
        # "plus another 8 MB to represent its own counters" (4-bit
        # counters over 16M bits).
        assert estimate.counter_memory_bytes == 8 * 2**20

    def test_10k_requests_between_updates(self, estimate):
        # "The threshold of 1% corresponds to 10 K requests between
        # updates"
        assert estimate.requests_between_updates == pytest.approx(
            10_485.76
        )

    def test_update_messages_below_001(self, estimate):
        # "the number of update messages per request is less than 0.01."
        assert estimate.update_messages_per_request < 0.01

    def test_false_hit_ratio_about_4_7_percent(self, estimate):
        # "The false hit ratios are around 4.7% for the load factor of
        # 16 with 10 hash functions."
        assert estimate.false_hit_queries_per_request == pytest.approx(
            0.047, abs=0.003
        )

    def test_total_overhead_below_006(self, estimate):
        # "the overhead introduced by the protocol is under 0.06
        # messages per request for 100 proxies."
        assert estimate.protocol_messages_per_request < 0.06

    def test_summary_renders(self, estimate):
        text = estimate.summary()
        assert "100 proxies" in text
        assert "MB" in text


class TestScalingBehaviour:
    def test_overhead_grows_linearly_with_proxies(self):
        small = extrapolate(num_proxies=50)
        large = extrapolate(num_proxies=100)
        ratio = (
            large.protocol_messages_per_request
            / small.protocol_messages_per_request
        )
        assert ratio == pytest.approx(99 / 49, rel=0.02)

    def test_higher_load_factor_cuts_false_hits(self):
        lf8 = extrapolate(load_factor=8, num_hashes=4)
        lf32 = extrapolate(load_factor=32, num_hashes=4)
        assert (
            lf32.false_hit_queries_per_request
            < lf8.false_hit_queries_per_request / 5
        )
        assert lf32.summary_memory_bytes == 4 * lf8.summary_memory_bytes

    def test_larger_threshold_fewer_updates(self):
        t1 = extrapolate(update_threshold=0.01)
        t10 = extrapolate(update_threshold=0.10)
        assert t10.update_messages_per_request == pytest.approx(
            t1.update_messages_per_request / 10
        )

    def test_miss_ratio_scales_both_overheads(self):
        full = extrapolate(miss_ratio=1.0)
        half = extrapolate(miss_ratio=0.5)
        assert half.update_messages_per_request == pytest.approx(
            full.update_messages_per_request / 2
        )
        assert half.false_hit_queries_per_request == pytest.approx(
            full.false_hit_queries_per_request / 2
        )


class TestValidation:
    def test_needs_two_proxies(self):
        with pytest.raises(ConfigurationError):
            extrapolate(num_proxies=1)

    def test_threshold_range(self):
        with pytest.raises(ConfigurationError):
            extrapolate(update_threshold=0)

    def test_miss_ratio_range(self):
        with pytest.raises(ConfigurationError):
            extrapolate(miss_ratio=1.5)
