"""Unit tests for the span model and trace-context propagation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.spans import (
    NULL_SPAN,
    NULL_SPAN_RING,
    NullSpanRing,
    SpanRing,
    TraceContext,
    format_id,
)


class TestFormatId:
    def test_eight_hex_digits(self):
        assert format_id(0x1F) == "0000001f"
        assert format_id(0xDEADBEEF) == "deadbeef"

    def test_masks_to_32_bits(self):
        assert format_id(0x1_0000_0001) == "00000001"


class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext(trace_id=0xDEADBEEF, span_id=0x00000042)
        assert ctx.header_value() == "deadbeef-00000042"
        assert TraceContext.parse(ctx.header_value()) == ctx

    def test_parse_tolerates_whitespace(self):
        assert TraceContext.parse("  deadbeef-00000042 ") == TraceContext(
            trace_id=0xDEADBEEF, span_id=0x42
        )

    @pytest.mark.parametrize(
        "value",
        [
            "",
            "deadbeef",  # no separator
            "dead-beef",  # wrong field widths
            "deadbeef-0000004",  # 7-digit span
            "deadbeef-000000422",  # 9-digit span
            "zzzzzzzz-00000042",  # non-hex
            "00000000-00000042",  # zero trace id means no context
        ],
    )
    def test_parse_rejects_malformed(self, value):
        assert TraceContext.parse(value) is None


class TestSpanRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SpanRing(capacity=0)

    def test_fresh_trace_ids_are_non_zero(self):
        ring = SpanRing(capacity=8)
        ids = {ring.new_trace_id() for _ in range(64)}
        assert 0 not in ids
        assert len(ids) == 64

    def test_start_span_allocates_and_retains(self):
        ring = SpanRing(capacity=8)
        span = ring.start_span("op", url="u")
        assert span.trace_id != 0
        assert span.span_id != 0
        assert span.parent_id == 0
        assert span.duration is None
        assert span.attributes == {"url": "u"}
        assert ring.spans() == [span]

    def test_continue_trace_and_parenting(self):
        ring = SpanRing(capacity=8)
        parent = ring.start_span("root")
        child = ring.start_span(
            "child",
            trace_id=parent.trace_id,
            parent_id=parent.span_id,
        )
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert ring.trace(parent.trace_id) == [parent, child]
        assert ring.spans(name="child") == [child]

    def test_end_fixes_duration_once(self):
        ring = SpanRing(capacity=8)
        span = ring.start_span("op")
        span.end(status="error")
        first = span.duration
        assert first is not None
        assert span.status == "error"
        span.end()  # idempotent: status and duration unchanged
        assert span.duration == first
        assert span.status == "error"

    def test_events_are_timestamped_in_order(self):
        ring = SpanRing(capacity=8)
        span = ring.start_span("op")
        span.add_event("first", detail=1).add_event("second")
        kinds = [event["kind"] for event in span.events]
        assert kinds == ["first", "second"]
        assert span.events[0]["detail"] == 1
        assert span.events[0]["timestamp"] <= span.events[1]["timestamp"]

    def test_as_dict_uses_wire_id_format(self):
        ring = SpanRing(capacity=8)
        root = ring.start_span("root").end()
        child = ring.start_span(
            "child", trace_id=root.trace_id, parent_id=root.span_id
        )
        root_d, child_d = ring.as_dicts()
        assert root_d["trace_id"] == format_id(root.trace_id)
        assert root_d["parent_id"] is None
        assert child_d["parent_id"] == format_id(root.span_id)
        assert root_d["status"] == "ok"
        assert child_d["duration"] is None  # still live

    def test_full_ring_drops_oldest_and_reports(self):
        drops = []
        ring = SpanRing(capacity=2, on_drop=lambda: drops.append(1))
        first = ring.start_span("a")
        ring.start_span("b")
        ring.start_span("c")
        assert len(ring) == 2
        assert ring.dropped == 1
        assert len(drops) == 1
        assert first not in ring.spans()

    def test_clear_resets_spans_and_drop_tally(self):
        ring = SpanRing(capacity=1)
        ring.start_span("a")
        ring.start_span("b")
        ring.clear()
        assert len(ring) == 0
        assert ring.dropped == 0


class TestNullSpanRing:
    def test_is_disabled_and_allocates_nothing(self):
        ring = NullSpanRing()
        assert ring.enabled is False
        assert ring.new_trace_id() == 0
        span = ring.start_span("op", url="u")
        assert span is NULL_SPAN
        assert len(ring) == 0
        assert ring.as_dicts() == []

    def test_null_span_ignores_mutation(self):
        span = NULL_SPAN_RING.start_span("op")
        span.set(key="value").add_event("kind").end(status="error")
        assert span.attributes == {}
        assert span.events == []
        assert span.status == "unset"
        assert span.trace_id == 0


class TestSpanContextManager:
    """The with-protocol added for SC008: spans end on *every* exit,
    including cancellation -- the leak class the lint rule flags."""

    def test_clean_exit_ends_ok(self):
        ring = SpanRing(capacity=8)
        with ring.start_span("op") as span:
            pass
        assert span.duration is not None
        assert span.status == "ok"

    def test_exception_exit_ends_error_and_propagates(self):
        ring = SpanRing(capacity=8)
        with pytest.raises(RuntimeError):
            with ring.start_span("op") as span:
                raise RuntimeError("boom")
        assert span.duration is not None
        assert span.status == "error"

    def test_cancellation_ends_cancelled(self):
        import asyncio

        ring = SpanRing(capacity=8)

        async def handler() -> None:
            with ring.start_span("op"):
                await asyncio.sleep(60)

        async def scenario() -> None:
            task = asyncio.create_task(handler())
            await asyncio.sleep(0)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(scenario())
        (span,) = ring.spans(name="op")
        assert span.duration is not None
        assert span.status == "cancelled"

    def test_explicit_end_inside_block_wins(self):
        ring = SpanRing(capacity=8)
        with ring.start_span("op") as span:
            span.end("error")
        assert span.status == "error"  # __exit__ must not overwrite
