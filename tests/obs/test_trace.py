"""Unit tests for the trace-event ring buffer."""

from __future__ import annotations

import pytest

from repro.obs.trace import TraceRing


class TestTraceRing:
    def test_record_and_read_back(self):
        ring = TraceRing()
        tid = ring.next_trace_id()
        ring.record(tid, "icp.query.sent", peers=3)
        ring.record(tid, "icp.reply", peer="p1", hit=True)
        events = ring.trace(tid)
        assert [e.kind for e in events] == ["icp.query.sent", "icp.reply"]
        assert events[0].fields == {"peers": 3}
        assert events[0].timestamp <= events[1].timestamp

    def test_trace_ids_are_monotonic(self):
        ring = TraceRing()
        ids = [ring.next_trace_id() for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_truncation_keeps_newest_and_counts_dropped(self):
        ring = TraceRing(capacity=3)
        for i in range(7):
            ring.record(i, "e", seq=i)
        assert len(ring) == 3
        assert ring.dropped == 4
        assert [e.fields["seq"] for e in ring.events()] == [4, 5, 6]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)

    def test_filtering_by_trace_id_and_kind(self):
        ring = TraceRing()
        ring.record(1, "a")
        ring.record(2, "a")
        ring.record(1, "b")
        assert len(ring.events(trace_id=1)) == 2
        assert len(ring.events(kind="a")) == 2
        assert len(ring.events(trace_id=1, kind="b")) == 1

    def test_clear_resets_everything(self):
        ring = TraceRing(capacity=1)
        ring.record(1, "a")
        ring.record(2, "b")
        assert ring.dropped == 1
        ring.clear()
        assert len(ring) == 0
        assert ring.dropped == 0

    def test_as_dicts_flattens_fields(self):
        ring = TraceRing()
        ring.record(7, "http.served", source="HIT", bytes=128)
        (record,) = ring.as_dicts()
        assert record["trace_id"] == 7
        assert record["kind"] == "http.served"
        assert record["source"] == "HIT"
        assert record["bytes"] == 128
        assert "timestamp" in record
