"""Cluster aggregator tests: fusion, trace reassembly, attribution."""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

import pytest

from repro.core.summary import SummaryConfig
from repro.errors import ProtocolError
from repro.obs.cluster import (
    ClusterSnapshot,
    ProxySnapshot,
    render_cluster,
    render_trace,
    scrape_cluster,
)
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


def run(coro):
    return asyncio.run(coro)


def span(
    trace_id: str,
    span_id: str,
    name: str,
    start: float,
    parent_id: Optional[str] = None,
    **attributes: object,
) -> Dict[str, Any]:
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": start,
        "duration": 0.001,
        "status": "ok",
        "attributes": dict(attributes),
        "events": [],
    }


def make_snapshot() -> ClusterSnapshot:
    a = ProxySnapshot(
        name="proxy0",
        host="127.0.0.1",
        port=1,
        metrics={
            "proxy_http_requests_total": {"": 10.0},
            "proxy_icp_false_hits_total": {"": 1.0},
            "proxy_remote_hits_total": {"": 3.0},
            "proxy_remote_fetch_failures_total": {"": 0.0},
            "proxy_summary_predicted_fp_rate": {"": 0.05},
            "proxy_dirupdates_sent_total": {'representation="bloom"': 4.0},
        },
        spans=[
            span("aaaa0001", "00000001", "http.request", 1.0, url="/d"),
            span(
                "aaaa0001",
                "00000002",
                "summary.lookup",
                2.0,
                parent_id="00000001",
                outcome="remote_hit",
            ),
        ],
    )
    b = ProxySnapshot(
        name="proxy1",
        host="127.0.0.1",
        port=2,
        metrics={
            "proxy_http_requests_total": {"": 4.0},
            "proxy_summary_predicted_fp_rate": {"": 0.02},
        },
        spans=[
            span(
                "aaaa0001",
                "00000003",
                "icp.query",
                1.5,
                parent_id="00000002",
                hit=True,
            ),
            span("bbbb0001", "00000004", "http.request", 3.0),
        ],
    )
    return ClusterSnapshot(proxies={"proxy0": a, "proxy1": b})


class TestClusterSnapshot:
    def test_totals_sum_proxies_and_labels(self):
        snapshot = make_snapshot()
        assert snapshot.total("proxy_http_requests_total") == 14.0
        assert snapshot.total("proxy_dirupdates_sent_total") == 4.0
        assert snapshot.total("never_emitted_total") == 0.0

    def test_spans_are_annotated_and_time_ordered(self):
        spans = make_snapshot().spans()
        assert [s["proxy"] for s in spans] == [
            "proxy0",
            "proxy1",
            "proxy0",
            "proxy1",
        ]
        assert [s["start"] for s in spans] == [1.0, 1.5, 2.0, 3.0]

    def test_traces_reassemble_across_proxies(self):
        snapshot = make_snapshot()
        traces = snapshot.traces()
        assert set(traces) == {"aaaa0001", "bbbb0001"}
        cross = traces["aaaa0001"]
        assert {s["proxy"] for s in cross} == {"proxy0", "proxy1"}
        assert [s["name"] for s in cross] == [
            "http.request",
            "icp.query",
            "summary.lookup",
        ]
        # Lookup is case-insensitive on the hex id.
        assert snapshot.trace("AAAA0001") == cross
        assert snapshot.trace("ffffffff") == []

    def test_false_hit_attribution_math(self):
        by_proxy = {
            a.proxy: a for a in make_snapshot().false_hit_attribution()
        }
        attr = by_proxy["proxy0"]
        assert attr.rounds == 4
        assert attr.measured_ratio == pytest.approx(0.25)
        assert attr.predicted_fp_rate == pytest.approx(0.05)
        assert attr.representation == "bloom"
        # proxy1 resolved no hit-promising rounds: ratio defined as 0.
        assert by_proxy["proxy1"].measured_ratio == 0.0
        assert by_proxy["proxy1"].representation == "unknown"

    def test_as_dict_carries_derived_views(self):
        doc = make_snapshot().as_dict()
        assert doc["cross_proxy_traces"] == 1
        assert doc["traces"] == {"aaaa0001": 3, "bbbb0001": 1}
        assert doc["totals"]["proxy_http_requests_total"] == 14.0
        assert doc["proxies"]["proxy0"]["spans"]
        assert doc["false_hit_attribution"][0]["proxy"] == "proxy0"


class TestRendering:
    def test_render_cluster_lists_every_proxy(self):
        text = render_cluster(make_snapshot())
        assert "proxy0" in text
        assert "proxy1" in text
        assert "traces: 2 total, 1 spanning more than one proxy" in text

    def test_render_trace_tree(self):
        snapshot = make_snapshot()
        text = render_trace(snapshot.trace("aaaa0001"))
        lines = text.splitlines()
        assert lines[0] == "trace aaaa0001"
        assert lines[1].startswith("  http.request [proxy0]")
        assert lines[2].startswith("    summary.lookup [proxy0]")
        assert "outcome=remote_hit" in lines[2]
        assert lines[3].startswith("      icp.query [proxy1]")

    def test_render_trace_orphans_surface_at_top_level(self):
        orphan = span(
            "cccc0001", "00000009", "peer.fetch", 1.0, parent_id="deadbeef"
        )
        text = render_trace([{**orphan, "proxy": "proxy9"}])
        assert "peer.fetch [proxy9]" in text
        assert render_trace([]) == "(no spans)"


class TestScrape:
    def test_scrape_cluster_fuses_live_proxies(self):
        trace = generate_trace(
            SyntheticTraceConfig(
                name="obs-cluster-test",
                num_requests=120,
                num_clients=4,
                num_documents=40,
                mean_size=1024,
                max_size=16 * 1024,
                mod_probability=0.0,
                seed=7,
            )
        )

        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.SC_ICP,
                cache_capacity=512 * 1024,
                base_config=ProxyConfig(
                    summary=SummaryConfig(kind="bloom", load_factor=8),
                    expected_doc_size=1024,
                    update_threshold=0.01,
                ),
            ) as cluster:
                await cluster.replay(trace, assignment="round-robin")
                snapshot = await cluster.snapshot()
                duplicate = cluster.targets() + cluster.targets()[:1]
                with pytest.raises(ProtocolError):
                    await scrape_cluster(duplicate)
                return snapshot

        snapshot = run(scenario())
        assert set(snapshot.proxies) == {"proxy0", "proxy1"}
        assert snapshot.total("proxy_http_requests_total") == 120.0
        for snap in snapshot.proxies.values():
            assert snap.trace_enabled
            assert snap.trace_ring_capacity == 2048
            assert snap.spans
        assert snapshot.false_hit_attribution()[0].representation == "bloom"
        # The scrape itself must not have written spans into any ring.
        assert all(
            s["name"] != "http.request"
            or s["attributes"]["url"] not in ("/metrics", "/trace")
            for s in snapshot.spans()
        )
