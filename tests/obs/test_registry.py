"""Unit tests for the metrics registry and its exposition formats."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.export import (
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = MetricsRegistry().counter("ops_total", "ops")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("ops_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"k": "1"})
        b = registry.counter("x_total", labels={"k": "1"})
        c = registry.counter("x_total", labels={"k": "2"})
        assert a is b
        assert a is not c

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ConfigurationError):
            registry.gauge("thing")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.current() == 7

    def test_set_function_wins(self):
        g = MetricsRegistry().gauge("live")
        g.set(1)
        g.set_function(lambda: 42)
        assert g.current() == 42


class TestHistogramBucketEdges:
    """Prometheus ``le`` semantics: value == bound lands in that bucket."""

    def test_observation_equal_to_bound(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)
        assert h.counts == [0, 1, 0, 0]

    def test_observation_between_bounds(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        assert h.counts == [0, 1, 0, 0]

    def test_observation_above_last_bound_goes_to_inf(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(100.0)
        assert h.counts == [0, 0, 0, 1]

    def test_cumulative_ends_at_inf(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 99.0):
            h.observe(v)
        assert h.cumulative() == [(1.0, 2), (2.0, 3), (float("inf"), 4)]
        assert h.sum == pytest.approx(102.0)
        assert h.count == 4

    def test_bounds_must_be_strictly_ascending(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("bad2", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("bad3", buckets=())


class TestSnapshotReset:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        return registry

    def test_snapshot_shape(self):
        snap = self._populated().snapshot()
        by_name = {record["name"]: record for record in snap}
        assert by_name["c_total"]["value"] == 3
        assert by_name["g"]["value"] == 7
        assert by_name["h"]["count"] == 1
        assert by_name["h"]["buckets"][-1]["le"] == "+Inf"

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = self._populated()
        registry.reset()
        assert len(registry) == 3
        assert registry.value("c_total") == 0
        assert registry.value("g") == 0
        assert registry.get("h").count == 0

    def test_total_sums_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("s_total", labels={"scheme": "a"}).inc(2)
        registry.counter("s_total", labels={"scheme": "b"}).inc(3)
        assert registry.total("s_total") == 5
        assert registry.total("missing", default=-1) == -1


class TestTiming:
    def test_time_block_observes(self):
        registry = MetricsRegistry()
        with registry.time_block("phase_seconds"):
            pass
        hist = registry.get("phase_seconds")
        assert hist.count == 1
        assert hist.sum >= 0

    def test_timed_decorator(self):
        registry = MetricsRegistry()

        @registry.timed("fn_seconds")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        assert registry.get("fn_seconds").count == 1


class TestNullRegistry:
    def test_disabled_and_noop(self):
        null = NullRegistry()
        assert not null.enabled
        c = null.counter("x_total")
        c.inc(5)
        g = null.gauge("g")
        g.set(3)
        h = null.histogram("h")
        h.observe(1.0)
        assert c.current() == 0
        with null.time_block("t"):
            pass

        @null.timed("u")
        def fn():
            return 1

        assert fn() == 1

    def test_default_registry_switching(self):
        assert get_registry() is NULL_REGISTRY
        try:
            live = enable()
            assert live.enabled
            assert get_registry() is live
            previous = set_registry(NULL_REGISTRY)
            assert previous is live
        finally:
            disable()
        assert get_registry() is NULL_REGISTRY


class TestPrometheusExposition:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests", labels={"mode": "icp"}).inc(
            9
        )
        registry.gauge("depth", "queue depth").set(2)
        registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus(registry)
        assert '# TYPE reqs_total counter' in text
        assert '# HELP reqs_total requests' in text
        parsed = parse_prometheus(text)
        assert parsed["reqs_total"]['mode="icp"'] == 9
        assert parsed["depth"][""] == 2
        assert parsed["lat_seconds_bucket"]['le="0.1"'] == 0
        assert parsed["lat_seconds_bucket"]['le="1"'] == 1
        assert parsed["lat_seconds_bucket"]['le="+Inf"'] == 1
        assert parsed["lat_seconds_count"][""] == 1

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"url": 'a"b\\c'}).inc()
        text = render_prometheus(registry)
        assert 'url="a\\"b\\\\c"' in text

    def test_render_json(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        doc = json.loads(render_json(registry, workload="upisa"))
        assert doc["workload"] == "upisa"
        assert doc["metrics"][0]["name"] == "c_total"
        assert doc["metrics"][0]["value"] == 2
