"""Exposition-format edge cases: escaping, non-finite values, parsing.

The render half lives behind the proxy's ``GET /metrics``; the parse
half is what the cluster aggregator trusts when it scrapes peers.  The
property test pins the contract between them: anything the renderer can
emit, the parser reads back exactly.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.obs.export import (
    _format_labels,
    _format_value,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry


class TestFormatValue:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (float("inf"), "+Inf"),
            (float("-inf"), "-Inf"),
            (float("nan"), "NaN"),
            (3.0, "3"),
            (0.25, "0.25"),
        ],
    )
    def test_exposition_spellings(self, value, expected):
        assert _format_value(value) == expected


class TestFormatLabels:
    def test_extra_does_not_leak_between_calls(self):
        # Regression: `extra` used to be a mutable default argument, so
        # one histogram's `le` could bleed into the next metric's labels.
        assert _format_labels({}, {"le": "1"}) == '{le="1"}'
        assert _format_labels({}) == ""
        assert _format_labels({"a": "1"}) == '{a="1"}'

    def test_merges_and_sorts(self):
        assert (
            _format_labels({"b": "2"}, {"a": "1"}) == '{a="1",b="2"}'
        )


class TestParsePrometheus:
    def test_label_value_with_spaces(self):
        parsed = parse_prometheus('m{url="a b c"} 1\n')
        assert parsed["m"]['url="a b c"'] == 1

    def test_label_value_with_escaped_quote_and_brace(self):
        parsed = parse_prometheus('m{url="a\\"b} c"} 2\n')
        assert parsed["m"]['url="a\\"b} c"'] == 2

    def test_trailing_timestamp_is_tolerated(self):
        parsed = parse_prometheus("m 4 1700000000\n")
        assert parsed["m"][""] == 4

    def test_non_finite_values(self):
        parsed = parse_prometheus("a +Inf\nb -Inf\nc NaN\n")
        assert parsed["a"][""] == float("inf")
        assert parsed["b"][""] == float("-inf")
        assert math.isnan(parsed["c"][""])

    @pytest.mark.parametrize(
        "line",
        [
            "just_a_name",  # no value
            'm{url="x"}1',  # no space before value
            "m not_a_number",
            "{nameless} 1",
        ],
    )
    def test_malformed_sample_raises(self, line):
        with pytest.raises(ProtocolError):
            parse_prometheus(line + "\n")


_LABEL_VALUES = st.text(
    alphabet=st.sampled_from(
        list("abz09 \t\"\\{}=,\n") + ["é"]
    ),
    max_size=12,
)
_VALUES = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True),
    st.integers(min_value=-(2**53), max_value=2**53).map(float),
)


class TestRoundTripProperty:
    @given(url=_LABEL_VALUES, peer=_LABEL_VALUES, value=_VALUES)
    def test_render_parse_is_exact(self, url, peer, value):
        registry = MetricsRegistry()
        registry.gauge(
            "g", "gauge", labels={"url": url, "peer": peer}
        ).set(value)
        parsed = parse_prometheus(render_prometheus(registry))
        labels = _format_labels({"url": url, "peer": peer})[1:-1]
        got = parsed["g"][labels]
        if math.isnan(value):
            assert math.isnan(got)
        else:
            assert got == value
