"""Units for the rendezvous ring and the live placement wrapper."""

from __future__ import annotations

import pytest

from repro.core.hashing import md5_digest
from repro.errors import ConfigurationError
from repro.placement import (
    CooperationPolicy,
    HashRing,
    Placement,
    carp_owner,
    displaced_keys,
    key_value,
    member_point,
    rendezvous_score,
)

URLS = [f"http://server{i % 5}.example.com/doc/{i}" for i in range(400)]


class TestPrimitives:
    def test_member_point_is_deterministic_and_64_bit(self):
        p = member_point("proxy0")
        assert p == member_point("proxy0")
        assert 0 <= p < 1 << 64
        assert member_point("proxy0") != member_point("proxy1")

    def test_key_value_comes_from_the_interned_digest(self):
        digest = md5_digest("http://a.com/1")
        v = key_value(digest)
        assert 0 <= v < 1 << 64
        # bits 0..63 of the digest stream, not a re-hash of the URL
        assert v == key_value(md5_digest("http://a.com/1"))

    def test_rendezvous_score_mixes_both_inputs(self):
        s = rendezvous_score(member_point("a"), 12345)
        assert s != rendezvous_score(member_point("b"), 12345)
        assert s != rendezvous_score(member_point("a"), 54321)


class TestHashRing:
    def test_owner_is_deterministic_and_a_member(self):
        ring = HashRing(["a", "b", "c"])
        for url in URLS:
            owner = ring.owner_of(url)
            assert owner in ring.members
            assert owner == ring.owner_of(url)

    def test_owner_agrees_with_digest_route(self):
        ring = HashRing(["a", "b", "c"])
        for url in URLS[:50]:
            assert ring.owner(md5_digest(url)) == ring.owner_of(url)

    def test_replicas_owner_first_distinct_and_sized(self):
        ring = HashRing(["a", "b", "c", "d"], replication=3)
        for url in URLS[:100]:
            reps = ring.replicas_of(url)
            assert len(reps) == 3
            assert len(set(reps)) == 3
            assert reps[0] == ring.owner_of(url)

    def test_replication_capped_at_member_count(self):
        ring = HashRing(["a", "b"], replication=5)
        assert ring.replication == 2

    def test_member_order_does_not_matter(self):
        fwd = HashRing(["a", "b", "c"])
        rev = HashRing(["c", "b", "a"])
        for url in URLS[:100]:
            assert fwd.owner_of(url) == rev.owner_of(url)

    def test_join_only_moves_keys_to_the_newcomer(self):
        before = HashRing(["a", "b", "c"])
        after = before.with_member("d")
        for url in URLS:
            old, new = before.owner_of(url), after.owner_of(url)
            if old != new:
                assert new == "d"

    def test_leave_only_moves_keys_from_the_departed(self):
        before = HashRing(["a", "b", "c", "d"])
        after = before.without_member("d")
        for url in URLS:
            old, new = before.owner_of(url), after.owner_of(url)
            if old != new:
                assert old == "d"

    def test_balance_over_many_keys(self):
        ring = HashRing([f"p{i}" for i in range(4)])
        counts = {m: 0 for m in ring.members}
        for i in range(4000):
            counts[ring.owner_of(f"http://balance.test/{i}")] += 1
        assert min(counts.values()) > 700
        assert max(counts.values()) < 1300

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            HashRing([])
        with pytest.raises(ConfigurationError):
            HashRing(["a", "a"])
        with pytest.raises(ConfigurationError):
            HashRing(["a"], replication=0)
        ring = HashRing(["a", "b"])
        with pytest.raises(ConfigurationError):
            ring.with_member("a")
        with pytest.raises(ConfigurationError):
            ring.without_member("zz")
        with pytest.raises(ConfigurationError):
            HashRing(["solo"]).without_member("solo")
        with pytest.raises(ConfigurationError):
            carp_owner("http://x/", 0)


class TestPlacement:
    def _items(self, placement: Placement, n: int = 200):
        """(url, digest) pairs the holder owns under the current ring."""
        pairs = [(u, md5_digest(u)) for u in URLS[:n]]
        return [
            (u, d)
            for u, d in pairs
            if placement.owner(d) == placement.self_name
        ]

    def test_self_is_always_a_member(self):
        p = Placement("a", ["b", "c"])
        assert "a" in p.members
        p2 = Placement("a", ["a", "b"])  # tolerate self in the peer list
        assert sorted(p2.members) == ["a", "b"]

    def test_is_local_matches_replica_membership(self):
        p = Placement("a", ["b", "c"], replication=2)
        for url in URLS[:100]:
            d = md5_digest(url)
            assert p.is_local(d) == ("a" in p.replicas(d))

    def test_join_reports_displaced_keys_and_leave_reports_none(self):
        p = Placement("a", ["b", "c"])
        mine = self._items(p)
        assert mine  # the fixture owns something
        displaced = p.add_member("d", mine)
        # Exactly the keys the newcomer now owns were displaced.
        assert displaced == [u for u, d in mine if p.owner(d) == "d"]
        assert "d" in p.members
        survivors_keys = self._items(p)
        assert p.remove_member("b", survivors_keys) == []
        assert "b" not in p.members

    def test_membership_noops(self):
        p = Placement("a", ["b"])
        assert p.add_member("b") == []
        assert p.remove_member("a") == []
        assert p.remove_member("ghost") == []

    def test_displaced_keys_helper_is_replica_aware(self):
        before = HashRing(["a", "b", "c"], replication=2)
        after = before.with_member("d")
        items = [(u, md5_digest(u)) for u in URLS[:200]]
        held = [(u, d) for u, d in items if "a" in before.replicas(d)]
        displaced = displaced_keys(before, after, "a", held)
        for url, digest in held:
            expect = "a" not in after.replicas(digest)
            assert (url in displaced) == expect


class TestCooperationPolicy:
    def test_parse_and_choices(self):
        assert CooperationPolicy.parse("carp") is CooperationPolicy.CARP
        assert (
            CooperationPolicy.parse(CooperationPolicy.SUMMARY)
            is CooperationPolicy.SUMMARY
        )
        assert CooperationPolicy.choices() == (
            "carp",
            "single-copy",
            "summary",
        )
        with pytest.raises(ConfigurationError):
            CooperationPolicy.parse("gossip")

    def test_policy_axes(self):
        assert CooperationPolicy.CARP.routes_by_owner
        assert not CooperationPolicy.SUMMARY.routes_by_owner
        assert not CooperationPolicy.SINGLE_COPY.routes_by_owner
        assert CooperationPolicy.SUMMARY.caches_remote_hits
        assert not CooperationPolicy.SINGLE_COPY.caches_remote_hits
        assert not CooperationPolicy.CARP.caches_remote_hits


class TestPlacementVersion:
    """The monotonic version counter guarding stale routing verdicts.

    The proxy's owner-forward path routes under one membership view,
    awaits the forward, and only evicts the owner if the view is
    unchanged (``_owner_path`` re-checks ``version``).  These pin the
    counter semantics that re-check relies on.
    """

    def test_starts_at_zero_and_bumps_on_change(self):
        p = Placement("a", ["b"])
        assert p.version == 0
        p.add_member("c")
        assert p.version == 1
        p.remove_member("c")
        assert p.version == 2

    def test_noop_changes_do_not_bump(self):
        p = Placement("a", ["b"])
        p.add_member("b")  # already a member
        p.remove_member("ghost")  # never a member
        p.remove_member("a")  # the holder itself: refused
        assert p.version == 0

    def test_stale_verdict_detectable_after_rejoin_race(self):
        # The race _owner_path had: route to owner b, await, b leaves
        # and rejoins (membership changed twice), the old "b is gone"
        # verdict must not evict the rejoined b.
        p = Placement("a", ["b"])
        routed_version = p.version
        p.remove_member("b")
        p.add_member("b")
        assert p.version != routed_version
        assert "b" in p.members
