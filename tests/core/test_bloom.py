"""Tests for the plain Bloom filter."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bfmath import false_positive_probability
from repro.core.bloom import BloomFilter
from repro.core.hashing import MD5HashFamily
from repro.errors import ConfigurationError


class TestBloomFilterBasics:
    def test_empty_filter_contains_nothing(self):
        filt = BloomFilter(1024)
        assert not filt.may_contain("http://example.com/a")

    def test_no_false_negatives(self):
        filt = BloomFilter.for_capacity(500, load_factor=8)
        urls = [f"http://s{i}.com/doc{i}" for i in range(500)]
        for url in urls:
            filt.add(url)
        assert all(filt.may_contain(url) for url in urls)

    def test_contains_operator(self):
        filt = BloomFilter(256)
        filt.add("http://a.com/x")
        assert "http://a.com/x" in filt

    def test_add_returns_flipped_bits(self):
        filt = BloomFilter(1 << 20)
        flipped = filt.add("http://a.com/x")
        assert set(flipped) == set(filt.positions("http://a.com/x"))
        # Adding again flips nothing.
        assert filt.add("http://a.com/x") == []

    def test_for_capacity_sizing(self):
        filt = BloomFilter.for_capacity(1000, load_factor=16)
        assert filt.num_bits == 16_000
        assert filt.size_bytes() == 2000

    @pytest.mark.parametrize("bad_args", [(0, 8), (10, 0)])
    def test_for_capacity_validation(self, bad_args):
        with pytest.raises(ConfigurationError):
            BloomFilter.for_capacity(*bad_args)

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(0)

    def test_false_positive_rate_near_analytic(self):
        # Load factor 10 with 4 hashes: the paper's example gives 1.2%.
        n = 2000
        filt = BloomFilter(10 * n)
        for i in range(n):
            filt.add(f"http://s{i}.com/present{i}")
        trials = 4000
        false_positives = sum(
            filt.may_contain(f"http://other{i}.org/absent{i}")
            for i in range(trials)
        )
        expected = false_positive_probability(10, 4)
        assert false_positives / trials == pytest.approx(
            expected, abs=0.01
        )

    def test_expected_false_positive_rate_tracks_fill(self):
        filt = BloomFilter(1000)
        assert filt.expected_false_positive_rate() == 0.0
        for i in range(100):
            filt.add(f"u{i}")
        rate = filt.expected_false_positive_rate()
        assert 0.0 < rate < 1.0
        assert rate == pytest.approx(filt.fill_ratio() ** 4)


class TestBloomFilterUpdatesAndSerialization:
    def test_apply_flips_is_idempotent(self):
        filt = BloomFilter(128)
        flips = [(3, True), (77, True), (3, True)]
        assert filt.apply_flips(flips) == 2
        assert filt.apply_flips(flips) == 0

    def test_set_bit(self):
        filt = BloomFilter(64)
        assert filt.set_bit(5, True) is True
        assert filt.set_bit(5, True) is False
        assert filt.set_bit(5, False) is True

    def test_reset(self):
        filt = BloomFilter(64)
        filt.add("http://a.com/x")
        filt.reset()
        assert not filt.may_contain("http://a.com/x")
        assert filt.fill_ratio() == 0.0

    def test_bytes_roundtrip_preserves_membership(self):
        family = MD5HashFamily(num_functions=5)
        filt = BloomFilter(2048, hash_family=family)
        urls = [f"http://x{i}.com/p" for i in range(100)]
        for url in urls:
            filt.add(url)
        clone = BloomFilter.from_bytes(
            2048, filt.to_bytes(), hash_family=family
        )
        assert clone == filt
        assert all(clone.may_contain(u) for u in urls)

    def test_copy_is_independent(self):
        filt = BloomFilter(128)
        clone = filt.copy()
        clone.add("http://a.com/x")
        assert not filt.may_contain("http://a.com/x")

    def test_equality_requires_same_family(self):
        a = BloomFilter(128, hash_family=MD5HashFamily(4))
        b = BloomFilter(128, hash_family=MD5HashFamily(5))
        assert a != b
        assert a != object()

    @given(st.sets(st.text(min_size=1, max_size=30), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_membership_superset_property(self, keys):
        """A Bloom filter may over-approximate but never under-approximate."""
        filt = BloomFilter(4096)
        for key in keys:
            filt.add(key)
        assert all(filt.may_contain(k) for k in keys)

    @given(st.sets(st.text(min_size=1, max_size=30), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_serialization_roundtrip_property(self, keys):
        filt = BloomFilter(2048)
        for key in keys:
            filt.add(key)
        clone = BloomFilter.from_bytes(2048, filt.to_bytes())
        assert clone == filt


class TestBatchOperations:
    def test_add_many_equals_repeated_add(self):
        urls = [f"http://batch{i}.com/p" for i in range(50)]
        one_by_one = BloomFilter(2048)
        for url in urls:
            one_by_one.add(url)
        batched = BloomFilter(2048)
        batched.add_many(urls)
        assert batched == one_by_one

    def test_may_contain_many_matches_scalar(self):
        filt = BloomFilter(2048)
        present = [f"http://in{i}.com/p" for i in range(20)]
        absent = [f"http://out{i}.com/p" for i in range(20)]
        filt.add_many(present)
        probes = present + absent
        assert filt.may_contain_many(probes) == [
            filt.may_contain(u) for u in probes
        ]
