"""Tests for the packed bit and counter arrays."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitarray import BitArray, CounterArray
from repro.errors import ConfigurationError


class TestBitArray:
    def test_starts_all_zero(self):
        bits = BitArray(100)
        assert bits.popcount == 0
        assert not any(bits.get(i) for i in range(100))

    def test_set_and_get(self):
        bits = BitArray(16)
        assert bits.set(3) is True
        assert bits.get(3)
        assert bits.popcount == 1

    def test_set_same_value_reports_no_change(self):
        bits = BitArray(16)
        bits.set(3)
        assert bits.set(3) is False
        assert bits.popcount == 1

    def test_clear(self):
        bits = BitArray(16)
        bits.set(3)
        assert bits.clear(3) is True
        assert not bits.get(3)
        assert bits.popcount == 0
        assert bits.clear(3) is False

    def test_fill_ratio(self):
        bits = BitArray(10)
        for i in range(5):
            bits.set(i)
        assert bits.fill_ratio == pytest.approx(0.5)

    def test_index_bounds(self):
        bits = BitArray(8)
        with pytest.raises(IndexError):
            bits.get(8)
        with pytest.raises(IndexError):
            bits.set(-1)

    def test_iter_set_bits(self):
        bits = BitArray(64)
        for i in (0, 7, 8, 33, 63):
            bits.set(i)
        assert list(bits.iter_set_bits()) == [0, 7, 8, 33, 63]

    def test_roundtrip_bytes(self):
        bits = BitArray(37)
        for i in (0, 5, 19, 36):
            bits.set(i)
        clone = BitArray.from_bytes(37, bits.to_bytes())
        assert clone == bits
        assert clone.popcount == 4

    def test_from_bytes_masks_tail(self):
        # Stray bits beyond `size` must be masked out.
        clone = BitArray.from_bytes(4, bytes([0xFF]))
        assert clone.popcount == 4
        assert [i for i in range(4) if clone.get(i)] == [0, 1, 2, 3]

    def test_from_bytes_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            BitArray.from_bytes(16, b"\x00")

    def test_reset(self):
        bits = BitArray(32)
        bits.set(1)
        bits.set(30)
        bits.reset()
        assert bits.popcount == 0

    def test_copy_is_independent(self):
        bits = BitArray(8)
        bits.set(1)
        clone = bits.copy()
        clone.set(2)
        assert not bits.get(2)
        assert bits != clone

    def test_size_bytes(self):
        assert BitArray(1).size_bytes() == 1
        assert BitArray(8).size_bytes() == 1
        assert BitArray(9).size_bytes() == 2

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            BitArray(0)

    def test_set_many_reports_changed_indices(self):
        bits = BitArray(64)
        bits.set(5)
        changed = bits.set_many([3, 5, 9, 3])
        assert changed == [3, 9]  # 5 was already set; 3 repeats
        assert bits.popcount == 3

    def test_set_many_clear(self):
        bits = BitArray(64)
        bits.set_many([1, 2, 3])
        assert bits.set_many([2, 3, 4], value=False) == [2, 3]
        assert set(bits.iter_set_bits()) == {1}
        assert bits.popcount == 1

    def test_set_many_bounds(self):
        bits = BitArray(8)
        with pytest.raises(IndexError):
            bits.set_many([0, 8])
        with pytest.raises(IndexError):
            bits.set_many([-1], value=False)

    def test_flipped_indices(self):
        mine = BitArray(80)
        mine.set_many([1, 9, 40])
        theirs = BitArray(80)
        theirs.set_many([9, 40, 77])
        flips = mine.flipped_indices(theirs)
        # (index, value-in-self): replaying onto `theirs` yields `mine`.
        assert sorted(flips) == [(1, True), (77, False)]
        for index, value in flips:
            theirs.set(index, value)
        assert theirs == mine

    def test_flipped_indices_identical(self):
        mine = BitArray(33)
        mine.set_many([0, 32])
        assert mine.flipped_indices(mine.copy()) == []

    def test_flipped_indices_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            BitArray(8).flipped_indices(BitArray(16))

    @given(
        st.lists(
            st.tuples(st.integers(0, 199), st.booleans()),
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_set_model(self, ops):
        bits = BitArray(200)
        reference = set()
        for index, value in ops:
            bits.set(index, value)
            if value:
                reference.add(index)
            else:
                reference.discard(index)
        assert set(bits.iter_set_bits()) == reference
        assert bits.popcount == len(reference)

    @given(
        st.lists(st.integers(0, 199), max_size=60),
        st.lists(st.integers(0, 199), max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_set_many_and_diff_match_set_model(self, added, removed):
        bits = BitArray(200)
        reference = set(added)
        changed_add = bits.set_many(added)
        assert len(changed_add) == len(reference)
        changed_clear = bits.set_many(removed, value=False)
        assert set(changed_clear) == reference & set(removed)
        reference -= set(removed)
        assert bits.popcount == len(reference)
        empty = BitArray(200)
        assert sorted(i for i, v in bits.flipped_indices(empty)) == sorted(
            reference
        )


class TestCounterArray:
    def test_starts_zero(self):
        counters = CounterArray(10)
        assert all(counters.get(i) == 0 for i in range(10))

    def test_increment_and_decrement(self):
        counters = CounterArray(10)
        assert counters.increment(3) == 1
        assert counters.increment(3) == 2
        assert counters.decrement(3) == 1
        assert counters.decrement(3) == 0

    def test_underflow_raises(self):
        counters = CounterArray(4)
        with pytest.raises(ValueError):
            counters.decrement(0)

    def test_saturation_sticks_at_max(self):
        counters = CounterArray(4, width=2)  # max value 3
        for _ in range(5):
            counters.increment(1)
        assert counters.get(1) == 3
        assert counters.saturation_events == 2
        # The paper's rule: a saturated counter is never decremented.
        assert counters.decrement(1) == 3
        assert counters.get(1) == 3

    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_all_supported_widths(self, width):
        counters = CounterArray(20, width=width)
        top = counters.max_value
        assert top == (1 << width) - 1
        for _ in range(top):
            counters.increment(7)
        assert counters.get(7) == top

    def test_neighbours_do_not_interfere(self):
        # Two 4-bit counters share a byte; mutating one must not leak.
        counters = CounterArray(10, width=4)
        counters.increment(4)
        counters.increment(5)
        counters.increment(5)
        assert counters.get(4) == 1
        assert counters.get(5) == 2
        counters.decrement(5)
        assert counters.get(4) == 1

    def test_nonzero_indices(self):
        counters = CounterArray(16)
        counters.increment(2)
        counters.increment(9)
        assert counters.nonzero_indices() == [2, 9]

    def test_load_from(self):
        counters = CounterArray(4, width=4)
        counters.load_from([1, 15, 0, 7])
        assert [counters.get(i) for i in range(4)] == [1, 15, 0, 7]

    def test_load_from_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            CounterArray(2, width=4).load_from([16, 0])

    def test_size_bytes_packs_nibbles(self):
        assert CounterArray(10, width=4).size_bytes() == 5
        assert CounterArray(10, width=8).size_bytes() == 10
        assert CounterArray(10, width=1).size_bytes() == 2

    def test_rejects_unsupported_width(self):
        with pytest.raises(ConfigurationError):
            CounterArray(10, width=3)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CounterArray(0)

    def test_index_bounds(self):
        counters = CounterArray(8)
        with pytest.raises(IndexError):
            counters.get(8)

    @given(
        st.lists(
            st.tuples(st.integers(0, 49), st.booleans()),
            max_size=400,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_counter_model(self, ops):
        counters = CounterArray(50, width=8)
        reference = [0] * 50
        for index, is_increment in ops:
            if is_increment:
                counters.increment(index)
                reference[index] = min(255, reference[index] + 1)
            elif reference[index] > 0:
                counters.decrement(index)
                reference[index] -= 1
        assert [counters.get(i) for i in range(50)] == reference
