"""Tests for the shared hash-position cache (repro.core.position_cache)."""

from __future__ import annotations

import hashlib

import pytest

from repro.core.hashing import MD5HashFamily, md5_digest
from repro.core.position_cache import (
    HashPositionCache,
    get_position_cache,
    md5_stream,
    position_cache,
    positions_from_stream,
    set_position_cache,
)
from repro.errors import ConfigurationError, KeyTypeError

URL = "http://www.example.com/a/b/c.html"


class TestDigestMemoization:
    def test_digest_matches_hashlib(self):
        cache = HashPositionCache()
        assert cache.digest(URL) == hashlib.md5(URL.encode()).digest()

    def test_digest_interned(self):
        cache = HashPositionCache()
        first = cache.digest(URL)
        assert cache.digest(URL) is first

    def test_bytes_and_str_keys_both_work(self):
        cache = HashPositionCache()
        assert cache.digest(URL) == cache.digest(URL.encode())

    def test_seed_digest_installs_without_hashing(self):
        cache = HashPositionCache()
        marker = hashlib.md5(URL.encode()).digest()
        cache.seed_digest(URL, marker)
        assert cache.digest(URL) is marker

    def test_seed_digest_never_overwrites(self):
        cache = HashPositionCache()
        real = cache.digest(URL)
        cache.seed_digest(URL, b"\x00" * 16)
        assert cache.digest(URL) is real

    def test_hit_miss_counters(self):
        cache = HashPositionCache()
        cache.digest(URL)
        cache.digest(URL)
        cache.digest(URL)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_rejects_bad_key_type(self):
        cache = HashPositionCache()
        with pytest.raises(KeyTypeError):
            cache.digest(1234)  # type: ignore[arg-type]


class TestGeometryKeying:
    def test_positions_match_uncached_family(self):
        """Wire-spec compatibility: cached positions == Section VI-A math."""
        family = MD5HashFamily(num_functions=4, function_bits=32)
        cache = HashPositionCache()
        with position_cache(None):
            uncached = family.hashes(URL, 12_345)
        cached = cache.positions(URL, 4, 32, 12_345)
        assert cached == uncached

    def test_distinct_geometries_distinct_entries(self):
        cache = HashPositionCache()
        a = cache.positions(URL, 4, 32, 1_000)
        b = cache.positions(URL, 4, 32, 2_000)
        c = cache.positions(URL, 2, 32, 1_000)
        assert a != b  # different table size -> different modulus
        assert len(c) == 2
        # Three geometries, one key: one line, three position tuples.
        assert len(cache) == 1
        assert cache.stats()["misses"] == 3

    def test_repeat_geometry_is_a_hit(self):
        cache = HashPositionCache()
        first = cache.positions(URL, 4, 32, 1_000)
        assert cache.positions(URL, 4, 32, 1_000) is first
        assert cache.stats()["hits"] == 1

    def test_wide_family_matches_uncached(self):
        """Families needing > 128 stream bits use the extension rule."""
        family = MD5HashFamily(num_functions=4, function_bits=50)
        cache = HashPositionCache()
        with position_cache(None):
            uncached = family.hashes(URL, 99_991)
        assert cache.positions(URL, 4, 50, 99_991) == uncached

    def test_positions_derived_from_stored_digest(self):
        """A <=128-bit geometry reuses the stored digest, bit for bit."""
        cache = HashPositionCache()
        digest = cache.digest(URL)
        stream = int.from_bytes(digest, "big")
        assert cache.positions(URL, 4, 32, 7_919) == positions_from_stream(
            stream, 4, 32, 7_919
        )


class TestLruBound:
    def test_eviction_at_capacity(self):
        cache = HashPositionCache(max_entries=2)
        cache.digest("a")
        cache.digest("b")
        cache.digest("c")
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1

    def test_evicts_least_recently_used(self):
        cache = HashPositionCache(max_entries=2)
        cache.digest("a")
        cache.digest("b")
        cache.digest("a")  # refresh "a"; "b" is now LRU
        cache.digest("c")  # evicts "b"
        misses = cache.stats()["misses"]
        cache.digest("a")  # still cached
        assert cache.stats()["misses"] == misses
        cache.digest("b")  # evicted -> recomputed
        assert cache.stats()["misses"] == misses + 1

    def test_digest_and_positions_age_out_together(self):
        cache = HashPositionCache(max_entries=1)
        cache.positions("a", 4, 32, 1_000)
        cache.digest("b")
        assert len(cache) == 1
        misses = cache.stats()["misses"]
        cache.positions("a", 4, 32, 1_000)
        assert cache.stats()["misses"] == misses + 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            HashPositionCache(max_entries=0)

    def test_clear_preserves_counters(self):
        cache = HashPositionCache()
        cache.digest(URL)
        cache.digest(URL)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1


class TestProcessDefault:
    def test_default_installed_at_import(self):
        assert get_position_cache() is not None

    def test_swap_and_restore(self):
        original = get_position_cache()
        mine = HashPositionCache()
        try:
            assert set_position_cache(mine) is original
            assert get_position_cache() is mine
        finally:
            set_position_cache(original)

    def test_context_manager_scopes_swap(self):
        original = get_position_cache()
        with position_cache(None):
            assert get_position_cache() is None
        assert get_position_cache() is original

    def test_md5_digest_identical_with_and_without_cache(self):
        with position_cache(HashPositionCache()):
            cached = md5_digest(URL)
        with position_cache(None):
            uncached = md5_digest(URL)
        assert cached == uncached

    def test_family_hashes_identical_with_and_without_cache(self):
        family = MD5HashFamily()
        with position_cache(HashPositionCache()):
            cached = family.hashes(URL, 50_021)
        with position_cache(None):
            uncached = family.hashes(URL, 50_021)
        assert cached == uncached


class TestStreamPrimitives:
    def test_md5_stream_first_block_is_digest(self):
        data = URL.encode()
        stream = md5_stream(data, 128)
        assert stream == int.from_bytes(hashlib.md5(data).digest(), "big")

    def test_md5_stream_extension_rule(self):
        """Bits beyond 128 come from MD5(data*2), per Section VI-A."""
        data = URL.encode()
        stream = md5_stream(data, 256)
        low = int.from_bytes(hashlib.md5(data).digest(), "big")
        high = int.from_bytes(hashlib.md5(data * 2).digest(), "big")
        assert stream == low | (high << 128)

    def test_positions_from_stream_slices_in_order(self):
        stream = int.from_bytes(bytes(range(1, 17)), "big")
        mask = (1 << 32) - 1
        expected = tuple(
            ((stream >> (i * 32)) & mask) % 1_000_003 for i in range(4)
        )
        assert positions_from_stream(stream, 4, 32, 1_000_003) == expected
