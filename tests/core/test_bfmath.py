"""Tests for the analytic Bloom filter math (Section V-C, Fig. 4)."""

from __future__ import annotations

import math

import pytest

from repro.core import bfmath
from repro.errors import ConfigurationError


class TestFalsePositiveProbability:
    def test_paper_example_load_factor_10_four_hashes(self):
        # "for a bit array 10 times larger than the number of entries,
        # the probability of a false positive is 1.2% for four hash
        # functions"
        assert bfmath.false_positive_probability(10, 4) == pytest.approx(
            0.0118, abs=0.0005
        )

    def test_paper_example_five_hashes(self):
        # "... and 0.9% for ... five hash functions."
        assert bfmath.false_positive_probability(10, 5) == pytest.approx(
            0.0094, abs=0.0005
        )

    def test_exact_formula_converges_to_asymptotic(self):
        m, n, k = 100_000, 10_000, 4
        exact = bfmath.false_positive_probability_exact(m, n, k)
        asymptotic = bfmath.false_positive_probability(m / n, k)
        assert exact == pytest.approx(asymptotic, rel=1e-3)

    def test_zero_keys_is_zero(self):
        assert bfmath.false_positive_probability_exact(100, 0, 4) == 0.0

    def test_monotone_decreasing_in_bits(self):
        probs = [
            bfmath.false_positive_probability(m_over_n, 4)
            for m_over_n in range(4, 33)
        ]
        assert probs == sorted(probs, reverse=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bits_per_entry": 0, "num_hashes": 4},
            {"bits_per_entry": 8, "num_hashes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            bfmath.false_positive_probability(**kwargs)

    def test_exact_validation(self):
        with pytest.raises(ConfigurationError):
            bfmath.false_positive_probability_exact(0, 1, 1)


class TestOptimalHashes:
    def test_real_optimum_is_ln2_times_ratio(self):
        assert bfmath.optimal_num_hashes(16) == pytest.approx(
            math.log(2) * 16
        )

    def test_integer_optimum_beats_neighbours(self):
        for m_over_n in (6, 8, 10, 16, 32):
            k = bfmath.optimal_integer_num_hashes(m_over_n)
            best = bfmath.false_positive_probability(m_over_n, k)
            for other in (k - 1, k + 1):
                if other >= 1:
                    assert best <= bfmath.false_positive_probability(
                        m_over_n, other
                    )

    def test_min_probability_formula(self):
        # p_min = 0.6185 ** (m/n)
        assert bfmath.min_false_positive_probability(
            10
        ) == pytest.approx(0.6185 ** 10, rel=1e-3)

    def test_min_is_lower_bound_for_integer_choices(self):
        for m_over_n in (4, 8, 16):
            floor = bfmath.min_false_positive_probability(m_over_n)
            k = bfmath.optimal_integer_num_hashes(m_over_n)
            assert bfmath.false_positive_probability(m_over_n, k) >= floor * 0.999

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bfmath.optimal_num_hashes(0)
        with pytest.raises(ConfigurationError):
            bfmath.min_false_positive_probability(-1)


class TestCounterOverflow:
    def test_sixteen_is_minuscule(self):
        # The paper's 4-bit-counter argument: Pr(any counter >= 16) is
        # tiny for any realistic m.
        p = bfmath.counter_overflow_probability(m=2**24, n=2**20, j=16)
        assert p < 1e-7

    def test_small_j_is_likely(self):
        assert bfmath.counter_overflow_probability(10_000, 10_000, 2) == 1.0

    def test_capped_at_one(self):
        assert bfmath.counter_overflow_probability(10**9, 10**6, 1) == 1.0

    def test_zero_keys(self):
        assert bfmath.counter_overflow_probability(100, 0, 4) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bfmath.counter_overflow_probability(0, 1, 1)
        with pytest.raises(ConfigurationError):
            bfmath.counter_overflow_probability(1, -1, 1)
        with pytest.raises(ConfigurationError):
            bfmath.counter_overflow_probability(1, 1, 0)


class TestTablesAndSeries:
    def test_example_table_shape(self):
        rows = bfmath.example_table()
        assert len(rows) == len(bfmath.EXAMPLE_TABLE_LOAD_FACTORS)
        for m_over_n, k4, p4, k_opt, p_opt in rows:
            assert k4 == 4
            assert p_opt <= p4 * 1.0001  # optimum never worse

    def test_fig4_series(self):
        xs, top, bottom = bfmath.fig4_series(2, 32)
        assert xs[0] == 2 and xs[-1] == 32
        assert len(xs) == len(top) == len(bottom)
        # The optimal-k curve is never above the k=4 curve.
        assert all(b <= t * 1.0001 for t, b in zip(top, bottom))
        # Log-scale straight line: ratios of consecutive optimal values
        # are roughly constant for larger x.
        ratios = [bottom[i + 1] / bottom[i] for i in range(20, 29)]
        assert max(ratios) / min(ratios) < 1.6

    def test_fig4_series_validation(self):
        with pytest.raises(ConfigurationError):
            bfmath.fig4_series(5, 4)

    def test_expected_maximum_counter_scale(self):
        value = bfmath.expected_maximum_counter(2**20, 2**17, 4)
        assert 4 < value < 16
