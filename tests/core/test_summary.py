"""Tests for the three summary representations of Section V."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summary import (
    AVERAGE_DOCUMENT_SIZE,
    BloomSummary,
    ExactDirectorySummary,
    ServerNameSummary,
    SummaryConfig,
    expected_documents_for_cache,
    make_local_summary,
)
from repro.errors import ConfigurationError

URLS = [f"http://server{i // 3}.com/doc{i}" for i in range(30)]


def make_all_summaries():
    return [
        ExactDirectorySummary(),
        ServerNameSummary(),
        BloomSummary(100, SummaryConfig(kind="bloom", load_factor=16)),
    ]


class TestSummaryConfig:
    def test_defaults_are_the_papers(self):
        cfg = SummaryConfig()
        assert cfg.kind == "bloom"
        assert cfg.num_hashes == 4
        assert cfg.counter_width == 4

    def test_labels(self):
        assert SummaryConfig(kind="bloom", load_factor=8).label() == "bloom-8"
        assert SummaryConfig(kind="server-name").label() == "server-name"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            SummaryConfig(kind="magic")

    def test_rejects_bad_load_factor(self):
        with pytest.raises(ConfigurationError):
            SummaryConfig(load_factor=0)

    def test_rejects_bad_num_hashes(self):
        with pytest.raises(ConfigurationError):
            SummaryConfig(num_hashes=0)


class TestCommonBehaviour:
    @pytest.mark.parametrize("summary", make_all_summaries())
    def test_add_then_contains(self, summary):
        summary.add(URLS[0])
        assert summary.may_contain(URLS[0])

    @pytest.mark.parametrize("summary", make_all_summaries())
    def test_no_false_negatives(self, summary):
        for url in URLS:
            summary.add(url)
        assert all(summary.may_contain(u) for u in URLS)

    @pytest.mark.parametrize("summary", make_all_summaries())
    def test_key_of_contains_key_agrees_with_may_contain(self, summary):
        for url in URLS[:10]:
            summary.add(url)
        for url in URLS:
            key = summary.key_of(url)
            assert summary.contains_key(key) == summary.may_contain(url)

    @pytest.mark.parametrize("summary", make_all_summaries())
    def test_remote_copy_converges_via_deltas(self, summary):
        remote = summary.export()
        for url in URLS[:15]:
            summary.add(url)
        remote.apply_delta(summary.drain_delta())
        for url in URLS[:15]:
            assert remote.may_contain(url)
        for url in URLS[:5]:
            summary.remove(url)
        remote.apply_delta(summary.drain_delta())
        for url in URLS[5:15]:
            assert remote.may_contain(url)

    @pytest.mark.parametrize("summary", make_all_summaries())
    def test_remove_unknown_raises(self, summary):
        with pytest.raises(ValueError):
            summary.remove("http://never.com/x")


class TestExactDirectory:
    def test_remove_clears_membership(self):
        summary = ExactDirectorySummary()
        summary.add(URLS[0])
        summary.remove(URLS[0])
        assert not summary.may_contain(URLS[0])
        assert len(summary) == 0

    def test_add_remove_within_one_delta_cancels(self):
        summary = ExactDirectorySummary()
        summary.add(URLS[0])
        summary.remove(URLS[0])
        delta = summary.drain_delta()
        assert delta.is_empty()

    def test_duplicate_add_is_noop(self):
        summary = ExactDirectorySummary()
        summary.add(URLS[0])
        summary.add(URLS[0])
        assert len(summary) == 1
        assert summary.drain_delta().change_count == 1

    def test_sizes_are_16_bytes_per_url(self):
        summary = ExactDirectorySummary()
        for url in URLS:
            summary.add(url)
        assert summary.size_bytes() == 30 * 16
        assert summary.remote_size_bytes() == 30 * 16
        assert summary.export().size_bytes() == 30 * 16


class TestServerName:
    def test_collapses_urls_to_servers(self):
        summary = ServerNameSummary()
        summary.add("http://a.com/1")
        summary.add("http://a.com/2")
        assert len(summary) == 1
        # Any URL on that server now "may be" present: the
        # representation's inherent false hits.
        assert summary.may_contain("http://a.com/unrelated")

    def test_refcounting_keeps_name_until_last_url_leaves(self):
        summary = ServerNameSummary()
        summary.add("http://a.com/1")
        summary.add("http://a.com/2")
        summary.remove("http://a.com/1")
        assert summary.may_contain("http://a.com/2")
        summary.remove("http://a.com/2")
        assert not summary.may_contain("http://a.com/2")

    def test_delta_only_on_first_and_last(self):
        summary = ServerNameSummary()
        summary.add("http://a.com/1")
        assert summary.drain_delta().change_count == 1
        summary.add("http://a.com/2")
        assert summary.drain_delta().change_count == 0
        summary.remove("http://a.com/1")
        assert summary.drain_delta().change_count == 0
        summary.remove("http://a.com/2")
        assert summary.drain_delta().change_count == 1

    def test_ports_are_distinct_servers(self):
        summary = ServerNameSummary()
        summary.add("http://a.com:8080/1")
        assert not summary.may_contain("http://a.com/1")


class TestBloomSummary:
    def test_requires_bloom_kind(self):
        with pytest.raises(ConfigurationError):
            BloomSummary(100, SummaryConfig(kind="server-name"))

    def test_sizing_follows_load_factor(self):
        summary = BloomSummary(
            1000, SummaryConfig(kind="bloom", load_factor=8)
        )
        assert summary.num_bits == 8000
        assert summary.remote_size_bytes() == 1000
        # Local adds 4-bit counters: half a byte per bit.
        assert summary.size_bytes() == 1000 + 4000

    def test_len_is_net_keys(self):
        summary = BloomSummary(100, SummaryConfig(kind="bloom"))
        summary.add(URLS[0])
        summary.add(URLS[1])
        summary.remove(URLS[0])
        assert len(summary) == 1


class TestFactories:
    def test_expected_documents_default_divisor(self):
        assert expected_documents_for_cache(8 * 2**30) == 2**30 // 8192 * 8
        assert (
            expected_documents_for_cache(80 * 1024)
            == 80 * 1024 // AVERAGE_DOCUMENT_SIZE
        )

    def test_expected_documents_custom_doc_size(self):
        assert expected_documents_for_cache(100_000, doc_size=1000) == 100

    def test_expected_documents_minimum_one(self):
        assert expected_documents_for_cache(10) == 1

    def test_expected_documents_validation(self):
        with pytest.raises(ConfigurationError):
            expected_documents_for_cache(0)
        with pytest.raises(ConfigurationError):
            expected_documents_for_cache(100, doc_size=0)

    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("exact-directory", ExactDirectorySummary),
            ("server-name", ServerNameSummary),
            ("bloom", BloomSummary),
        ],
    )
    def test_make_local_summary_dispatch(self, kind, cls):
        summary = make_local_summary(
            SummaryConfig(kind=kind), 1024 * 1024
        )
        assert isinstance(summary, cls)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(URLS),
            st.booleans(),
        ),
        max_size=120,
    ),
    st.sampled_from(["exact-directory", "server-name", "bloom"]),
)
@settings(max_examples=40, deadline=None)
def test_delta_sync_property(ops, kind):
    """For any op sequence and any representation, a remote copy kept in
    sync via deltas answers exactly like a fresh export."""
    summary = make_local_summary(SummaryConfig(kind=kind), 512 * 1024)
    remote = summary.export()
    live = {}
    for url, is_add in ops:
        if is_add:
            if live.get(url, 0) == 0:
                summary.add(url)
            live[url] = 1
        elif live.get(url, 0) == 1:
            summary.remove(url)
            live[url] = 0
    remote.apply_delta(summary.drain_delta())
    fresh = summary.export()
    for url in URLS:
        assert remote.may_contain(url) == fresh.may_contain(url)
