"""Tests for the MD5-slice and polynomial hash families."""

from __future__ import annotations

import hashlib
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    MD5HashFamily,
    PolynomialHashFamily,
    md5_digest,
)
from repro.errors import ConfigurationError


class TestMd5Digest:
    def test_matches_hashlib(self):
        url = "http://example.com/index.html"
        assert md5_digest(url) == hashlib.md5(url.encode()).digest()

    def test_accepts_bytes(self):
        assert md5_digest(b"abc") == hashlib.md5(b"abc").digest()

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            md5_digest(42)  # type: ignore[arg-type]


class TestMD5HashFamily:
    def test_default_spec_matches_paper(self):
        family = MD5HashFamily()
        assert family.spec() == (4, 32)

    def test_hashes_are_deterministic(self):
        family = MD5HashFamily()
        url = "http://example.com/a"
        assert family.hashes(url, 1000) == family.hashes(url, 1000)

    def test_hash_count_and_range(self):
        family = MD5HashFamily(num_functions=6, function_bits=16)
        positions = family.hashes("http://x.com/y", 977)
        assert len(positions) == 6
        assert all(0 <= p < 977 for p in positions)

    def test_slices_come_from_md5_of_key(self):
        # With 32-bit slices and a table of 2**32, the positions are the
        # raw little-position slices of the MD5 digest stream.
        family = MD5HashFamily(num_functions=4, function_bits=32)
        url = "http://example.com/"
        digest = int.from_bytes(hashlib.md5(url.encode()).digest(), "big")
        expected = tuple(
            (digest >> (32 * i)) & 0xFFFFFFFF for i in range(4)
        )
        assert family.hashes(url, 1 << 32) == expected

    def test_more_than_128_bits_uses_concatenated_url(self):
        # 8 functions x 32 bits = 256 bits: the second 128 bits must come
        # from MD5(url + url), per Section VI-A.
        family = MD5HashFamily(num_functions=8, function_bits=32)
        url = "http://example.com/"
        first = int.from_bytes(hashlib.md5(url.encode()).digest(), "big")
        second = int.from_bytes(
            hashlib.md5((url + url).encode()).digest(), "big"
        )
        stream = first | (second << 128)
        expected = tuple(
            (stream >> (32 * i)) & 0xFFFFFFFF for i in range(8)
        )
        assert family.hashes(url, 1 << 32) == expected

    def test_spec_roundtrip(self):
        family = MD5HashFamily(num_functions=7, function_bits=24)
        clone = MD5HashFamily.from_spec(*family.spec())
        assert clone == family
        assert hash(clone) == hash(family)

    def test_equality_with_other_types(self):
        assert MD5HashFamily() != object()

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_bad_num_functions(self, bad):
        with pytest.raises(ConfigurationError):
            MD5HashFamily(num_functions=bad)

    @pytest.mark.parametrize("bad", [0, 65])
    def test_rejects_bad_function_bits(self, bad):
        with pytest.raises(ConfigurationError):
            MD5HashFamily(function_bits=bad)

    def test_rejects_bad_table_size(self):
        with pytest.raises(ConfigurationError):
            MD5HashFamily().hashes("x", 0)

    def test_distribution_is_roughly_uniform(self):
        # 4000 keys x 4 positions over 64 buckets: each bucket expects
        # 250 hits; all buckets should land within a generous band.
        family = MD5HashFamily()
        counts = Counter()
        for i in range(4000):
            for p in family.hashes(f"http://s{i}.com/d{i}", 64):
                counts[p] += 1
        assert len(counts) == 64
        assert min(counts.values()) > 150
        assert max(counts.values()) < 370

    @given(st.text(min_size=1, max_size=100), st.integers(1, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_positions_always_in_range(self, key, table_size):
        positions = MD5HashFamily().hashes(key, table_size)
        assert all(0 <= p < table_size for p in positions)


class TestPolynomialHashFamily:
    def test_deterministic_and_in_range(self):
        family = PolynomialHashFamily()
        p1 = family.hashes("http://a.com/b", 509)
        p2 = family.hashes("http://a.com/b", 509)
        assert p1 == p2
        assert all(0 <= p < 509 for p in p1)

    def test_num_functions(self):
        assert len(PolynomialHashFamily(6).hashes("x", 100)) == 6

    def test_distinct_keys_rarely_collide_fully(self):
        family = PolynomialHashFamily()
        seen = set()
        for i in range(2000):
            seen.add(family.hashes(f"key-{i}", 1 << 30))
        assert len(seen) == 2000

    def test_rejects_too_many_functions(self):
        with pytest.raises(ConfigurationError):
            PolynomialHashFamily(99)

    def test_rejects_bad_table_size(self):
        with pytest.raises(ConfigurationError):
            PolynomialHashFamily().hashes("x", -1)

    def test_empty_vs_nul_key_differ(self):
        family = PolynomialHashFamily()
        assert family.hashes("", 1 << 20) != family.hashes("\x00", 1 << 20)


class TestHashesFromDigest:
    def test_matches_hashes_for_default_family(self):
        family = MD5HashFamily()  # 4 x 32 = exactly 128 stream bits
        url = "http://www.example.com/page"
        digest = hashlib.md5(url.encode()).digest()
        assert family.hashes_from_digest(digest, 12_345) == family.hashes(
            url, 12_345
        )

    def test_wide_family_falls_back_to_key(self):
        family = MD5HashFamily(num_functions=4, function_bits=50)
        url = "http://www.example.com/page"
        digest = hashlib.md5(url.encode()).digest()
        assert family.hashes_from_digest(
            digest, 99_991, key=url
        ) == family.hashes(url, 99_991)

    def test_wide_family_without_key_rejected(self):
        family = MD5HashFamily(num_functions=4, function_bits=50)
        with pytest.raises(ConfigurationError):
            family.hashes_from_digest(b"\x00" * 16, 99_991)

    def test_rejects_bad_table_size(self):
        with pytest.raises(ConfigurationError):
            MD5HashFamily().hashes_from_digest(b"\x00" * 16, 0)


class TestPolynomialSeed:
    def test_default_seed_keeps_historical_points(self):
        url = "http://a.com/b"
        assert PolynomialHashFamily(4).hashes(
            url, 10_007
        ) == PolynomialHashFamily(4, seed=0).hashes(url, 10_007)

    def test_same_seed_same_positions(self):
        a = PolynomialHashFamily(4, seed=42)
        b = PolynomialHashFamily(4, seed=42)
        assert a.hashes("http://a.com/b", 10_007) == b.hashes(
            "http://a.com/b", 10_007
        )

    def test_different_seeds_differ(self):
        a = PolynomialHashFamily(4, seed=42)
        b = PolynomialHashFamily(4, seed=43)
        assert a.hashes("http://a.com/b", 1 << 30) != b.hashes(
            "http://a.com/b", 1 << 30
        )

    def test_seed_allows_many_functions(self):
        family = PolynomialHashFamily(20, seed=7)
        positions = family.hashes("x", 1 << 20)
        assert len(positions) == 20

    def test_seed_in_repr(self):
        assert "seed=9" in repr(PolynomialHashFamily(4, seed=9))
