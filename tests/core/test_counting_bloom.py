"""Tests for the counting Bloom filter (the paper's contribution)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting_bloom import CountingBloomFilter
from repro.errors import ConfigurationError


class TestAddRemove:
    def test_add_then_contains(self):
        cbf = CountingBloomFilter(1024)
        cbf.add("http://a.com/x")
        assert cbf.may_contain("http://a.com/x")
        assert "http://a.com/x" in cbf

    def test_remove_restores_emptiness(self):
        cbf = CountingBloomFilter(1024)
        cbf.add("http://a.com/x")
        cbf.remove("http://a.com/x")
        assert not cbf.may_contain("http://a.com/x")
        assert cbf.fill_ratio() == 0.0
        assert cbf.keys_added == 0

    def test_overlapping_keys_survive_removal(self):
        # Deleting one key must not delete another that shares bits:
        # this is exactly what the counters buy over a plain filter.
        cbf = CountingBloomFilter(64)  # tiny: collisions guaranteed
        keys = [f"http://s{i}.com/d" for i in range(20)]
        for key in keys:
            cbf.add(key)
        cbf.remove(keys[0])
        assert all(cbf.may_contain(k) for k in keys[1:])

    def test_remove_unknown_key_raises_and_leaves_state(self):
        cbf = CountingBloomFilter(1024)
        cbf.add("http://a.com/x")
        before = cbf.snapshot()
        with pytest.raises(ValueError):
            cbf.remove("http://never-added.com/y")
        assert cbf.snapshot() == before

    def test_keys_added_tracks_net_count(self):
        cbf = CountingBloomFilter(1024)
        for i in range(5):
            cbf.add(f"u{i}")
        cbf.remove("u0")
        assert cbf.keys_added == 4

    def test_for_capacity(self):
        cbf = CountingBloomFilter.for_capacity(100, load_factor=16)
        assert cbf.num_bits == 1600

    def test_for_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            CountingBloomFilter.for_capacity(0)
        with pytest.raises(ConfigurationError):
            CountingBloomFilter.for_capacity(10, load_factor=0)


class TestDeltaFlips:
    def test_add_records_set_flips(self):
        cbf = CountingBloomFilter(1 << 16)
        cbf.add("http://a.com/x")
        flips = cbf.drain_flips()
        assert flips
        assert all(value is True for _idx, value in flips)

    def test_add_remove_cancels_out(self):
        cbf = CountingBloomFilter(1 << 16)
        cbf.add("http://a.com/x")
        cbf.remove("http://a.com/x")
        assert cbf.drain_flips() == []

    def test_drain_clears_pending(self):
        cbf = CountingBloomFilter(1 << 16)
        cbf.add("u1")
        cbf.drain_flips()
        assert cbf.pending_flip_count == 0
        assert cbf.drain_flips() == []

    def test_peek_does_not_clear(self):
        cbf = CountingBloomFilter(1 << 16)
        cbf.add("u1")
        first = cbf.peek_flips()
        second = cbf.peek_flips()
        assert first == second != []

    def test_flips_replay_onto_snapshot(self):
        """Applying drained flips to an old snapshot reproduces the
        current filter -- the core correctness property of DIRUPDATE."""
        cbf = CountingBloomFilter(2048)
        for i in range(50):
            cbf.add(f"http://x{i}.com/a")
        shipped = cbf.snapshot()
        cbf.drain_flips()

        for i in range(50, 80):
            cbf.add(f"http://x{i}.com/a")
        for i in range(0, 20):
            cbf.remove(f"http://x{i}.com/a")
        shipped.apply_flips(cbf.drain_flips())
        assert shipped == cbf.snapshot()

    def test_shared_bit_not_flipped_while_still_referenced(self):
        # Two keys sharing a bit: removing one key must not emit a clear
        # flip for the shared bit.
        cbf = CountingBloomFilter(32)
        keys = [f"k{i}" for i in range(10)]
        for key in keys:
            cbf.add(key)
        cbf.drain_flips()
        cbf.remove(keys[0])
        shipped = cbf.snapshot()
        for idx, value in cbf.peek_flips():
            if not value:
                assert cbf.counters.get(idx) == 0


class TestSaturation:
    def test_counter_saturates_and_sticks(self):
        cbf = CountingBloomFilter(8, counter_width=2)  # max count 3
        # Hammer the same key so its counters exceed 3.
        for i in range(6):
            cbf.add("same-key")
        assert cbf.counters.saturation_events > 0
        # Paper rule: saturated counters stay at max through deletions,
        # so membership survives more removals than additions would
        # normally allow.
        for i in range(6):
            cbf.remove("same-key")
        assert cbf.may_contain("same-key")

    def test_four_bit_default(self):
        cbf = CountingBloomFilter(128)
        assert cbf.counters.width == 4


class TestMemoryAccounting:
    def test_local_includes_counters(self):
        cbf = CountingBloomFilter(8000, counter_width=4)
        assert cbf.remote_size_bytes() == 1000
        assert cbf.size_bytes() == 1000 + 4000

    def test_counter_width_changes_local_size_only(self):
        narrow = CountingBloomFilter(8000, counter_width=2)
        wide = CountingBloomFilter(8000, counter_width=8)
        assert narrow.remote_size_bytes() == wide.remote_size_bytes()
        assert narrow.size_bytes() < wide.size_bytes()


@given(
    st.lists(
        st.tuples(st.sampled_from([f"url{i}" for i in range(30)]), st.booleans()),
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_random_ops_match_multiset_model(ops):
    """Under random adds/removes, the filter never loses a present key,
    and the delta stream keeps a peer snapshot in sync."""
    cbf = CountingBloomFilter(4096)
    shipped = cbf.snapshot()
    present: dict = {}
    for url, is_add in ops:
        if is_add:
            cbf.add(url)
            present[url] = present.get(url, 0) + 1
        elif present.get(url, 0) > 0:
            cbf.remove(url)
            present[url] -= 1
        # Periodically sync the peer copy.
        if len(cbf.peek_flips()) > 16:
            shipped.apply_flips(cbf.drain_flips())
    for url, count in present.items():
        if count > 0:
            assert cbf.may_contain(url)
    shipped.apply_flips(cbf.drain_flips())
    assert shipped == cbf.snapshot()


class TestPersistence:
    """Warm-restart serialization (counters survive a reboot)."""

    def make_filter(self, width: int = 4) -> CountingBloomFilter:
        cbf = CountingBloomFilter.for_capacity(
            400, load_factor=8, counter_width=width
        )
        for i in range(250):
            cbf.add(f"http://persist{i}.net/doc")
        for i in range(40):
            cbf.remove(f"http://persist{i}.net/doc")
        return cbf

    def test_roundtrip_preserves_state(self):
        cbf = self.make_filter()
        clone = CountingBloomFilter.from_bytes(cbf.to_bytes())
        assert clone.snapshot() == cbf.snapshot()
        assert clone.keys_added == cbf.keys_added
        assert clone.hash_family == cbf.hash_family
        assert clone.counters.width == cbf.counters.width

    def test_deletions_work_after_restart(self):
        cbf = self.make_filter()
        clone = CountingBloomFilter.from_bytes(cbf.to_bytes())
        clone.remove("http://persist100.net/doc")
        # A cold rebuild of a plain filter could not have done this.
        cbf.remove("http://persist100.net/doc")
        assert clone.snapshot() == cbf.snapshot()

    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_all_counter_widths(self, width):
        cbf = self.make_filter(width=width)
        clone = CountingBloomFilter.from_bytes(cbf.to_bytes())
        assert clone.snapshot() == cbf.snapshot()

    def test_bad_magic_rejected(self):
        from repro.errors import ProtocolError

        data = bytearray(self.make_filter().to_bytes())
        data[0] = ord("X")
        with pytest.raises(ProtocolError, match="magic"):
            CountingBloomFilter.from_bytes(bytes(data))

    def test_bad_version_rejected(self):
        from repro.errors import ProtocolError

        data = bytearray(self.make_filter().to_bytes())
        data[4] = 99
        with pytest.raises(ProtocolError, match="version"):
            CountingBloomFilter.from_bytes(bytes(data))

    def test_truncated_payload_rejected(self):
        from repro.errors import ProtocolError

        data = self.make_filter().to_bytes()
        with pytest.raises(ProtocolError):
            CountingBloomFilter.from_bytes(data[: len(data) // 2])
        with pytest.raises(ProtocolError):
            CountingBloomFilter.from_bytes(b"\x01")

    def test_pending_flips_not_persisted(self):
        cbf = self.make_filter()
        assert cbf.pending_flip_count > 0
        clone = CountingBloomFilter.from_bytes(cbf.to_bytes())
        # A restarted filter starts with a clean delta (peers should be
        # resynced with a full digest after a restart).
        assert clone.pending_flip_count == 0


class TestBatchOperations:
    def test_add_many_equals_repeated_add(self):
        urls = [f"http://batch{i}.net/doc" for i in range(60)]
        one_by_one = CountingBloomFilter(2048)
        for url in urls:
            one_by_one.add(url)
        batched = CountingBloomFilter(2048)
        batched.add_many(urls)
        assert batched.snapshot() == one_by_one.snapshot()
        assert batched.keys_added == one_by_one.keys_added
        assert batched.drain_flips() == one_by_one.drain_flips()

    def test_add_at_precomputed_positions_equals_add(self):
        url = "http://precomputed.org/x"
        direct = CountingBloomFilter(2048)
        direct.add(url)
        via_positions = CountingBloomFilter(2048)
        positions = via_positions.hash_family.hashes(
            url, via_positions.num_bits
        )
        via_positions.add_at(positions)
        assert via_positions.snapshot() == direct.snapshot()
        assert via_positions.keys_added == direct.keys_added
