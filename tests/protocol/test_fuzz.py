"""Property/fuzz tests for the wire protocol.

The decoder faces an open UDP port: arbitrary bytes must produce either
a valid message or :class:`~repro.errors.ProtocolError` -- never any
other exception -- and well-formed messages must round-trip exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.protocol.wire import (
    DirUpdate,
    IcpQuery,
    decode_flip,
    decode_message,
    encode_flip,
)

urls = st.text(
    alphabet=st.characters(
        blacklist_characters="\x00", blacklist_categories=("Cs",)
    ),
    min_size=1,
    max_size=200,
)


@given(st.binary(max_size=300))
@settings(max_examples=300, deadline=None)
def test_decoder_never_raises_unexpected(data):
    try:
        decode_message(data)
    except ProtocolError:
        pass  # the only acceptable failure mode


@given(
    urls,
    st.integers(0, 0xFFFFFFFF),
    st.integers(0, 0xFFFFFFFF),
)
@settings(max_examples=100, deadline=None)
def test_query_roundtrip(url, reqnum, requester):
    query = IcpQuery(
        url=url, request_number=reqnum, requester=requester
    )
    assert decode_message(query.encode()) == query


@given(
    st.lists(
        st.tuples(st.integers(0, 9999), st.booleans()),
        max_size=64,
    ),
    st.integers(1, 16),
    st.integers(1, 64),
)
@settings(max_examples=100, deadline=None)
def test_dirupdate_roundtrip(flips, function_num, function_bits):
    update = DirUpdate(
        function_num=function_num,
        function_bits=function_bits,
        bit_array_size=10_000,
        flips=tuple(flips),
    )
    assert decode_message(update.encode()) == update


@given(st.integers(0, (1 << 31) - 1), st.booleans())
@settings(max_examples=200, deadline=None)
def test_flip_record_roundtrip(index, value):
    assert decode_flip(encode_flip(index, value)) == (index, value)


def test_truncated_valid_messages_rejected_cleanly():
    """Every truncation of a valid message fails with ProtocolError."""
    query = IcpQuery(url="http://fuzz.example/x", request_number=1)
    wire = query.encode()
    for cut in range(len(wire)):
        try:
            decode_message(wire[:cut])
        except ProtocolError:
            continue
        raise AssertionError(f"truncation at {cut} bytes was accepted")
