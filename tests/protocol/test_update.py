"""Tests for update batching, application, and digest reassembly."""

from __future__ import annotations

import random

import pytest

from repro.core.bloom import BloomFilter
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import MD5HashFamily
from repro.errors import ProtocolError
from repro.protocol.update import (
    DigestAssembler,
    apply_dir_update,
    build_digest_messages,
    build_dir_update_messages,
)
from repro.protocol.wire import decode_message


def filled_filter(num_keys: int = 300) -> CountingBloomFilter:
    cbf = CountingBloomFilter.for_capacity(max(num_keys, 1), load_factor=8)
    for i in range(num_keys):
        cbf.add(f"http://server{i % 37}.com/doc{i}")
    return cbf


class TestDirUpdateBatching:
    def test_messages_fit_mtu(self):
        cbf = filled_filter()
        flips = cbf.drain_flips()
        messages = build_dir_update_messages(
            flips, cbf.hash_family, cbf.num_bits, mtu=400
        )
        assert all(len(m.encode()) <= 400 for m in messages)
        assert sum(len(m.flips) for m in messages) == len(flips)

    def test_every_message_carries_full_header(self):
        # "every update message carries the header, which specifies the
        # hash functions, so that receivers can verify the information."
        cbf = filled_filter()
        messages = build_dir_update_messages(
            cbf.drain_flips(), cbf.hash_family, cbf.num_bits, mtu=300
        )
        assert len(messages) > 1
        for m in messages:
            assert (m.function_num, m.function_bits) == cbf.hash_family.spec()
            assert m.bit_array_size == cbf.num_bits

    def test_applying_all_messages_syncs_peer(self):
        cbf = filled_filter()
        messages = build_dir_update_messages(
            cbf.drain_flips(), cbf.hash_family, cbf.num_bits, mtu=500
        )
        peer = BloomFilter(cbf.num_bits, hash_family=cbf.hash_family)
        for m in messages:
            apply_dir_update(peer, decode_message(m.encode()))
        assert peer == cbf.snapshot()

    def test_replay_and_reorder_are_harmless(self):
        """Absolute records make application order- and duplicate-proof
        (within one batch, where each bit appears once)."""
        cbf = filled_filter()
        messages = build_dir_update_messages(
            cbf.drain_flips(), cbf.hash_family, cbf.num_bits, mtu=300
        )
        peer = BloomFilter(cbf.num_bits, hash_family=cbf.hash_family)
        shuffled = list(messages) * 2
        random.Random(3).shuffle(shuffled)
        for m in shuffled:
            apply_dir_update(peer, m)
        assert peer == cbf.snapshot()

    def test_loss_affects_only_lost_bits(self):
        """Dropping one update message must not corrupt bits carried by
        other messages -- the paper's loss-tolerance design goal."""
        cbf = filled_filter()
        messages = build_dir_update_messages(
            cbf.drain_flips(), cbf.hash_family, cbf.num_bits, mtu=300
        )
        assert len(messages) >= 3
        peer = BloomFilter(cbf.num_bits, hash_family=cbf.hash_family)
        lost = messages[1]
        for m in messages:
            if m is not lost:
                apply_dir_update(peer, m)
        expected = cbf.snapshot()
        lost_indices = {idx for idx, _v in lost.flips}
        for i in range(cbf.num_bits):
            if i not in lost_indices:
                assert peer.bits.get(i) == expected.bits.get(i)

    def test_mtu_too_small(self):
        cbf = filled_filter(10)
        with pytest.raises(ProtocolError, match="mtu"):
            build_dir_update_messages(
                cbf.drain_flips(), cbf.hash_family, cbf.num_bits, mtu=30
            )

    def test_empty_flips_yield_no_messages(self):
        cbf = filled_filter(5)
        cbf.drain_flips()
        assert (
            build_dir_update_messages(
                [], cbf.hash_family, cbf.num_bits
            )
            == []
        )


class TestApplyGeometryCheck:
    def test_bit_count_mismatch(self):
        cbf = filled_filter(20)
        messages = build_dir_update_messages(
            cbf.drain_flips(), cbf.hash_family, cbf.num_bits
        )
        wrong = BloomFilter(cbf.num_bits * 2, hash_family=cbf.hash_family)
        with pytest.raises(ProtocolError, match="geometry"):
            apply_dir_update(wrong, messages[0])

    def test_hash_spec_mismatch(self):
        cbf = filled_filter(20)
        messages = build_dir_update_messages(
            cbf.drain_flips(), cbf.hash_family, cbf.num_bits
        )
        wrong = BloomFilter(
            cbf.num_bits, hash_family=MD5HashFamily(num_functions=5)
        )
        with pytest.raises(ProtocolError, match="geometry"):
            apply_dir_update(wrong, messages[0])


class TestDigestTransfer:
    def test_chunking_and_reassembly(self):
        cbf = filled_filter(500)
        chunks = build_digest_messages(cbf, mtu=256)
        assert len(chunks) > 1
        assert all(len(c.encode()) <= 256 for c in chunks)
        assembler = DigestAssembler()
        result = None
        for chunk in chunks:
            result = assembler.add(decode_message(chunk.encode()))
        assert result == cbf.snapshot()

    def test_out_of_order_and_duplicate_chunks(self):
        cbf = filled_filter(500)
        chunks = build_digest_messages(cbf, mtu=256)
        assembler = DigestAssembler()
        shuffled = list(chunks) + [chunks[0]]
        random.Random(11).shuffle(shuffled)
        results = [assembler.add(c) for c in shuffled]
        completed = [r for r in results if r is not None]
        assert completed and completed[-1] == cbf.snapshot()

    def test_incomplete_returns_none(self):
        cbf = filled_filter(500)
        chunks = build_digest_messages(cbf, mtu=256)
        assembler = DigestAssembler()
        assert assembler.add(chunks[0]) is None

    def test_geometry_change_restarts_assembly(self):
        big = filled_filter(500)
        small = filled_filter(50)
        big_chunks = build_digest_messages(big, mtu=256)
        small_chunks = build_digest_messages(small, mtu=4096)
        assembler = DigestAssembler()
        assembler.add(big_chunks[0])
        # A chunk with different geometry discards the partial state.
        result = assembler.add(small_chunks[0])
        assert result == small.snapshot()

    def test_assembler_resets_after_completion(self):
        cbf = filled_filter(100)
        chunks = build_digest_messages(cbf, mtu=4096)
        assembler = DigestAssembler()
        first = assembler.add(chunks[0])
        second = assembler.add(chunks[0])
        assert first == second == cbf.snapshot()

    def test_mtu_too_small(self):
        with pytest.raises(ProtocolError, match="mtu"):
            build_digest_messages(filled_filter(10), mtu=20)
