"""Tests for the ICP v2 wire format and summary cache extensions."""

from __future__ import annotations

import struct

import pytest

from repro.errors import ProtocolError
from repro.protocol.wire import (
    ICP_HEADER_SIZE,
    ICP_VERSION,
    MAX_BIT_INDEX,
    DigestChunk,
    DirUpdate,
    IcpHit,
    IcpMiss,
    IcpMissNoFetch,
    IcpQuery,
    Opcode,
    decode_flip,
    decode_message,
    encode_flip,
)


class TestHeader:
    def test_header_is_20_bytes(self):
        data = IcpHit(url="u").encode()
        assert len(data) == ICP_HEADER_SIZE + len("u") + 1

    def test_version_and_opcode_fields(self):
        data = IcpQuery(url="u", request_number=9).encode()
        opcode, version, length, reqnum = struct.unpack_from("!BBHI", data)
        assert opcode == Opcode.QUERY
        assert version == ICP_VERSION
        assert length == len(data)
        assert reqnum == 9

    def test_opcode_values_match_rfc2186(self):
        assert Opcode.QUERY == 1
        assert Opcode.HIT == 2
        assert Opcode.MISS == 3
        assert Opcode.MISS_NOFETCH == 21
        assert Opcode.HIT_OBJ == 23


class TestRoundTrips:
    @pytest.mark.parametrize(
        "message",
        [
            IcpQuery(
                url="http://example.com/a?b=c",
                request_number=1234,
                requester=0x0A0B0C0D,
            ),
            IcpHit(url="http://example.com/x", request_number=7),
            IcpMiss(url="http://example.com/x", request_number=8),
            IcpMissNoFetch(url="http://example.com/x", request_number=9),
            DirUpdate(
                function_num=4,
                function_bits=32,
                bit_array_size=1_000_000,
                flips=((0, True), (999_999, False), (17, True)),
                request_number=42,
            ),
            DigestChunk(
                function_num=4,
                function_bits=32,
                bit_array_size=80,
                byte_offset=4,
                total_bytes=10,
                payload=b"\xde\xad\xbe\xef",
            ),
        ],
    )
    def test_encode_decode_identity(self, message):
        decoded = decode_message(message.encode())
        assert decoded == message

    def test_unicode_url(self):
        query = IcpQuery(url="http://example.com/påge")
        assert decode_message(query.encode()) == query


class TestFlipRecords:
    def test_set_record_has_msb(self):
        record = encode_flip(5, True)
        assert record >> 31 == 1
        assert decode_flip(record) == (5, True)

    def test_clear_record(self):
        record = encode_flip(5, False)
        assert record >> 31 == 0
        assert decode_flip(record) == (5, False)

    def test_max_index(self):
        assert decode_flip(encode_flip(MAX_BIT_INDEX, True)) == (
            MAX_BIT_INDEX,
            True,
        )

    def test_index_overflow_raises(self):
        with pytest.raises(ProtocolError):
            encode_flip(MAX_BIT_INDEX + 1, True)


class TestValidation:
    def test_short_datagram(self):
        with pytest.raises(ProtocolError, match="shorter"):
            decode_message(b"\x01\x02")

    def test_wrong_version(self):
        data = bytearray(IcpHit(url="u").encode())
        data[1] = 3
        with pytest.raises(ProtocolError, match="version"):
            decode_message(bytes(data))

    def test_length_mismatch(self):
        data = IcpHit(url="u").encode() + b"extra"
        with pytest.raises(ProtocolError, match="length"):
            decode_message(data)

    def test_unknown_opcode(self):
        data = bytearray(IcpHit(url="u").encode())
        data[0] = 99
        with pytest.raises(ProtocolError, match="opcode"):
            decode_message(bytes(data))

    def test_url_must_be_nul_terminated(self):
        data = bytearray(IcpHit(url="u").encode())
        data[-1] = ord("x")  # overwrite the terminator
        with pytest.raises(ProtocolError, match="NUL"):
            decode_message(bytes(data))

    def test_url_with_nul_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            IcpHit(url="bad\x00url").encode()

    def test_dirupdate_flip_outside_array(self):
        with pytest.raises(ProtocolError, match="outside"):
            DirUpdate(
                function_num=4,
                function_bits=32,
                bit_array_size=100,
                flips=((100, True),),
            )

    def test_dirupdate_size_limit(self):
        # "The design limits the hash table size to be less than
        # 2 billion."
        with pytest.raises(ProtocolError):
            DirUpdate(
                function_num=4,
                function_bits=32,
                bit_array_size=MAX_BIT_INDEX + 2,
            )

    def test_dirupdate_header_fields_validated(self):
        with pytest.raises(ProtocolError):
            DirUpdate(function_num=0, function_bits=32, bit_array_size=8)
        with pytest.raises(ProtocolError):
            DirUpdate(function_num=4, function_bits=0, bit_array_size=8)

    def test_dirupdate_record_count_mismatch(self):
        data = bytearray(
            DirUpdate(
                function_num=4,
                function_bits=32,
                bit_array_size=100,
                flips=((1, True),),
            ).encode()
        )
        # Claim two records while carrying one.
        struct.pack_into("!I", data, ICP_HEADER_SIZE + 8, 2)
        with pytest.raises(ProtocolError, match="records"):
            decode_message(bytes(data))

    def test_digest_chunk_overrun(self):
        with pytest.raises(ProtocolError, match="overruns"):
            DigestChunk(
                function_num=4,
                function_bits=32,
                bit_array_size=80,
                byte_offset=8,
                total_bytes=10,
                payload=b"12345",
            )

    def test_digest_total_consistency(self):
        with pytest.raises(ProtocolError, match="inconsistent"):
            DigestChunk(
                function_num=4,
                function_bits=32,
                bit_array_size=80,
                byte_offset=0,
                total_bytes=11,
                payload=b"",
            )

    def test_oversized_message_rejected(self):
        with pytest.raises(ProtocolError, match="16-bit"):
            DirUpdate(
                function_num=4,
                function_bits=32,
                bit_array_size=1 << 30,
                flips=tuple((i, True) for i in range(20_000)),
            ).encode()


class TestWireSize:
    def test_dirupdate_wire_size(self):
        update = DirUpdate(
            function_num=4,
            function_bits=32,
            bit_array_size=1000,
            flips=((1, True), (2, False)),
        )
        assert update.wire_size() == len(update.encode())
        assert update.wire_size() == 20 + 12 + 8


class TestQueryTraceContext:
    """Trace context rides the QUERY header's Options / Option Data."""

    def test_round_trips_through_encode_decode(self):
        query = IcpQuery(
            url="http://example.com/doc",
            request_number=5,
            trace_id=0xDEADBEEF,
            parent_span=0x00C0FFEE,
        )
        decoded = decode_message(query.encode())
        assert decoded == query
        assert decoded.trace_id == 0xDEADBEEF
        assert decoded.parent_span == 0x00C0FFEE

    def test_travels_in_options_words(self):
        data = IcpQuery(
            url="u",
            request_number=1,
            trace_id=0xDEADBEEF,
            parent_span=0x00C0FFEE,
        ).encode()
        fields = struct.unpack_from("!BBHIIII", data)
        assert fields[4] == 0xDEADBEEF  # Options
        assert fields[5] == 0x00C0FFEE  # Option Data

    def test_zero_context_is_byte_identical_to_legacy(self):
        legacy = IcpQuery(url="http://e/x", request_number=3).encode()
        explicit = IcpQuery(
            url="http://e/x", request_number=3, trace_id=0, parent_span=0
        ).encode()
        assert legacy == explicit
        fields = struct.unpack_from("!BBHIIII", legacy)
        assert fields[4] == 0
        assert fields[5] == 0
        assert decode_message(legacy).trace_id == 0
