"""Tests for representation-tagged set-summary DIRUPDATEs.

The Options field of an ``ICP_OP_DIRUPDATE`` names the summary
representation; ids 1 (exact-directory) and 2 (server-name) carry
added/removed record batches instead of bit flips.  The decoder must
route on that id, reject unknown ids, and keep the legacy Bloom
encoding (Options = 0) byte-identical.
"""

from __future__ import annotations

import hashlib
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.protocol.update import build_set_update_messages
from repro.protocol.wire import (
    EXACT_RECORD_BYTES,
    ICP_HEADER_SIZE,
    REPR_BLOOM,
    REPR_EXACT,
    REPR_SERVER_NAME,
    SET_UPDATE_HEADER_SIZE,
    DirUpdate,
    Opcode,
    SetDirUpdate,
    decode_message,
)


def digest(url: str) -> bytes:
    return hashlib.md5(url.encode("utf-8")).digest()


def names(*values: str):
    return tuple(v.encode("utf-8") for v in values)


class TestRoundTrips:
    def test_exact_roundtrip(self):
        update = SetDirUpdate(
            representation=REPR_EXACT,
            added=(digest("a"), digest("b")),
            removed=(digest("c"),),
            request_number=41,
            sender=0x7F000001,
        )
        decoded = decode_message(update.encode())
        assert decoded == update

    def test_server_name_roundtrip(self):
        update = SetDirUpdate(
            representation=REPR_SERVER_NAME,
            added=names("www.cs.wisc.edu", "proxy.example.net"),
            removed=names("old.example.org"),
            request_number=9,
        )
        decoded = decode_message(update.encode())
        assert decoded == update

    def test_empty_batches_roundtrip(self):
        update = SetDirUpdate(representation=REPR_EXACT)
        assert decode_message(update.encode()) == update

    def test_options_field_carries_representation(self):
        for rep in (REPR_EXACT, REPR_SERVER_NAME):
            data = SetDirUpdate(representation=rep).encode()
            opcode, _v, _len, _req, options = struct.unpack_from(
                "!BBHII", data
            )
            assert opcode == Opcode.DIRUPDATE
            assert options == rep

    def test_legacy_bloom_options_stay_zero(self):
        data = DirUpdate(
            function_num=4,
            function_bits=14,
            bit_array_size=1 << 14,
            flips=((3, True),),
        ).encode()
        options = struct.unpack_from("!BBHII", data)[4]
        assert options == REPR_BLOOM == 0
        assert isinstance(decode_message(data), DirUpdate)

    def test_change_count(self):
        update = SetDirUpdate(
            representation=REPR_EXACT,
            added=(digest("a"),),
            removed=(digest("b"), digest("c")),
        )
        assert update.change_count == 3
        assert update.wire_size() == len(update.encode())


class TestValidation:
    def test_unknown_representation_id_rejected(self):
        data = bytearray(SetDirUpdate(representation=REPR_EXACT).encode())
        struct.pack_into("!I", data, 4 + 4, 7)  # Options field
        with pytest.raises(ProtocolError, match="representation"):
            decode_message(bytes(data))

    def test_exact_digest_must_be_16_bytes(self):
        with pytest.raises(ProtocolError):
            SetDirUpdate(
                representation=REPR_EXACT, added=(b"short",)
            )

    def test_server_name_record_length_limit(self):
        with pytest.raises(ProtocolError):
            SetDirUpdate(
                representation=REPR_SERVER_NAME,
                added=(b"x" * 0x10000,),
            )

    def test_invalid_representation_at_construction(self):
        with pytest.raises(ProtocolError):
            SetDirUpdate(representation=REPR_BLOOM)

    def test_truncated_records_rejected(self):
        data = SetDirUpdate(
            representation=REPR_EXACT, added=(digest("a"),)
        ).encode()
        truncated = data[:-4]
        # Fix up the ICP length header so only the payload is short.
        patched = bytearray(truncated)
        struct.pack_into("!H", patched, 2, len(truncated))
        with pytest.raises(ProtocolError):
            decode_message(bytes(patched))

    def test_count_mismatch_rejected(self):
        update = SetDirUpdate(
            representation=REPR_EXACT,
            added=(digest("a"), digest("b")),
        )
        data = bytearray(update.encode())
        # Claim three added records while carrying two.
        struct.pack_into("!I", data, ICP_HEADER_SIZE, 3)
        with pytest.raises(ProtocolError):
            decode_message(bytes(data))


class TestBatching:
    def test_messages_respect_mtu(self):
        added = tuple(digest(f"a{i}") for i in range(400))
        removed = tuple(digest(f"r{i}") for i in range(100))
        mtu = 512
        messages = build_set_update_messages(
            REPR_EXACT, added, removed, mtu=mtu
        )
        assert len(messages) > 1
        for message in messages:
            assert message.wire_size() <= mtu
        got_added = [r for m in messages for r in m.added]
        got_removed = [r for m in messages for r in m.removed]
        assert got_added == list(added)
        assert got_removed == list(removed)

    def test_variable_length_names_batch(self):
        added = names(*(f"server-{i:03d}.example.net" for i in range(80)))
        messages = build_set_update_messages(
            REPR_SERVER_NAME, added, (), mtu=256
        )
        assert len(messages) > 1
        assert [r for m in messages for r in m.added] == list(added)
        for message in messages:
            assert message.wire_size() <= 256

    def test_mtu_too_small_raises(self):
        floor = ICP_HEADER_SIZE + SET_UPDATE_HEADER_SIZE
        with pytest.raises(ProtocolError):
            build_set_update_messages(
                REPR_EXACT,
                (digest("a"),),
                (),
                mtu=floor + EXACT_RECORD_BYTES - 1,
            )

    def test_empty_delta_builds_no_messages(self):
        assert build_set_update_messages(REPR_EXACT, (), ()) == []


@given(
    st.lists(st.binary(min_size=16, max_size=16), max_size=40),
    st.lists(st.binary(min_size=16, max_size=16), max_size=40),
    st.integers(0, 0xFFFFFFFF),
)
@settings(max_examples=100, deadline=None)
def test_exact_fuzz_roundtrip(added, removed, reqnum):
    update = SetDirUpdate(
        representation=REPR_EXACT,
        added=tuple(added),
        removed=tuple(removed),
        request_number=reqnum,
    )
    assert decode_message(update.encode()) == update


@given(
    st.lists(
        st.text(min_size=1, max_size=60).map(
            lambda s: s.encode("utf-8")[:255]
        ),
        max_size=30,
    ).map(lambda records: tuple(r for r in records if r)),
    st.integers(0, 0xFFFFFFFF),
)
@settings(max_examples=100, deadline=None)
def test_server_name_fuzz_roundtrip(added, reqnum):
    update = SetDirUpdate(
        representation=REPR_SERVER_NAME,
        added=added,
        request_number=reqnum,
    )
    assert decode_message(update.encode()) == update
