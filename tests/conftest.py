"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.traces.model import Request, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

# Inert unless SC_SANITIZE=1: then every proxy a test builds registers
# with the process-wide interleaving sanitizer and this plugin fails
# any test that produced violations (the CI sanitizer-smoke job).
pytest_plugins = ("repro.sanitizer.pytest_plugin",)


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """A deterministic ~4000-request synthetic trace shared by tests."""
    return generate_trace(
        SyntheticTraceConfig(
            name="test-small",
            num_requests=4000,
            num_clients=32,
            num_documents=1500,
            mean_size=2048,
            max_size=128 * 1024,
            mod_probability=0.01,
            seed=99,
        )
    )


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-checkable 6-request trace over 2 clients and 3 documents."""
    return Trace(
        name="tiny",
        requests=[
            Request(0.0, 0, "http://a.com/1", 100, 0),
            Request(1.0, 1, "http://a.com/1", 100, 0),
            Request(2.0, 0, "http://b.com/2", 200, 0),
            Request(3.0, 1, "http://b.com/2", 200, 0),
            Request(4.0, 0, "http://a.com/1", 100, 0),
            Request(5.0, 1, "http://c.com/3", 300, 0),
        ],
    )
