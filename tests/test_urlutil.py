"""Tests for URL helpers."""

from __future__ import annotations

from repro.urlutil import make_url, server_of


class TestServerOf:
    def test_scheme_and_path_stripped(self):
        assert server_of("http://www.a.com/x/y?z=1") == "www.a.com"

    def test_case_folded(self):
        assert server_of("http://WWW.A.COM/x") == "www.a.com"

    def test_port_kept(self):
        assert server_of("http://a.com:8080/x") == "a.com:8080"

    def test_bare_host_path(self):
        assert server_of("a.com/x") == "a.com"

    def test_no_path(self):
        assert server_of("http://a.com") == "a.com"

    def test_https(self):
        assert server_of("https://secure.com/x") == "secure.com"


class TestMakeUrl:
    def test_shape(self):
        url = make_url(3, 42)
        assert url == "http://server3.example.com/doc/42"
        assert server_of(url) == "server3.example.com"

    def test_custom_domain(self):
        assert make_url(1, 2, domain="test.org").startswith(
            "http://server1.test.org/"
        )
