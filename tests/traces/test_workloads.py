"""Tests for the five Table-I-style workload presets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.traces.workloads import WORKLOAD_PRESETS, make_workload


class TestPresets:
    def test_all_five_paper_traces_present(self):
        assert set(WORKLOAD_PRESETS) == {
            "dec",
            "ucb",
            "upisa",
            "questnet",
            "nlanr",
        }

    def test_group_counts_match_paper(self):
        # "We set the number of groups in DEC, UCB and UPisa traces to
        # 16, 8, and 8"; Questnet has 12 child proxies; NLANR has 4.
        assert WORKLOAD_PRESETS["dec"].num_groups == 16
        assert WORKLOAD_PRESETS["ucb"].num_groups == 8
        assert WORKLOAD_PRESETS["upisa"].num_groups == 8
        assert WORKLOAD_PRESETS["questnet"].num_groups == 12
        assert WORKLOAD_PRESETS["nlanr"].num_groups == 4

    @pytest.mark.parametrize("name", sorted(WORKLOAD_PRESETS))
    def test_each_preset_generates(self, name):
        trace, groups = make_workload(name, scale=0.05)
        assert len(trace) > 0
        assert groups == WORKLOAD_PRESETS[name].num_groups
        # Every group receives at least one request (no idle proxies).
        seen = {r.client_id % groups for r in trace}
        assert seen == set(range(groups))

    def test_scale_grows_requests(self):
        small, _ = make_workload("upisa", scale=0.1)
        large, _ = make_workload("upisa", scale=0.2)
        assert len(large) == 2 * len(small)

    def test_scale_never_drops_clients_below_groups(self):
        trace, groups = make_workload("dec", scale=0.01)
        assert len({r.client_id for r in trace}) >= 1
        assert groups == 16

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            make_workload("aol")

    def test_case_insensitive(self):
        trace, _ = make_workload("UPisa", scale=0.05)
        assert len(trace) > 0


class TestWorkloadConfig:
    def test_matches_make_workload_geometry(self):
        from repro.traces.workloads import workload_config

        config, groups = workload_config("upisa", scale=0.5)
        trace, groups_made = make_workload("upisa", scale=0.5)
        assert groups == groups_made
        assert config.num_requests == len(trace)

    def test_num_requests_overrides_count_only(self):
        from repro.traces.workloads import workload_config

        base, _ = workload_config("nlanr")
        grown, _ = workload_config("nlanr", num_requests=123_456)
        assert grown.num_requests == 123_456
        assert grown.num_clients == base.num_clients
        assert grown.num_documents == base.num_documents

    def test_rejects_bad_num_requests(self):
        from repro.traces.workloads import workload_config

        with pytest.raises(ConfigurationError):
            workload_config("nlanr", num_requests=0)


class TestPackWorkload:
    def test_packed_file_replays_bit_exact(self, tmp_path):
        from repro.traces.binary import BinaryTraceReader
        from repro.traces.workloads import pack_workload

        path = str(tmp_path / "nlanr.sctr")
        records, groups = pack_workload("nlanr", path, scale=0.1)
        trace, groups_made = make_workload("nlanr", scale=0.1)
        assert (records, groups) == (len(trace), groups_made)
        with BinaryTraceReader(path) as reader:
            assert reader.name == "nlanr"
            assert list(reader) == trace.requests

    def test_num_requests_knob(self, tmp_path):
        from repro.traces.binary import BinaryTraceReader
        from repro.traces.workloads import pack_workload

        path = str(tmp_path / "short.sctr")
        records, _ = pack_workload("nlanr", path, num_requests=500)
        assert records == 500
        with BinaryTraceReader(path) as reader:
            assert len(reader) == 500
