"""Tests for the trace characterization toolkit."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.traces.analysis import (
    fit_zipf_alpha,
    group_overlap_matrix,
    interreference_percentiles,
    sharing_potential,
    size_statistics,
)
from repro.traces.model import Request, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


def zipf_only_config(alpha: float) -> SyntheticTraceConfig:
    """Popularity-only sampling: no recency or server locality."""
    return SyntheticTraceConfig(
        num_requests=30_000,
        num_clients=20,
        num_documents=5_000,
        zipf_alpha=alpha,
        locality_probability=0.0,
        server_locality=0.0,
        mod_probability=0.0,
        seed=17,
    )


class TestZipfFit:
    @pytest.mark.parametrize("alpha", [0.6, 0.9])
    def test_recovers_generator_exponent(self, alpha):
        trace = generate_trace(zipf_only_config(alpha))
        fitted = fit_zipf_alpha(trace)
        assert fitted == pytest.approx(alpha, abs=0.15)

    def test_orders_traces_by_skew(self):
        flat = fit_zipf_alpha(generate_trace(zipf_only_config(0.4)))
        skewed = fit_zipf_alpha(generate_trace(zipf_only_config(1.1)))
        assert skewed > flat + 0.3

    def test_needs_enough_documents(self):
        trace = Trace(requests=[Request(0.0, 0, "u", 1)])
        with pytest.raises(ConfigurationError):
            fit_zipf_alpha(trace)

    def test_head_fraction_validation(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            fit_zipf_alpha(tiny_trace, head_fraction=0.0)


class TestSizeStats:
    def test_hand_computed(self):
        trace = Trace(
            requests=[
                Request(float(i), 0, f"u{i}", size)
                for i, size in enumerate([100, 200, 300, 400, 1000])
            ]
        )
        stats = size_statistics(trace)
        assert stats.count == 5
        assert stats.mean == pytest.approx(400)
        assert stats.median == pytest.approx(300)
        assert stats.max == 1000

    def test_distinct_documents_counted_once(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "u", 100),
                Request(1.0, 0, "u", 100),
                Request(2.0, 0, "v", 300),
            ]
        )
        assert size_statistics(trace).mean == pytest.approx(200)

    def test_pareto_tail_index_near_generator_alpha(self):
        trace = generate_trace(
            replace(
                zipf_only_config(0.7),
                mean_size=4096,
                max_size=16 * 2**20,
            )
        )
        stats = size_statistics(trace)
        # Hill estimator over a capped Pareto(1.1): expect ~1.0-1.6.
        assert 0.7 < stats.tail_index < 2.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            size_statistics(Trace())


class TestOverlap:
    def test_matrix_hand_computed(self, tiny_trace):
        # Group 0 refs {/1, /2}; group 1 refs {/1, /2, /3}.
        matrix = group_overlap_matrix(tiny_trace, 2)
        assert matrix[0][0] == 1.0
        assert matrix[1][1] == 1.0
        assert matrix[0][1] == pytest.approx(1.0)  # both of g0's in g1
        assert matrix[1][0] == pytest.approx(2 / 3)

    def test_validation(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            group_overlap_matrix(tiny_trace, 0)


class TestSharingPotential:
    def test_hand_computed(self, tiny_trace):
        # g1's first /1 (already seen by g0) and g1's first /2: 2 of 6.
        assert sharing_potential(tiny_trace, 2) == pytest.approx(2 / 6)

    def test_upper_bounds_simulated_remote_hits(self):
        # The bound "ignores capacity and staleness": use infinite
        # caches and a churn-free trace (version churn lets a group
        # re-fetch a document it already saw, creating remote hits the
        # first-reference counter does not model).
        from repro.sharing.schemes import simulate_simple_sharing

        trace = generate_trace(
            replace(zipf_only_config(0.8), locality_probability=0.4)
        )
        potential = sharing_potential(trace, 4)
        result = simulate_simple_sharing(trace, 4, 10**9)
        assert potential > 0
        assert result.remote_hits / result.requests <= potential + 1e-9

    def test_empty_trace(self):
        assert sharing_potential(Trace(), 2) == 0.0


class TestInterreference:
    def test_hand_computed(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "a", 1),
                Request(1.0, 0, "b", 1),
                Request(2.0, 0, "a", 1),  # distance 2
                Request(3.0, 0, "a", 1),  # distance 1
            ]
        )
        result = interreference_percentiles(trace, percentiles=(50,))
        assert result[50] == pytest.approx(1.5)

    def test_no_reuse_gives_nan(self):
        trace = Trace(
            requests=[Request(float(i), 0, f"u{i}", 1) for i in range(4)]
        )
        result = interreference_percentiles(trace, percentiles=(50,))
        assert math.isnan(result[50])

    def test_locality_shortens_distances(self):
        near = generate_trace(
            replace(zipf_only_config(0.7), locality_probability=0.7)
        )
        far = generate_trace(zipf_only_config(0.7))
        assert (
            interreference_percentiles(near)[50]
            < interreference_percentiles(far)[50]
        )
