"""Tests for trace statistics (Table I quantities)."""

from __future__ import annotations

import pytest

from repro.traces.model import Request, Trace
from repro.traces.stats import compute_stats, mean_cacheable_size


class TestComputeStats:
    def test_hand_checked_trace(self, tiny_trace):
        stats = compute_stats(tiny_trace)
        # 6 requests, re-references of /1 (x2) and /2 (x1) hit: 3 hits.
        assert stats.num_requests == 6
        assert stats.num_clients == 2
        assert stats.max_hit_ratio == pytest.approx(3 / 6)
        # Unique documents: 100 + 200 + 300 bytes.
        assert stats.infinite_cache_bytes == 600
        # Hit bytes: 100 + 200 + 100 = 400 of 1000 total.
        assert stats.max_byte_hit_ratio == pytest.approx(0.4)
        assert stats.duration_seconds == 5.0

    def test_version_change_breaks_max_hit(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "u", 100, version=0),
                Request(1.0, 0, "u", 100, version=1),  # modified: miss
                Request(2.0, 0, "u", 100, version=1),  # hit again
            ]
        )
        stats = compute_stats(trace)
        assert stats.max_hit_ratio == pytest.approx(1 / 3)

    def test_empty_trace(self):
        stats = compute_stats(Trace())
        assert stats.num_requests == 0
        assert stats.max_hit_ratio == 0.0
        assert stats.max_byte_hit_ratio == 0.0

    def test_row_renders(self, tiny_trace):
        row = compute_stats(tiny_trace).row()
        assert row[0] == "tiny"
        assert len(row) == 7


class TestMeanCacheableSize:
    def test_excludes_oversized_documents(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "small", 1000),
                Request(1.0, 0, "big", 500 * 1024),
                Request(2.0, 0, "small2", 3000),
            ]
        )
        assert mean_cacheable_size(trace) == 2000

    def test_counts_distinct_documents_once(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "u", 1000),
                Request(1.0, 0, "u", 1000),
                Request(2.0, 0, "v", 3000),
            ]
        )
        assert mean_cacheable_size(trace) == 2000

    def test_empty_or_all_oversized(self):
        assert mean_cacheable_size(Trace()) == 1
        trace = Trace(requests=[Request(0.0, 0, "u", 10**9)])
        assert mean_cacheable_size(trace) == 1

    def test_custom_limit(self):
        trace = Trace(
            requests=[
                Request(0.0, 0, "a", 100),
                Request(1.0, 0, "b", 900),
            ]
        )
        assert mean_cacheable_size(trace, max_object_size=500) == 100
