"""Tests for the synthetic trace generator."""

from __future__ import annotations

from collections import Counter
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.traces.stats import compute_stats
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.urlutil import server_of

BASE = SyntheticTraceConfig(
    num_requests=3000,
    num_clients=40,
    num_documents=1200,
    seed=5,
)


class TestDeterminism:
    def test_same_config_same_trace(self):
        a = generate_trace(BASE)
        b = generate_trace(BASE)
        assert [r.url for r in a] == [r.url for r in b]
        assert [r.timestamp for r in a] == [r.timestamp for r in b]

    def test_different_seed_differs(self):
        a = generate_trace(BASE)
        b = generate_trace(replace(BASE, seed=6))
        assert [r.url for r in a] != [r.url for r in b]


class TestStructure:
    def test_request_count(self):
        assert len(generate_trace(BASE)) == 3000

    def test_timestamps_monotone(self):
        trace = generate_trace(BASE)
        times = [r.timestamp for r in trace]
        assert all(t1 <= t2 for t1, t2 in zip(times, times[1:]))

    def test_sizes_within_bounds(self):
        config = replace(BASE, max_size=64 * 1024)
        trace = generate_trace(config)
        assert all(64 <= r.size <= 64 * 1024 for r in trace)

    def test_same_document_same_size(self):
        trace = generate_trace(BASE)
        sizes = {}
        for req in trace:
            assert sizes.setdefault(req.url, req.size) == req.size

    def test_clients_within_range(self):
        trace = generate_trace(BASE)
        assert all(0 <= r.client_id < 40 for r in trace)

    def test_url_to_server_ratio_matches_docs_per_server(self):
        trace = generate_trace(replace(BASE, docs_per_server=10))
        urls = {r.url for r in trace}
        servers = {server_of(r.url) for r in trace}
        ratio = len(urls) / len(servers)
        # With Zipf sampling not every doc of a server is touched, so
        # the observed ratio is below 10 but well above 1.
        assert 2.0 < ratio <= 10.0


class TestBehaviouralKnobs:
    def test_more_locality_means_more_reuse(self):
        low = compute_stats(
            generate_trace(replace(BASE, locality_probability=0.05))
        )
        high = compute_stats(
            generate_trace(replace(BASE, locality_probability=0.7))
        )
        assert high.max_hit_ratio > low.max_hit_ratio + 0.05

    def test_modification_probability_creates_version_churn(self):
        static = generate_trace(replace(BASE, mod_probability=0.0))
        churn = generate_trace(replace(BASE, mod_probability=0.05))
        assert all(r.version == 0 for r in static)
        assert any(r.version > 0 for r in churn)

    def test_zipf_alpha_skews_popularity(self):
        flat = generate_trace(replace(BASE, zipf_alpha=0.1, locality_probability=0.0))
        skewed = generate_trace(replace(BASE, zipf_alpha=1.2, locality_probability=0.0))

        def top_share(trace):
            counts = Counter(r.url for r in trace)
            top = sum(c for _u, c in counts.most_common(20))
            return top / len(trace)

        assert top_share(skewed) > top_share(flat) + 0.1

    def test_request_rate_sets_duration(self):
        slow = generate_trace(replace(BASE, request_rate=1.0))
        fast = generate_trace(replace(BASE, request_rate=100.0))
        assert slow.duration > 10 * fast.duration


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_requests": 0},
            {"num_clients": 0},
            {"num_documents": 0},
            {"locality_probability": 1.5},
            {"pareto_alpha": 1.0},
            {"mod_probability": -0.1},
            {"request_rate": 0.0},
            {"docs_per_server": 0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            replace(BASE, **kwargs)

    def test_scaled(self):
        scaled = BASE.scaled(0.5)
        assert scaled.num_requests == 1500
        assert scaled.num_clients == 20
        with pytest.raises(ConfigurationError):
            BASE.scaled(0)


class TestServerLocality:
    def test_in_cache_url_server_concentration(self):
        """Browsing-session locality plus heavy-tailed site sizes give a
        cache far fewer distinct servers than documents (the paper's
        ~10:1 observation that server-name summaries bank on)."""
        from repro.cache import WebCache
        from repro.urlutil import server_of

        trace = generate_trace(
            replace(BASE, num_requests=8000, server_locality=0.5)
        )
        cache = WebCache(300_000)
        for req in trace:
            if cache.get(req.url, version=req.version, size=req.size) is None:
                cache.put(req.url, req.size, version=req.version)
        urls = cache.urls()
        servers = {server_of(u) for u in urls}
        assert len(urls) / len(servers) > 2.5

    def test_zero_server_locality_spreads_servers(self):
        from repro.urlutil import server_of

        clustered = generate_trace(replace(BASE, server_locality=0.8))
        spread = generate_trace(replace(BASE, server_locality=0.0))

        def distinct_servers(trace):
            return len({server_of(r.url) for r in trace})

        assert distinct_servers(clustered) < distinct_servers(spread)

    def test_server_locality_validation(self):
        with pytest.raises(ConfigurationError):
            replace(BASE, server_locality=1.5)

    def test_heavy_tailed_server_sizes(self):
        """With server_size_alpha > 0 the largest site hosts many more
        documents than the median site."""
        from collections import Counter
        from repro.urlutil import server_of

        trace = generate_trace(
            replace(BASE, zipf_alpha=0.1, locality_probability=0.0)
        )
        docs_per_server = Counter()
        seen = set()
        for req in trace:
            if req.url not in seen:
                seen.add(req.url)
                docs_per_server[server_of(req.url)] += 1
        sizes = sorted(docs_per_server.values())
        assert sizes[-1] > 5 * sizes[len(sizes) // 2]


class TestStreamingCore:
    """iter_requests() is the generator core generate_trace() wraps."""

    def test_stream_matches_materialized_trace(self):
        from repro.traces.synthetic import iter_requests

        assert list(iter_requests(BASE)) == generate_trace(BASE).requests

    def test_block_size_never_changes_the_stream(self):
        from repro.traces.synthetic import iter_requests

        reference = list(iter_requests(BASE))
        for block_size in (1, 97, 8192, 10**9):
            assert (
                list(iter_requests(BASE, block_size=block_size))
                == reference
            ), block_size

    def test_rejects_bad_block_size(self):
        from repro.traces.synthetic import iter_requests

        with pytest.raises(ConfigurationError):
            next(iter_requests(BASE, block_size=0))

    def test_stream_is_lazy(self):
        from itertools import islice

        from repro.traces.synthetic import iter_requests

        # Draw a prefix without exhausting the stream: the prefix must
        # equal the full trace's prefix (jump-ahead RNG streams, not a
        # different sequence).
        prefix = list(islice(iter_requests(BASE), 10))
        assert prefix == generate_trace(BASE).requests[:10]
