"""Tests for clientid-mod-N proxy group assignment."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.traces.partition import group_of, partition_by_client, split_by_group


class TestGroupOf:
    def test_modulo_rule(self):
        assert group_of(17, 8) == 1
        assert group_of(16, 16) == 0

    def test_rejects_bad_group_count(self):
        with pytest.raises(ConfigurationError):
            group_of(1, 0)


class TestPartition:
    def test_partition_counts_and_order(self, tiny_trace):
        parts = partition_by_client(tiny_trace, 2)
        assert len(parts) == 2
        assert sum(len(p) for p in parts) == len(tiny_trace)
        # Client 0's requests all land in group 0, in trace order.
        assert [r.timestamp for r in parts[0]] == [0.0, 2.0, 4.0]
        assert all(r.client_id % 2 == 0 for r in parts[0])

    def test_partition_names(self, tiny_trace):
        parts = partition_by_client(tiny_trace, 2)
        assert parts[0].name == "tiny/g0"

    def test_empty_groups_allowed(self, tiny_trace):
        parts = partition_by_client(tiny_trace, 5)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == len(tiny_trace)


class TestSplitByGroup:
    def test_annotation_preserves_global_order(self, tiny_trace):
        annotated = split_by_group(tiny_trace, 2)
        assert [g for g, _r in annotated] == [0, 1, 0, 1, 0, 1]
        assert [r.timestamp for _g, r in annotated] == [
            0.0,
            1.0,
            2.0,
            3.0,
            4.0,
            5.0,
        ]


class TestGroupedChunks:
    def test_flattened_chunks_equal_split_by_group(self, tiny_trace):
        from repro.traces.partition import grouped_chunks

        expected = split_by_group(tiny_trace, 2)
        for chunk_size in (1, 2, len(tiny_trace), len(tiny_trace) + 5):
            flattened = [
                pair
                for chunk in grouped_chunks(tiny_trace, 2, chunk_size=chunk_size)
                for pair in chunk
            ]
            assert flattened == expected

    def test_chunk_boundaries(self, tiny_trace):
        from repro.traces.partition import grouped_chunks

        sizes = [len(c) for c in grouped_chunks(tiny_trace, 2, chunk_size=4)]
        assert sizes == [4, len(tiny_trace) - 4]

    def test_rejects_bad_group_count(self, tiny_trace):
        from repro.traces.partition import grouped_chunks

        with pytest.raises(ConfigurationError):
            list(grouped_chunks(tiny_trace, 0))

    def test_rejects_bad_chunk_size(self, tiny_trace):
        from repro.traces.partition import grouped_chunks

        with pytest.raises(ConfigurationError):
            list(grouped_chunks(tiny_trace, 2, chunk_size=0))


class TestIterableInputs:
    """The partition helpers accept any Request iterable, not just Trace."""

    def test_grouped_chunks_over_generator(self, tiny_trace):
        from repro.traces.partition import grouped_chunks

        from_trace = [
            pair
            for chunk in grouped_chunks(tiny_trace, 2, chunk_size=2)
            for pair in chunk
        ]
        from_stream = [
            pair
            for chunk in grouped_chunks(
                (r for r in tiny_trace.requests), 2, chunk_size=2
            )
            for pair in chunk
        ]
        assert from_stream == from_trace

    def test_partition_by_client_over_generator(self, tiny_trace):
        expected = partition_by_client(tiny_trace, 2)
        actual = partition_by_client(
            (r for r in tiny_trace.requests), 2
        )
        for expected_part, actual_part in zip(expected, actual):
            assert actual_part.requests == expected_part.requests

    def test_split_by_group_over_generator(self, tiny_trace):
        assert split_by_group(
            (r for r in tiny_trace.requests), 2
        ) == split_by_group(tiny_trace, 2)
