"""Tests for clientid-mod-N proxy group assignment."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.traces.partition import group_of, partition_by_client, split_by_group


class TestGroupOf:
    def test_modulo_rule(self):
        assert group_of(17, 8) == 1
        assert group_of(16, 16) == 0

    def test_rejects_bad_group_count(self):
        with pytest.raises(ConfigurationError):
            group_of(1, 0)


class TestPartition:
    def test_partition_counts_and_order(self, tiny_trace):
        parts = partition_by_client(tiny_trace, 2)
        assert len(parts) == 2
        assert sum(len(p) for p in parts) == len(tiny_trace)
        # Client 0's requests all land in group 0, in trace order.
        assert [r.timestamp for r in parts[0]] == [0.0, 2.0, 4.0]
        assert all(r.client_id % 2 == 0 for r in parts[0])

    def test_partition_names(self, tiny_trace):
        parts = partition_by_client(tiny_trace, 2)
        assert parts[0].name == "tiny/g0"

    def test_empty_groups_allowed(self, tiny_trace):
        parts = partition_by_client(tiny_trace, 5)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == len(tiny_trace)


class TestSplitByGroup:
    def test_annotation_preserves_global_order(self, tiny_trace):
        annotated = split_by_group(tiny_trace, 2)
        assert [g for g, _r in annotated] == [0, 1, 0, 1, 0, 1]
        assert [r.timestamp for _g, r in annotated] == [
            0.0,
            1.0,
            2.0,
            3.0,
            4.0,
            5.0,
        ]
