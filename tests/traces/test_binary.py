"""Tests for the packed binary trace format (.sctr)."""

from __future__ import annotations

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError, TraceIndexError
from repro.traces.binary import (
    TRACE_HEADER_SIZE,
    TRACE_MAGIC,
    TRACE_RECORD_SIZE,
    BinaryTraceReader,
    BinaryTraceWriter,
    TraceWindow,
    pack_trace,
    read_binary,
    write_binary,
)
from repro.traces.model import Request, Trace


@pytest.fixture
def trace() -> Trace:
    return Trace(
        name="bin-test",
        requests=[
            Request(0.0, 0, "http://a.com/1", 100, 0),
            Request(0.5, 1, "http://b.com/2", 2048, 3),
            Request(1.5, 0, "http://a.com/1", 100, 0),
            Request(2.0, 7, "http://c.com/3?q=1", 64, 1),
            Request(9.0, 1, "http://a.com/1", 100, 0),
        ],
    )


@pytest.fixture
def packed(trace, tmp_path) -> str:
    path = str(tmp_path / "t.sctr")
    pack_trace(trace, path)
    return path


class TestRoundTrip:
    def test_materialize_equals_original(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            assert reader.materialize() == trace

    def test_name_preserved(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            assert reader.name == "bin-test"

    def test_read_write_binary_parity(self, trace, tmp_path):
        path = tmp_path / "p.sctr"
        write_binary(trace, path)
        assert read_binary(path) == trace

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.sctr")
        assert pack_trace(Trace(name="none"), path) == 0
        with BinaryTraceReader(path) as reader:
            assert len(reader) == 0
            assert list(reader) == []
            assert reader.duration == 0.0
            assert reader.clients() == []

    def test_pack_from_generator(self, trace, tmp_path):
        path = str(tmp_path / "gen.sctr")
        count = pack_trace((r for r in trace.requests), path, name="gen")
        assert count == len(trace)
        with BinaryTraceReader(path) as reader:
            assert list(reader) == trace.requests

    def test_duplicate_urls_stored_once(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            urls = reader.urls()
            assert len(urls) == 3
            assert sorted(urls) == sorted(
                {r.url for r in trace.requests}
            )


class TestReaderAccess:
    def test_len_and_getitem(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            assert len(reader) == 5
            for i, req in enumerate(trace.requests):
                assert reader[i] == req
            assert reader[-1] == trace.requests[-1]

    def test_out_of_range_raises_index_error(self, packed):
        with BinaryTraceReader(packed) as reader:
            with pytest.raises(IndexError):
                reader[5]
            with pytest.raises(TraceIndexError):
                reader[-6]

    def test_duration_is_o1_and_matches_trace(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            assert reader.duration == trace.duration == 9.0

    def test_clients_sorted_and_cached(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            clients = reader.clients()
            assert clients == trace.clients() == [0, 1, 7]
            assert reader.clients() is clients

    def test_iter_range(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            assert list(reader.iter_range(1, 4)) == trace.requests[1:4]

    def test_small_advise_window_scans_whole_trace(self, tmp_path):
        # A window below one page exercises the madvise trimming path.
        requests = [
            Request(float(i), i % 5, f"http://s/{i % 50}", 10, 0)
            for i in range(2000)
        ]
        path = str(tmp_path / "adv.sctr")
        pack_trace(requests, path)
        with BinaryTraceReader(path, advise_window=4096) as reader:
            assert list(reader) == requests


class TestWindows:
    def test_slice_matches_trace_slice(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            window = reader[1:4]
            assert isinstance(window, TraceWindow)
            assert len(window) == 3
            assert list(window) == trace.requests[1:4]
            assert window.materialize().requests == trace.requests[1:4]

    def test_sub_slicing_and_negative_index(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            window = reader[1:5][1:3]
            assert list(window) == trace.requests[2:4]
            assert window[-1] == trace.requests[3]

    def test_head(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            head = reader.head(2)
            assert list(head) == trace.requests[:2]
            assert "[0:2]" in head.name

    def test_window_clients_and_duration(self, trace, packed):
        with BinaryTraceReader(packed) as reader:
            window = reader[0:3]
            assert window.clients() == [0, 1]
            assert window.duration == 1.5

    def test_window_out_of_range(self, packed):
        with BinaryTraceReader(packed) as reader:
            window = reader[1:3]
            with pytest.raises(TraceIndexError):
                window[2]

    def test_step_slicing_rejected(self, packed):
        with BinaryTraceReader(packed) as reader:
            with pytest.raises(TraceFormatError):
                reader[::2]


class TestWriterLimits:
    def test_oversized_url_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="URL"):
            pack_trace(
                [Request(0.0, 0, "x" * 70_000, 1, 0)],
                str(tmp_path / "big.sctr"),
            )

    def test_unencodable_url_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="UTF-8"):
            pack_trace(
                [Request(0.0, 0, "\ud800", 1, 0)],
                str(tmp_path / "surrogate.sctr"),
            )

    def test_field_overflow_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            pack_trace(
                [Request(0.0, 2**32, "u", 1, 0)],
                str(tmp_path / "over.sctr"),
            )

    def test_writer_context_manager(self, tmp_path):
        path = str(tmp_path / "cm.sctr")
        with BinaryTraceWriter(path, name="cm") as writer:
            writer.append(Request(1.0, 2, "http://u/", 3, 4))
            assert writer.count == 1
        with BinaryTraceReader(path) as reader:
            assert reader[0] == Request(1.0, 2, "http://u/", 3, 4)


class TestCorruptFiles:
    def test_bad_magic(self, packed, tmp_path):
        data = bytearray(open(packed, "rb").read())
        data[:4] = b"NOPE"
        bad = tmp_path / "bad.sctr"
        bad.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="magic"):
            BinaryTraceReader(bad)

    def test_bad_version(self, packed, tmp_path):
        data = bytearray(open(packed, "rb").read())
        data[4:6] = struct.pack("!H", 99)
        bad = tmp_path / "bad.sctr"
        bad.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="version"):
            BinaryTraceReader(bad)

    def test_truncated_records(self, packed, tmp_path):
        data = open(packed, "rb").read()
        bad = tmp_path / "bad.sctr"
        bad.write_bytes(data[: TRACE_HEADER_SIZE + TRACE_RECORD_SIZE // 2])
        with pytest.raises(TraceFormatError):
            BinaryTraceReader(bad)

    def test_header_shorter_than_header_size(self, tmp_path):
        bad = tmp_path / "tiny.sctr"
        bad.write_bytes(TRACE_MAGIC)
        with pytest.raises(TraceFormatError):
            BinaryTraceReader(bad)


# Surrogates (category Cs) are not encodable as UTF-8; the writer
# rejects them with TraceFormatError (covered in TestWriterLimits).
_urls = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=0x10FFFF, exclude_categories=("Cs",)
    ),
    min_size=1,
    max_size=40,
)
_requests = st.builds(
    Request,
    timestamp=st.floats(
        min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
    client_id=st.integers(min_value=0, max_value=2**32 - 1),
    url=_urls,
    size=st.integers(min_value=0, max_value=2**32 - 1),
    version=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestProperties:
    # tmp_path is reused across examples on purpose: each example
    # overwrites the same file, so the health check is a false alarm.
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(requests=st.lists(_requests, max_size=60))
    def test_round_trip_preserves_every_field(self, requests, tmp_path):
        path = str(tmp_path / "prop.sctr")
        pack_trace(requests, path, name="prop")
        with BinaryTraceReader(path) as reader:
            assert list(reader) == requests

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        requests=st.lists(_requests, min_size=1, max_size=40),
        data=st.data(),
    )
    def test_random_slices_match_list_slices(
        self, requests, data, tmp_path
    ):
        path = str(tmp_path / "slice.sctr")
        pack_trace(requests, path)
        start = data.draw(
            st.integers(min_value=0, max_value=len(requests))
        )
        stop = data.draw(
            st.integers(min_value=start, max_value=len(requests))
        )
        with BinaryTraceReader(path) as reader:
            assert list(reader[start:stop]) == requests[start:stop]
