"""Tests for trace slicing and transformation utilities."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.traces.filters import (
    densify_clients,
    filter_clients,
    merge_traces,
    sample_requests,
    time_window,
)
from repro.traces.model import Request, Trace


@pytest.fixture
def sparse_trace() -> Trace:
    return Trace(
        name="sparse",
        requests=[
            Request(10.0, 7001, "a", 100),
            Request(11.0, 99, "b", 100),
            Request(12.0, 7001, "c", 100),
            Request(20.0, 5, "d", 100),
        ],
    )


class TestTimeWindow:
    def test_half_open_interval(self, sparse_trace):
        window = time_window(sparse_trace, start=11.0, end=20.0, rebase=False)
        assert [r.url for r in window] == ["b", "c"]

    def test_rebase_shifts_to_zero(self, sparse_trace):
        window = time_window(sparse_trace, start=11.0)
        assert window[0].timestamp == 0.0
        assert window[-1].timestamp == pytest.approx(9.0)

    def test_open_end(self, sparse_trace):
        assert len(time_window(sparse_trace, start=12.0)) == 2

    def test_no_mutation(self, sparse_trace):
        time_window(sparse_trace, start=11.0)
        assert sparse_trace[0].timestamp == 10.0

    def test_bad_interval(self, sparse_trace):
        with pytest.raises(ConfigurationError):
            time_window(sparse_trace, start=5.0, end=1.0)

    def test_empty_window(self, sparse_trace):
        assert len(time_window(sparse_trace, start=100.0)) == 0


class TestFilterClients:
    def test_predicate(self, sparse_trace):
        kept = filter_clients(sparse_trace, lambda c: c > 1000)
        assert [r.client_id for r in kept] == [7001, 7001]


class TestDensify:
    def test_first_appearance_order(self, sparse_trace):
        dense = densify_clients(sparse_trace)
        assert [r.client_id for r in dense] == [0, 1, 0, 2]

    def test_preserves_everything_else(self, sparse_trace):
        dense = densify_clients(sparse_trace)
        assert [r.url for r in dense] == [r.url for r in sparse_trace]
        assert [r.timestamp for r in dense] == [
            r.timestamp for r in sparse_trace
        ]


class TestMerge:
    def test_interleaves_by_time(self):
        a = Trace(requests=[Request(1.0, 0, "a1", 1), Request(3.0, 0, "a2", 1)])
        b = Trace(requests=[Request(2.0, 0, "b1", 1)])
        merged = merge_traces([a, b])
        assert [r.url for r in merged] == ["a1", "b1", "a2"]

    def test_client_ids_do_not_collide(self):
        a = Trace(requests=[Request(1.0, 0, "a", 1)])
        b = Trace(requests=[Request(2.0, 0, "b", 1)])
        merged = merge_traces([a, b])
        assert len({r.client_id for r in merged}) == 2

    def test_needs_one_trace(self):
        with pytest.raises(ConfigurationError):
            merge_traces([])


class TestSample:
    def test_systematic(self, sparse_trace):
        sampled = sample_requests(sparse_trace, 2)
        assert [r.url for r in sampled] == ["a", "c"]

    def test_keep_every_one_is_identity(self, sparse_trace):
        assert len(sample_requests(sparse_trace, 1)) == len(sparse_trace)

    def test_validation(self, sparse_trace):
        with pytest.raises(ConfigurationError):
            sample_requests(sparse_trace, 0)
