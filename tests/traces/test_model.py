"""Tests for request/trace containers."""

from __future__ import annotations

from repro.traces.model import Request, Trace


class TestRequest:
    def test_server_property(self):
        req = Request(0.0, 1, "http://www.Example.com:8080/a/b", 10)
        assert req.server == "www.example.com:8080"

    def test_frozen_dataclass(self):
        req = Request(0.0, 1, "http://a.com/x", 10)
        try:
            req.size = 20  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Request should be immutable")


class TestTrace:
    def test_len_iter_getitem(self, tiny_trace):
        assert len(tiny_trace) == 6
        assert list(tiny_trace)[0].url == "http://a.com/1"
        assert tiny_trace[2].url == "http://b.com/2"

    def test_duration(self, tiny_trace):
        assert tiny_trace.duration == 5.0

    def test_duration_of_short_traces(self):
        assert Trace().duration == 0.0
        assert (
            Trace(requests=[Request(9.0, 0, "u", 1)]).duration == 0.0
        )

    def test_clients(self, tiny_trace):
        assert tiny_trace.clients() == [0, 1]

    def test_head(self, tiny_trace):
        head = tiny_trace.head(2)
        assert len(head) == 2
        assert head.name == "tiny[:2]"

    def test_from_requests(self):
        reqs = (Request(float(i), 0, f"u{i}", 1) for i in range(3))
        trace = Trace.from_requests(reqs, name="gen")
        assert len(trace) == 3
        assert trace.name == "gen"


class TestCachedAccessors:
    def test_clients_cached_and_stable(self, tiny_trace):
        first = tiny_trace.clients()
        assert first == [0, 1]
        # Regression: clients() scans once and caches; repeated calls
        # must return the identical list object, not a fresh scan.
        assert tiny_trace.clients() is first

    def test_duration_cached(self, tiny_trace):
        assert tiny_trace.duration == 5.0
        # cached_property materializes into the instance dict.
        assert "duration" in tiny_trace.__dict__
        assert tiny_trace.duration == 5.0

    def test_fresh_traces_have_independent_caches(self):
        a = Trace(requests=[Request(0.0, 3, "u", 1)])
        b = Trace(requests=[Request(0.0, 9, "u", 1)])
        assert a.clients() == [3]
        assert b.clients() == [9]
