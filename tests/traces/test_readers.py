"""Tests for trace persistence formats."""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.traces.model import Request, Trace
from repro.traces.readers import (
    read_csv,
    read_jsonl,
    read_squid_log,
    write_csv,
    write_jsonl,
    write_squid_log,
)


@pytest.fixture
def versioned_trace() -> Trace:
    return Trace(
        name="versioned",
        requests=[
            Request(0.25, 3, "http://a.com/x", 1234, version=0),
            Request(1.75, 70000, "http://b.org/y?q=1", 99, version=2),
        ],
    )


class TestJsonl:
    def test_roundtrip(self, versioned_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(versioned_trace, path)
        loaded = read_jsonl(path, name="versioned")
        assert loaded.requests == versioned_trace.requests
        assert loaded.name == "versioned"

    def test_name_defaults_to_stem(self, versioned_trace, tmp_path):
        path = tmp_path / "mytrace.jsonl"
        write_jsonl(versioned_trace, path)
        assert read_jsonl(path).name == "mytrace"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"timestamp": 1, "client_id": 2, "url": "u", "size": 3}\n\n'
        )
        assert len(read_jsonl(path)) == 1

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"timestamp": "not-a-dict"}\n')
        with pytest.raises(TraceFormatError, match="bad.jsonl:1"):
            read_jsonl(path)


class TestCsv:
    def test_roundtrip(self, versioned_trace, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(versioned_trace, path)
        loaded = read_csv(path)
        assert loaded.requests == versioned_trace.requests

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,url\n1.0,u\n")
        with pytest.raises(TraceFormatError, match="header"):
            read_csv(path)

    def test_bad_field_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "timestamp,client_id,url,size,version\n1.0,x,u,10,0\n"
        )
        with pytest.raises(TraceFormatError, match="bad.csv:2"):
            read_csv(path)


class TestSquidLog:
    def test_roundtrip_preserves_core_fields(self, versioned_trace, tmp_path):
        path = tmp_path / "access.log"
        write_squid_log(versioned_trace, path)
        loaded = read_squid_log(path)
        assert [r.url for r in loaded] == [
            r.url for r in versioned_trace
        ]
        assert [r.size for r in loaded] == [
            r.size for r in versioned_trace
        ]
        # Client ids written as 10.x.y.z invert exactly.
        assert [r.client_id for r in loaded] == [3, 70000]
        # Versions are not representable in squid logs.
        assert all(r.version == 0 for r in loaded)

    def test_non_get_lines_skipped(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(
            "1.0 5 10.0.0.1 TCP_MISS/200 100 POST http://a.com/x - DIRECT/o text/html\n"
            "2.0 5 10.0.0.1 TCP_MISS/200 100 GET http://a.com/y - DIRECT/o text/html\n"
        )
        loaded = read_squid_log(path)
        assert len(loaded) == 1
        assert loaded[0].url == "http://a.com/y"

    def test_named_hosts_hash_to_stable_ids(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(
            "1.0 5 host-a TCP_MISS/200 10 GET http://x.com/1 - DIRECT/o -\n"
            "2.0 5 host-b TCP_MISS/200 10 GET http://x.com/2 - DIRECT/o -\n"
            "3.0 5 host-a TCP_MISS/200 10 GET http://x.com/3 - DIRECT/o -\n"
        )
        loaded = read_squid_log(path)
        assert loaded[0].client_id == loaded[2].client_id
        assert loaded[0].client_id != loaded[1].client_id

    def test_short_line_raises(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text("garbage line\n")
        with pytest.raises(TraceFormatError, match="access.log:1"):
            read_squid_log(path)

    def test_bad_number_raises(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(
            "xxx 5 10.0.0.1 TCP_MISS/200 10 GET http://x.com/1 - DIRECT/o -\n"
        )
        with pytest.raises(TraceFormatError):
            read_squid_log(path)
