"""Tests for the Wisconsin-benchmark workload generator."""

from __future__ import annotations

import pytest

from repro.benchmarkkit.wisconsin import (
    WisconsinConfig,
    generate_client_streams,
)
from repro.cache import WebCache
from repro.errors import ConfigurationError


class TestStructure:
    def test_counts(self):
        streams = generate_client_streams(
            WisconsinConfig(num_clients=8, requests_per_client=50)
        )
        assert len(streams) == 8
        assert all(len(s) == 50 for s in streams)

    def test_clients_never_overlap(self):
        # "the requests issued by different clients do not overlap" --
        # the Table II worst case.
        streams = generate_client_streams(
            WisconsinConfig(num_clients=10, requests_per_client=80)
        )
        url_sets = [{r.url for r in s} for s in streams]
        for i in range(len(url_sets)):
            for j in range(i + 1, len(url_sets)):
                assert not (url_sets[i] & url_sets[j])

    def test_deterministic_for_seed(self):
        cfg = WisconsinConfig(num_clients=4, requests_per_client=30, seed=9)
        a = generate_client_streams(cfg)
        b = generate_client_streams(cfg)
        assert [[r.url for r in s] for s in a] == [
            [r.url for r in s] for s in b
        ]

    def test_same_doc_same_size(self):
        streams = generate_client_streams(
            WisconsinConfig(num_clients=2, requests_per_client=200)
        )
        sizes = {}
        for stream in streams:
            for req in stream:
                assert sizes.setdefault(req.url, req.size) == req.size

    def test_sizes_bounded(self):
        cfg = WisconsinConfig(
            num_clients=2, requests_per_client=100, max_size=100_000
        )
        for stream in generate_client_streams(cfg):
            for req in stream:
                assert 64 <= req.size <= 100_000


class TestHitRatioTarget:
    @pytest.mark.parametrize("target", [0.25, 0.45])
    def test_inherent_hit_ratio_close_to_target(self, target):
        """Replaying one client's stream through a big cache should hit
        at roughly the configured ratio (the benchmark's "inherent cache
        hit ratio in the request stream can be adjusted")."""
        cfg = WisconsinConfig(
            num_clients=6,
            requests_per_client=400,
            target_hit_ratio=target,
            seed=13,
        )
        hits = requests = 0
        for stream in generate_client_streams(cfg):
            cache = WebCache(10**9, max_object_size=None)
            for req in stream:
                if cache.get(req.url) is not None:
                    hits += 1
                else:
                    cache.put(req.url, req.size)
                requests += 1
        assert hits / requests == pytest.approx(target, abs=0.05)


class TestSharedPool:
    def test_shared_urls_overlap_across_clients(self):
        streams = generate_client_streams(
            WisconsinConfig(
                num_clients=6,
                requests_per_client=120,
                shared_fraction=0.4,
                shared_docs=16,
                seed=5,
            )
        )
        shared_sets = [
            {r.url for r in s if "/shared/" in r.url} for s in streams
        ]
        assert all(shared_sets)
        common = set.intersection(*shared_sets)
        assert common  # every client touched some shared documents

    def test_shared_fraction_close_to_target(self):
        streams = generate_client_streams(
            WisconsinConfig(
                num_clients=8,
                requests_per_client=300,
                shared_fraction=0.3,
                seed=11,
            )
        )
        total = sum(len(s) for s in streams)
        shared = sum(
            1 for s in streams for r in s if "/shared/" in r.url
        )
        assert shared / total == pytest.approx(0.3, abs=0.05)

    def test_disabled_pool_leaves_streams_bit_identical(self):
        """At shared_fraction=0.0 the pool generator draws nothing, so
        classic streams are unchanged whatever the pool size is set to
        (the backward-compatibility contract of the knob)."""
        plain = generate_client_streams(
            WisconsinConfig(num_clients=4, requests_per_client=80, seed=3)
        )
        resized = generate_client_streams(
            WisconsinConfig(
                num_clients=4,
                requests_per_client=80,
                seed=3,
                shared_fraction=0.0,
                shared_docs=997,
            )
        )
        assert [
            [(r.url, r.size) for r in s] for s in plain
        ] == [[(r.url, r.size) for r in s] for s in resized]
        assert not any(
            "/shared/" in r.url for s in plain for r in s
        )

    def test_shared_doc_sizes_consistent(self):
        streams = generate_client_streams(
            WisconsinConfig(
                num_clients=5,
                requests_per_client=150,
                shared_fraction=0.5,
                shared_docs=8,
                seed=2,
            )
        )
        sizes = {}
        for stream in streams:
            for req in stream:
                assert sizes.setdefault(req.url, req.size) == req.size


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_clients": 0},
            {"requests_per_client": 0},
            {"target_hit_ratio": 1.0},
            {"target_hit_ratio": -0.1},
            {"pareto_alpha": 1.0},
            {"shared_fraction": 1.0},
            {"shared_fraction": -0.2},
            {"shared_docs": 0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            WisconsinConfig(**kwargs)
