"""Tests for the proxy load generator."""

from __future__ import annotations

import asyncio
import json
from dataclasses import replace

import pytest

from repro.benchmarkkit.loadgen import (
    LoadGenConfig,
    histogram_quantile,
    render_comparison,
    results_to_json,
    run_loadgen,
)
from repro.core.summary import SummaryConfig
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode


BASE_CONFIG = ProxyConfig(
    summary=SummaryConfig(kind="bloom", load_factor=8),
    expected_doc_size=1024,
    update_threshold=0.01,
)

SMALL = LoadGenConfig(
    clients=3,
    requests_per_client=10,
    target_hit_ratio=0.3,
    mean_size=1024,
    max_size=8 * 1024,
    seed=7,
)


def run(coro):
    return asyncio.run(coro)


async def _run_phase(config: LoadGenConfig, base: ProxyConfig):
    async with ProxyCluster(
        num_proxies=1,
        mode=ProxyMode.NO_ICP,
        cache_capacity=4 * 1024 * 1024,
        base_config=base,
    ) as cluster:
        targets = [
            (p.config.host, p.http_port) for p in cluster.proxies
        ]
        return await run_loadgen(
            targets, config, proxies=cluster.proxies
        )


class TestRunLoadgen:
    def test_counts_and_latency_populated(self):
        result = run(_run_phase(SMALL, BASE_CONFIG))
        assert result.requests == 30
        assert result.errors == 0
        assert result.requests_per_second > 0
        assert 0 < result.latency_p50_ms <= result.latency_p99_ms
        assert result.bytes_received > 0
        assert result.connections_opened == 3  # one per keep-alive client
        assert result.proxy_phase_p50_ms is not None
        # Every request is accounted to a cache source.
        assert sum(result.cache_sources.values()) == 30

    def test_disciplines_have_identical_cache_behaviour(self):
        keep = run(_run_phase(SMALL, BASE_CONFIG))
        per_request = run(
            _run_phase(
                replace(SMALL, keep_alive=False),
                replace(BASE_CONFIG, pool_size=0),
            )
        )
        assert per_request.cache_sources == keep.cache_sources
        assert per_request.bytes_received == keep.bytes_received
        # Connection churn is the one thing that differs.
        assert per_request.connections_opened == 30
        assert keep.connections_opened == 3

    def test_requires_targets(self):
        with pytest.raises(ConfigurationError):
            run(run_loadgen([], SMALL))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LoadGenConfig(clients=0)
        with pytest.raises(ConfigurationError):
            LoadGenConfig(requests_per_client=0)


class TestOriginAccounting:
    def test_origin_deltas_do_not_bleed_across_runs(self):
        """bytes_from_origin counts only the run's own fetches even
        when consecutive runs share one origin server."""

        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                cache_capacity=4 * 1024 * 1024,
                base_config=BASE_CONFIG,
            ) as cluster:
                targets = [
                    (p.config.host, p.http_port) for p in cluster.proxies
                ]
                first = await run_loadgen(
                    targets,
                    SMALL,
                    proxies=cluster.proxies,
                    origin=cluster.origin,
                )
                # Same streams again: the cache is warm, so the second
                # run fetches nothing new from the origin.
                second = await run_loadgen(
                    targets,
                    SMALL,
                    proxies=cluster.proxies,
                    origin=cluster.origin,
                )
            return first, second

        first, second = run(scenario())
        assert first.origin_requests is not None
        assert first.origin_requests > 0
        assert first.bytes_from_origin > 0
        assert second.origin_requests == 0
        assert second.bytes_from_origin == 0

    def test_none_without_origin(self):
        result = run(_run_phase(SMALL, BASE_CONFIG))
        assert result.origin_requests is None
        assert result.bytes_from_origin is None
        assert result.peer_fetches is not None  # proxies were passed

    def test_peer_fetches_counted_under_carp(self):
        async def scenario():
            async with ProxyCluster(
                num_proxies=2,
                mode=ProxyMode.NO_ICP,
                cache_capacity=4 * 1024 * 1024,
                base_config=BASE_CONFIG,
                cooperation="carp",
            ) as cluster:
                targets = [
                    (p.config.host, p.http_port) for p in cluster.proxies
                ]
                return await run_loadgen(
                    targets,
                    SMALL,
                    proxies=cluster.proxies,
                    origin=cluster.origin,
                )

        result = run(scenario())
        assert result.errors == 0
        assert result.peer_fetches > 0


class TestDriverReuse:
    def test_drivers_survive_phases_and_reports_reset(self):
        from repro.proxy.client import ClientDriver

        async def scenario():
            drivers = [ClientDriver("127.0.0.1", 0) for _ in range(3)]
            results = []
            for _ in range(2):  # two fresh clusters, same drivers
                async with ProxyCluster(
                    num_proxies=1,
                    mode=ProxyMode.NO_ICP,
                    cache_capacity=4 * 1024 * 1024,
                    base_config=BASE_CONFIG,
                ) as cluster:
                    targets = [
                        (p.config.host, p.http_port)
                        for p in cluster.proxies
                    ]
                    results.append(
                        await run_loadgen(
                            targets, SMALL, drivers=drivers
                        )
                    )
            return results, drivers

        results, drivers = run(scenario())
        # Each phase's numbers are its own: the rebind reset reports.
        assert [r.requests for r in results] == [30, 30]
        assert [r.connections_opened for r in results] == [3, 3]
        assert results[0].cache_sources == results[1].cache_sources
        assert all(d.report.requests == 10 for d in drivers)

    def test_driver_count_must_match_clients(self):
        from repro.proxy.client import ClientDriver

        async def scenario():
            async with ProxyCluster(
                num_proxies=1,
                mode=ProxyMode.NO_ICP,
                base_config=BASE_CONFIG,
            ) as cluster:
                targets = [
                    (p.config.host, p.http_port) for p in cluster.proxies
                ]
                await run_loadgen(
                    targets,
                    SMALL,
                    drivers=[ClientDriver("127.0.0.1", 0)],
                )

        with pytest.raises(ConfigurationError):
            run(scenario())


class TestReporting:
    def _two_results(self):
        keep = run(_run_phase(SMALL, BASE_CONFIG))
        base = run(
            _run_phase(
                replace(SMALL, keep_alive=False),
                replace(BASE_CONFIG, pool_size=0),
            )
        )
        return base, keep

    def test_render_and_json_roundtrip(self):
        base, keep = self._two_results()
        text = render_comparison([base, keep])
        assert "speedup" in text
        payload = json.loads(
            results_to_json([base, keep], benchmark="proxy_loadgen")
        )
        assert payload["benchmark"] == "proxy_loadgen"
        assert len(payload["runs"]) == 2
        assert payload["speedup_requests_per_second"] > 0
        for entry in payload["runs"]:
            assert {"requests_per_second", "latency_p50_ms",
                    "latency_p99_ms"} <= set(entry)


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "t_seconds", buckets=(0.1, 0.2, 0.4)
        )
        for _ in range(100):
            hist.observe(0.15)
        q50 = histogram_quantile(hist, 0.5)
        assert 0.1 <= q50 <= 0.2

    def test_empty_histogram_is_none(self):
        registry = MetricsRegistry()
        hist = registry.histogram("e_seconds", buckets=(0.1,))
        assert histogram_quantile(hist, 0.5) is None
