"""Tests for the trace-engine benchmark harness."""

from __future__ import annotations

import pytest

from repro.benchmarkkit.tracebench import (
    REPLAY_MODES,
    bench_pack,
    bench_scan,
    bit_exact_check,
    measure_replay_rss,
)
from repro.errors import ConfigurationError

WORKLOAD = "nlanr"
SCALE = 0.1


@pytest.fixture(scope="module")
def packed(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("bench") / "nlanr.sctr")
    stats = bench_pack(WORKLOAD, path, scale=SCALE)
    return path, stats


class TestThroughput:
    def test_pack_reports_rates(self, packed):
        _, stats = packed
        assert stats["records"] == 3500
        assert stats["pack_records_per_second"] > 0
        assert stats["file_bytes"] > stats["records"] * 24

    def test_scan_covers_every_record(self, packed):
        path, stats = packed
        scan = bench_scan(path)
        assert scan["records"] == stats["records"]
        assert scan["scan_records_per_second"] > 0


class TestReplay:
    def test_bit_exact_check_passes(self, packed):
        path, _ = packed
        outcome = bit_exact_check(WORKLOAD, path, scale=SCALE)
        assert outcome["bit_exact"] is True
        assert (
            outcome["streamed_hit_ratio"]
            == outcome["in_memory_hit_ratio"]
        )

    def test_rss_worker_reports_peak(self, packed):
        path, _ = packed
        entry = measure_replay_rss(path, mode="stream", groups=4)
        assert entry["mode"] == "stream"
        assert entry["requests"] == 3500
        assert entry["peak_rss_bytes"] >= entry["baseline_rss_bytes"] > 0

    def test_rejects_unknown_mode(self, packed):
        path, _ = packed
        assert "stream" in REPLAY_MODES
        with pytest.raises(ConfigurationError):
            measure_replay_rss(path, mode="forked")
