"""Text, JSON, and SARIF reporter output contracts."""

from __future__ import annotations

import json

from repro.lint.framework import Finding, LintResult
from repro.lint.reporters import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)


def _dirty_result() -> LintResult:
    return LintResult(
        findings=[
            Finding(
                path="src/repro/core/mod.py",
                line=3,
                col=8,
                rule="SC005",
                message="raise of builtin ValueError",
            ),
            Finding(
                path="src/repro/proxy/mod.py",
                line=4,
                col=4,
                rule="SC001",
                message="blocking call time.sleep()",
            ),
        ],
        files_checked=2,
        rules_run=("SC001", "SC005"),
    )


class TestTextReporter:
    def test_one_line_per_finding_plus_summary(self) -> None:
        text = render_text(_dirty_result())
        lines = text.splitlines()
        assert len(lines) == 3
        assert (
            lines[0]
            == "src/repro/core/mod.py:3:8: SC005 raise of builtin ValueError"
        )
        assert lines[-1] == (
            "2 finding(s) in 2 file(s) (SC001: 1, SC005: 1)"
        )

    def test_clean_summary_reports_work_done(self) -> None:
        result = LintResult(files_checked=83, rules_run=tuple("ABCDEF"))
        assert render_text(result) == "clean: 83 file(s), 6 rule(s)"


class TestJsonReporter:
    def test_schema_version_1_fields(self) -> None:
        payload = json.loads(render_json(_dirty_result()))
        assert payload["version"] == JSON_SCHEMA_VERSION == 1
        assert payload["files_checked"] == 2
        assert payload["rules_run"] == ["SC001", "SC005"]
        assert payload["counts"] == {"SC001": 1, "SC005": 1}
        assert payload["findings"] == [
            {
                "rule": "SC005",
                "path": "src/repro/core/mod.py",
                "line": 3,
                "col": 8,
                "message": "raise of builtin ValueError",
            },
            {
                "rule": "SC001",
                "path": "src/repro/proxy/mod.py",
                "line": 4,
                "col": 4,
                "message": "blocking call time.sleep()",
            },
        ]

    def test_clean_result_round_trips(self) -> None:
        payload = json.loads(
            render_json(LintResult(files_checked=5, rules_run=("SC001",)))
        )
        assert payload["findings"] == []
        assert payload["counts"] == {}
        assert payload["files_checked"] == 5


class TestSarifReporter:
    def test_results_carry_rule_location_and_level(self) -> None:
        payload = json.loads(render_sarif(_dirty_result()))
        assert payload["version"] == SARIF_VERSION
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "sc-lint"
        results = run["results"]
        assert len(results) == 2
        first = results[0]
        assert first["ruleId"] == "SC005"
        assert first["level"] == "error"
        assert first["message"]["text"] == "raise of builtin ValueError"
        location = first["locations"][0]["physicalLocation"]
        assert (
            location["artifactLocation"]["uri"]
            == "src/repro/core/mod.py"
        )
        # sc-lint columns are 0-based, SARIF's are 1-based.
        assert location["region"] == {"startLine": 3, "startColumn": 9}

    def test_executed_rules_are_declared_even_when_clean(self) -> None:
        payload = json.loads(
            render_sarif(
                LintResult(files_checked=5, rules_run=("SC001", "SC007"))
            )
        )
        run = payload["runs"][0]
        assert run["results"] == []
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert declared == {"SC001", "SC007"}
        for rule in run["tool"]["driver"]["rules"]:
            assert rule["defaultConfiguration"] == {"level": "error"}
            assert rule["fullDescription"]["text"]
