"""Property tests for suppression-comment parsing.

The suppression syntax is the lint suite's escape hatch -- a parsing
bug either silences real findings (ids leak into neighbouring lines)
or makes annotated code impossible to justify.  Hypothesis drives the
parser with generated id lists, surrounding code, line-ending styles,
and decorator stacks.
"""

from __future__ import annotations

import ast
from typing import List

from hypothesis import given
from hypothesis import strategies as st

from repro.lint.framework import Suppressions

#: Valid rule ids (the grammar the parser accepts: SC + 3 digits).
rule_ids = st.from_regex(r"SC[0-9]{3}", fullmatch=True)

#: Innocuous code to the left of the comment: no '#' (which would start
#: the comment earlier) and no newline.
code_text = st.text(
    alphabet=st.characters(
        blacklist_characters="#\r\n", codec="ascii", categories=("L", "N", "P", "Zs")
    ),
    max_size=40,
)


@given(ids=st.lists(rule_ids, min_size=1, max_size=4), code=code_text)
def test_listed_ids_suppressed_exactly(ids: List[str], code: str) -> None:
    line = f"{code}  # sc-lint: disable={','.join(ids)}"
    sup = Suppressions(line)
    for rule in ids:
        assert sup.is_suppressed(rule, 1)
    assert not sup.is_suppressed("SC999", 1) or "SC999" in ids
    assert not sup.is_suppressed(ids[0], 2)  # never leaks to other lines


@given(code=code_text)
def test_bare_disable_suppresses_everything(code: str) -> None:
    sup = Suppressions(f"{code}  # sc-lint: disable")
    assert sup.is_suppressed("SC001", 1)
    assert sup.is_suppressed("SC999", 1)


@given(ids=st.lists(rule_ids, min_size=1, max_size=3))
def test_crlf_and_lf_agree_on_line_numbers(ids: List[str]) -> None:
    lines = [
        "x = 1",
        f"y = 2  # sc-lint: disable={','.join(ids)}",
        "z = 3",
    ]
    lf = Suppressions("\n".join(lines))
    crlf = Suppressions("\r\n".join(lines))
    for lineno in (1, 2, 3):
        for rule in ids:
            assert lf.is_suppressed(rule, lineno) == crlf.is_suppressed(
                rule, lineno
            )
    assert lf.is_suppressed(ids[0], 2)


@given(
    ids=st.lists(rule_ids, min_size=1, max_size=3),
    extra_decorators=st.integers(min_value=0, max_value=3),
)
def test_decorator_line_suppression_covers_def_line(
    ids: List[str], extra_decorators: int
) -> None:
    # The comment sits on the *first* decorator; the def line moves
    # further down as more decorators stack up.
    source_lines = [f"@first  # sc-lint: disable={','.join(ids)}"]
    source_lines += [f"@extra{i}" for i in range(extra_decorators)]
    source_lines += ["def func():", "    pass"]
    source = "\n".join(source_lines)
    sup = Suppressions(source)
    sup.extend_from_tree(ast.parse(source))
    def_line = 2 + extra_decorators
    for rule in ids:
        assert sup.is_suppressed(rule, 1)
        assert sup.is_suppressed(rule, def_line)


@given(ids=st.lists(rule_ids, min_size=1, max_size=2))
def test_def_line_and_decorator_line_ids_merge(ids: List[str]) -> None:
    source = "\n".join(
        [
            f"@deco  # sc-lint: disable={ids[0]}",
            "def func():  # sc-lint: disable=SC555",
            "    pass",
        ]
    )
    sup = Suppressions(source)
    sup.extend_from_tree(ast.parse(source))
    assert sup.is_suppressed(ids[0], 2)
    assert sup.is_suppressed("SC555", 2)


def test_bare_disable_on_decorator_wins_over_id_list() -> None:
    source = "\n".join(
        [
            "@deco  # sc-lint: disable",
            "def func():  # sc-lint: disable=SC001",
            "    pass",
        ]
    )
    sup = Suppressions(source)
    sup.extend_from_tree(ast.parse(source))
    assert sup.is_suppressed("SC777", 2)  # all rules, not just SC001


def test_multiline_decorator_call_continuation_lines_count() -> None:
    source = "\n".join(
        [
            "@parametrize(",
            "    'x',  # sc-lint: disable=SC123",
            ")",
            "def func():",
            "    pass",
        ]
    )
    sup = Suppressions(source)
    sup.extend_from_tree(ast.parse(source))
    assert sup.is_suppressed("SC123", 4)


@given(code=code_text)
def test_plain_comment_never_suppresses(code: str) -> None:
    sup = Suppressions(f"{code}  # an ordinary comment")
    assert not sup.is_suppressed("SC001", 1)
