"""Framework behaviour: suppressions, parse errors, selection, scoping."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint.framework import (
    PARSE_ERROR_RULE,
    LintConfig,
    Rule,
    Suppressions,
    all_rules,
    iter_python_files,
    register,
    run_lint,
)
from tests.lint.conftest import LintProject

_VIOLATION = """\
def check(x):
    if x < 0:
        raise ValueError("negative")
"""


class TestSuppressions:
    def test_bare_disable_suppresses_all(self, project: LintProject) -> None:
        project.write(
            "src/repro/core/mod.py",
            """\
            def check(x):
                raise ValueError("x")  # sc-lint: disable
            """,
        )
        assert project.lint(select="SC005") == []

    def test_targeted_disable_suppresses_named_rule(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/core/mod.py",
            """\
            def check(x):
                raise ValueError("x")  # sc-lint: disable=SC005
            """,
        )
        assert project.lint(select="SC005") == []

    def test_disable_for_other_rule_does_not_suppress(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/core/mod.py",
            """\
            def check(x):
                raise ValueError("x")  # sc-lint: disable=SC001
            """,
        )
        assert project.rule_counts(select="SC005") == {"SC005": 1}

    def test_suppression_only_covers_its_line(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/core/mod.py",
            """\
            def check(x):
                raise ValueError("a")  # sc-lint: disable=SC005
                raise ValueError("b")
            """,
        )
        findings = project.lint(select="SC005")
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_suppression_applies_to_finalize_findings(
        self, project: LintProject
    ) -> None:
        # SC003's kind-conflict finding is emitted in the cross-file
        # phase; the suppression on the second registration line must
        # still win.
        project.write(
            "src/repro/obs/a.py",
            """\
            def setup(registry):
                registry.gauge("queue_depth")
            """,
        )
        project.write(
            "src/repro/obs/b.py",
            """\
            def setup(registry):
                registry.histogram("queue_depth")  # sc-lint: disable=SC003
            """,
        )
        assert project.lint(select="SC003") == []

    def test_comma_separated_rule_list(self) -> None:
        sup = Suppressions("x = 1  # sc-lint: disable=SC001, SC002\n")
        assert sup.is_suppressed("SC001", 1)
        assert sup.is_suppressed("SC002", 1)
        assert not sup.is_suppressed("SC003", 1)
        assert not sup.is_suppressed("SC001", 2)


class TestParseErrors:
    def test_syntax_error_yields_sc000(self, project: LintProject) -> None:
        project.write("src/repro/core/broken.py", "def oops(:\n")
        findings = project.lint()
        assert len(findings) == 1
        assert findings[0].rule == PARSE_ERROR_RULE
        assert "could not be parsed" in findings[0].message

    def test_parse_error_does_not_stop_other_files(
        self, project: LintProject
    ) -> None:
        project.write("src/repro/core/broken.py", "def oops(:\n")
        project.write("src/repro/core/mod.py", _VIOLATION)
        rules = sorted(f.rule for f in project.lint(select="SC005"))
        assert rules == [PARSE_ERROR_RULE, "SC005"]


class TestSelection:
    def test_select_limits_rules(self, project: LintProject) -> None:
        project.write("src/repro/core/mod.py", _VIOLATION)
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import time

            async def handler():
                time.sleep(1)
            """,
        )
        assert set(project.rule_counts()) == {"SC001", "SC005"}
        assert set(project.rule_counts(select="SC001")) == {"SC001"}

    def test_unknown_select_id_raises(self, project: LintProject) -> None:
        project.write("src/repro/core/mod.py", "x = 1\n")
        with pytest.raises(ConfigurationError, match="SC999"):
            project.lint(select="SC999")

    def test_ignore_removes_rule(self, project: LintProject) -> None:
        project.write("src/repro/core/mod.py", _VIOLATION)
        config = LintConfig(ignore=frozenset({"SC005"}), root=project.root)
        result = run_lint([str(project.root / "src")], config)
        assert result.findings == []
        assert "SC005" not in result.rules_run

    def test_result_exit_codes(self, project: LintProject) -> None:
        project.write("src/repro/core/mod.py", "x = 1\n")
        clean = run_lint(
            [str(project.root / "src")], LintConfig(root=project.root)
        )
        assert clean.exit_code == 0
        assert clean.files_checked == 1
        project.write("src/repro/core/bad.py", _VIOLATION)
        dirty = run_lint(
            [str(project.root / "src")], LintConfig(root=project.root)
        )
        assert dirty.exit_code == 1
        assert dirty.counts == {"SC005": 1}


class TestScoping:
    def test_fragment_matches_whole_segments_only(self) -> None:
        rule = all_rules()["SC001"]()  # scopes = ("repro/proxy",)
        assert rule.applies_to("src/repro/proxy/server.py")
        assert rule.applies_to("repro/proxy/server.py")
        assert not rule.applies_to("src/repro/proxyfoo/server.py")
        assert not rule.applies_to("src/repro/simulation/proxy_model.py")

    def test_exempt_wins_over_scope(self) -> None:
        rule = all_rules()["SC003"]()  # exempt = ("repro/lint",)
        assert rule.applies_to("src/repro/obs/registry.py")
        assert not rule.applies_to("src/repro/lint/rules/sc003_metrics.py")


class TestFileDiscovery:
    def test_skips_hidden_and_pycache(self, tmp_path: Path) -> None:
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "mod.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["mod.py"]
        assert "__pycache__" not in files[0].parts

    def test_deduplicates_overlapping_paths(self, tmp_path: Path) -> None:
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1\n")
        files = iter_python_files([tmp_path, mod])
        assert files == [mod.resolve()]

    def test_missing_path_raises(self, tmp_path: Path) -> None:
        with pytest.raises(ConfigurationError, match="no such file"):
            iter_python_files([tmp_path / "nope"])


class TestRegistry:
    def test_all_nine_rules_registered(self) -> None:
        assert sorted(all_rules()) == [
            "SC001",
            "SC002",
            "SC003",
            "SC004",
            "SC005",
            "SC006",
            "SC007",
            "SC008",
            "SC009",
        ]

    def test_register_rejects_malformed_id(self) -> None:
        class BadId(Rule):
            id = "X1"

        with pytest.raises(ConfigurationError, match="3 digits"):
            register(BadId)

    def test_register_reserves_sc000(self) -> None:
        class Reserved(Rule):
            id = PARSE_ERROR_RULE

        with pytest.raises(ConfigurationError, match="reserved"):
            register(Reserved)

    def test_register_rejects_duplicate_id(self) -> None:
        class Imposter(Rule):
            id = "SC001"

        with pytest.raises(ConfigurationError, match="duplicate"):
            register(Imposter)
