"""Shared fixture: build a throwaway project tree for the linter.

Every rule test writes a minimal fake project (a ``pyproject.toml``
root, ``src/repro/...`` sources, optionally ``docs/``) into ``tmp_path``
and runs the real :func:`repro.lint.framework.run_lint` over it, so the
tests exercise scoping, suppression, and the finalize phase exactly as
the CLI does.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro.lint.framework import Finding, LintConfig, run_lint


class LintProject:
    """A scratch project directory the tests populate and lint."""

    def __init__(self, root: Path) -> None:
        self.root = root
        (root / "pyproject.toml").write_text("[project]\nname = 'x'\n")

    def write(self, rel_path: str, source: str) -> Path:
        path = self.root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    def lint(
        self,
        select: Optional[str] = None,
        paths: Optional[List[str]] = None,
    ) -> List[Finding]:
        config = LintConfig(
            select=frozenset([select]) if select else None,
            root=self.root,
        )
        result = run_lint(
            [str(self.root / p) for p in (paths or ["src"])], config
        )
        return list(result.findings)

    def rule_counts(self, **kwargs: object) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.lint(**kwargs):  # type: ignore[arg-type]
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


@pytest.fixture
def project(tmp_path: Path) -> LintProject:
    return LintProject(tmp_path)
