"""Positive/negative fixtures for every SC rule.

Each test builds a minimal fake project (see ``conftest.LintProject``)
and asserts the rule fires on the violating idiom and stays silent on
the compliant one, including the scope/exempt boundaries.
"""

from __future__ import annotations

from tests.lint.conftest import LintProject


class TestSC001Blocking:
    def test_time_sleep_in_async_def(self, project: LintProject) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import time

            async def handler():
                time.sleep(1)
            """,
        )
        findings = project.lint(select="SC001")
        assert len(findings) == 1
        assert findings[0].rule == "SC001"
        assert "time.sleep" in findings[0].message
        assert findings[0].line == 4

    def test_from_import_alias_resolves(self, project: LintProject) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            from time import sleep as snooze

            async def handler():
                snooze(1)
            """,
        )
        assert project.rule_counts(select="SC001") == {"SC001": 1}

    def test_module_prefix_call(self, project: LintProject) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import socket

            async def handler():
                socket.socket()
            """,
        )
        assert project.rule_counts(select="SC001") == {"SC001": 1}

    def test_bare_open_in_async(self, project: LintProject) -> None:
        # Two findings: blocking open() plus the unbounded fh.read().
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(path):
                with open(path) as fh:
                    return fh.read()
            """,
        )
        assert project.rule_counts(select="SC001") == {"SC001": 2}

    def test_unbounded_reader_read_flagged(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(reader):
                return await reader.read()
            """,
        )
        findings = project.lint(select="SC001")
        assert len(findings) == 1
        assert "unbounded .read()" in findings[0].message

    def test_read_to_eof_sentinel_flagged(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(reader):
                return await reader.read(-1)
            """,
        )
        findings = project.lint(select="SC001")
        assert len(findings) == 1
        assert "read-to-EOF" in findings[0].message

    def test_bounded_read_is_fine(self, project: LintProject) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(reader, remaining):
                return await reader.read(min(65536, remaining))
            """,
        )
        assert project.lint(select="SC001") == []

    def test_readexactly_nonconstant_flagged(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(reader, length):
                return await reader.readexactly(length)
            """,
        )
        findings = project.lint(select="SC001")
        assert len(findings) == 1
        assert "readexactly" in findings[0].message

    def test_readexactly_literal_is_fine(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(reader):
                return await reader.readexactly(16)
            """,
        )
        assert project.lint(select="SC001") == []

    def test_unbounded_read_in_sync_def_not_checked(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            def drain(reader):
                return reader.read()
            """,
        )
        assert project.lint(select="SC001") == []

    def test_sync_def_is_fine(self, project: LintProject) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import time

            def setup():
                time.sleep(1)
            """,
        )
        assert project.lint(select="SC001") == []

    def test_nested_sync_def_inherits_async_scope(
        self, project: LintProject
    ) -> None:
        # A helper defined inside a coroutine runs on the event loop
        # whenever the coroutine (or anything it hands the helper to)
        # calls it -- the blocking call is still a loop stall.
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import time

            async def handler():
                def sync_helper():
                    time.sleep(1)
                return sync_helper
            """,
        )
        assert project.rule_counts(select="SC001") == {"SC001": 1}

    def test_await_asyncio_sleep_is_fine(self, project: LintProject) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import asyncio

            async def handler():
                await asyncio.sleep(1)
            """,
        )
        assert project.lint(select="SC001") == []

    def test_outside_proxy_scope_not_checked(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/simulation/mod.py",
            """\
            import time

            async def handler():
                time.sleep(1)
            """,
        )
        assert project.lint(select="SC001") == []


class TestSC002Wire:
    def test_host_order_format_flagged(self, project: LintProject) -> None:
        project.write(
            "src/repro/protocol/mod.py",
            """\
            import struct

            def encode(value):
                return struct.pack("<I", value)
            """,
        )
        findings = project.lint(select="SC002")
        assert len(findings) == 1
        assert "network byte order" in findings[0].message

    def test_non_literal_format_flagged(self, project: LintProject) -> None:
        project.write(
            "src/repro/protocol/mod.py",
            """\
            import struct

            def encode(fmt, value):
                return struct.pack(fmt, value)
            """,
        )
        findings = project.lint(select="SC002")
        assert len(findings) == 1
        assert "statically verifiable" in findings[0].message

    def test_size_constant_mismatch(self, project: LintProject) -> None:
        project.write(
            "src/repro/protocol/mod.py",
            """\
            import struct

            FOO_HEADER_SIZE = 9
            _FOO_HEADER = struct.Struct("!II")
            """,
        )
        findings = project.lint(select="SC002")
        assert len(findings) == 1
        assert "packs 8 bytes" in findings[0].message
        assert "FOO_HEADER_SIZE declares 9" in findings[0].message

    def test_annotated_size_constant_still_seen(
        self, project: LintProject
    ) -> None:
        # Regression: a type annotation must not hide the constant.
        project.write(
            "src/repro/protocol/mod.py",
            """\
            import struct

            FOO_HEADER_SIZE: int = 9
            _FOO_HEADER = struct.Struct("!II")
            """,
        )
        assert project.rule_counts(select="SC002") == {"SC002": 1}

    def test_header_alias_maps_to_icp_header_size(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/protocol/mod.py",
            """\
            import struct

            ICP_HEADER_SIZE = 4
            _HEADER = struct.Struct("!II")
            """,
        )
        findings = project.lint(select="SC002")
        assert len(findings) == 1
        assert "ICP_HEADER_SIZE declares 4" in findings[0].message

    def test_matching_format_and_size_clean(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/protocol/mod.py",
            """\
            import struct

            FOO_HEADER_SIZE = 8
            _FOO_HEADER = struct.Struct("!II")

            def encode(a, b):
                return struct.pack("!II", a, b)
            """,
        )
        assert project.lint(select="SC002") == []

    def test_trace_record_layout_clean(self, project: LintProject) -> None:
        # The binary trace module's exact shape: header, record, and
        # string-table entry formats with their *_SIZE constants.
        project.write(
            "src/repro/traces/mod.py",
            """\
            import struct

            TRACE_HEADER_SIZE = 40
            _TRACE_HEADER = struct.Struct("!4sHHQQQQ")

            TRACE_RECORD_SIZE = 24
            _TRACE_RECORD = struct.Struct("!dIIII")

            STRING_ENTRY_SIZE = 2
            _STRING_ENTRY = struct.Struct("!H")
            """,
        )
        assert project.lint(select="SC002") == []

    def test_trace_record_size_drift_flagged(
        self, project: LintProject
    ) -> None:
        # Regression guard for the failure SC002 exists to catch: a
        # record format grows a field but the size constant is stale.
        project.write(
            "src/repro/traces/mod.py",
            """\
            import struct

            TRACE_RECORD_SIZE = 24
            _TRACE_RECORD = struct.Struct("!dIIIII")
            """,
        )
        findings = project.lint(select="SC002")
        assert len(findings) == 1
        assert "packs 28 bytes" in findings[0].message
        assert "TRACE_RECORD_SIZE declares 24" in findings[0].message

    def test_host_order_trace_record_flagged(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/traces/mod.py",
            """\
            import struct

            TRACE_RECORD_SIZE = 24
            _TRACE_RECORD = struct.Struct("=dIIII")
            """,
        )
        findings = project.lint(select="SC002")
        assert len(findings) == 1
        assert "network byte order" in findings[0].message


class TestSC003Metrics:
    def test_non_snake_case_name(self, project: LintProject) -> None:
        project.write(
            "src/repro/obs/mod.py",
            """\
            def setup(registry):
                registry.counter("Bad-Name")
            """,
        )
        findings = project.lint(select="SC003")
        assert len(findings) == 1
        assert "not snake_case" in findings[0].message

    def test_counter_without_total_suffix(self, project: LintProject) -> None:
        project.write(
            "src/repro/obs/mod.py",
            """\
            def setup(registry):
                registry.counter("requests")
            """,
        )
        findings = project.lint(select="SC003")
        assert len(findings) == 1
        assert "_total" in findings[0].message

    def test_gauge_with_total_suffix(self, project: LintProject) -> None:
        project.write(
            "src/repro/obs/mod.py",
            """\
            def setup(registry):
                registry.gauge("entries_total")
            """,
        )
        findings = project.lint(select="SC003")
        assert len(findings) == 1
        assert "must not end in '_total'" in findings[0].message

    def test_histogram_without_unit_suffix(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/obs/mod.py",
            """\
            def setup(registry):
                registry.histogram("latency")
            """,
        )
        findings = project.lint(select="SC003")
        assert len(findings) == 1
        assert "base-unit suffix" in findings[0].message

    def test_bound_method_alias_recognised(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/obs/mod.py",
            """\
            def setup(registry):
                c = registry.counter
                c("requests")
            """,
        )
        assert project.rule_counts(select="SC003") == {"SC003": 1}

    def test_kind_conflict_across_files(self, project: LintProject) -> None:
        project.write(
            "src/repro/obs/a.py",
            """\
            def setup(registry):
                registry.gauge("queue_depth")
            """,
        )
        project.write(
            "src/repro/obs/b.py",
            """\
            def setup(registry):
                registry.histogram("queue_depth")
            """,
        )
        findings = project.lint(select="SC003")
        conflict = [f for f in findings if "registered as" in f.message]
        assert len(conflict) == 1

    def test_doc_catalogue_two_way_check(self, project: LintProject) -> None:
        project.write(
            "src/repro/obs/mod.py",
            """\
            def setup(registry):
                registry.counter("hits_total")
                registry.gauge("entries")
            """,
        )
        project.write(
            "docs/observability.md",
            """\
            | name | kind | help |
            | --- | --- | --- |
            | `hits_total` | counter | cache hits |
            | `misses_total` | counter | cache misses |
            """,
        )
        findings = project.lint(select="SC003")
        messages = sorted(f.message for f in findings)
        assert len(findings) == 2
        assert any(
            "'entries' is not documented" in m for m in messages
        )
        assert any(
            "'misses_total' is not registered" in m for m in messages
        )

    def test_doc_kind_mismatch(self, project: LintProject) -> None:
        project.write(
            "src/repro/obs/mod.py",
            """\
            def setup(registry):
                registry.gauge("queue_depth")
            """,
        )
        project.write(
            "docs/observability.md",
            """\
            | `queue_depth` | histogram | queued work |
            """,
        )
        findings = project.lint(select="SC003")
        assert len(findings) == 1
        assert "documented as histogram" in findings[0].message

    def test_consistent_code_and_doc_clean(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/obs/mod.py",
            """\
            def setup(registry):
                registry.counter("hits_total")
                registry.histogram("latency_seconds")
            """,
        )
        project.write(
            "docs/observability.md",
            """\
            | `hits_total` | counter | cache hits |
            | `latency_seconds` | histogram | request latency |
            """,
        )
        assert project.lint(select="SC003") == []

    def test_no_docs_dir_skips_doc_check(self, project: LintProject) -> None:
        project.write(
            "src/repro/obs/mod.py",
            """\
            def setup(registry):
                registry.counter("hits_total")
            """,
        )
        assert project.lint(select="SC003") == []


class TestSC004Encapsulation:
    def test_direct_bit_mutation_outside_core(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/sharing/mod.py",
            """\
            def poke(remote):
                remote.bits.set(1)
            """,
        )
        findings = project.lint(select="SC004")
        assert len(findings) == 1
        assert "remote.bits.set(...)" in findings[0].message

    def test_bare_storage_name_mutation(self, project: LintProject) -> None:
        project.write(
            "src/repro/simulation/mod.py",
            """\
            def poke(counters):
                counters.increment(3)
            """,
        )
        assert project.rule_counts(select="SC004") == {"SC004": 1}

    def test_private_storage_access(self, project: LintProject) -> None:
        project.write(
            "src/repro/sharing/mod.py",
            """\
            def peek(array):
                return array._buf[0]
            """,
        )
        findings = project.lint(select="SC004")
        assert len(findings) == 1
        assert "._buf" in findings[0].message

    def test_self_private_access_allowed(self, project: LintProject) -> None:
        project.write(
            "src/repro/sharing/mod.py",
            """\
            class Wrapper:
                def peek(self):
                    return self._buf[0]
            """,
        )
        assert project.lint(select="SC004") == []

    def test_core_and_summaries_exempt(self, project: LintProject) -> None:
        source = """\
        def poke(remote):
            remote.bits.set(1)
        """
        project.write("src/repro/core/mod.py", source)
        project.write("src/repro/summaries/mod.py", source)
        assert project.lint(select="SC004") == []

    def test_non_storage_receiver_ignored(self, project: LintProject) -> None:
        project.write(
            "src/repro/sharing/mod.py",
            """\
            def ok(flags):
                flags.set(1)
                seen = set()
                seen.add(2)
            """,
        )
        assert project.lint(select="SC004") == []

    def test_placement_internals_outside_placement(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            def hijack(placement, member):
                placement._ring = placement._ring.with_member(member)
            """,
        )
        findings = project.lint(select="SC004")
        assert len(findings) == 2
        assert all("._ring" in f.message for f in findings)
        assert all("repro.placement" in f.message for f in findings)

    def test_ring_points_outside_placement(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/sharing/mod.py",
            """\
            def peek(ring, name):
                return ring._points[name]
            """,
        )
        assert project.rule_counts(select="SC004") == {"SC004": 1}

    def test_placement_package_touches_own_internals(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/placement/mod.py",
            """\
            def swap(placement, ring):
                placement._ring = ring
                return placement._self_name
            """,
        )
        assert project.lint(select="SC004") == []

    def test_placement_self_access_allowed(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            class Holder:
                def view(self):
                    return self._ring.members
            """,
        )
        assert project.lint(select="SC004") == []


class TestSC005Exceptions:
    def test_builtin_raise_flagged(self, project: LintProject) -> None:
        project.write(
            "src/repro/core/mod.py",
            """\
            def check(x):
                if x < 0:
                    raise ValueError("negative")
            """,
        )
        findings = project.lint(select="SC005")
        assert len(findings) == 1
        assert "builtin ValueError" in findings[0].message

    def test_bare_except_flagged(self, project: LintProject) -> None:
        project.write(
            "src/repro/core/mod.py",
            """\
            def swallow(fn):
                try:
                    fn()
                except:
                    pass
            """,
        )
        findings = project.lint(select="SC005")
        assert len(findings) == 1
        assert "bare 'except:'" in findings[0].message

    def test_domain_raise_and_reraise_clean(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/core/mod.py",
            """\
            from repro.errors import ConfigurationError

            def check(x):
                if x < 0:
                    raise ConfigurationError("negative")
                try:
                    return 1 / x
                except ZeroDivisionError:
                    raise
            """,
        )
        assert project.lint(select="SC005") == []

    def test_not_implemented_error_allowed(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/core/mod.py",
            """\
            def todo():
                raise NotImplementedError
            """,
        )
        assert project.lint(select="SC005") == []


_WIRE = """\
REPR_BLOOM = 0
REPR_EXACT = 1
"""

_CODEC_OK = """\
KIND_TO_REPRESENTATION = {
    "bloom": REPR_BLOOM,
    "exact": REPR_EXACT,
}
"""

_DOC_OK = """\
| id | constant | payload |
| --- | --- | --- |
| 0 | `REPR_BLOOM` | bit flips |
| 1 | `REPR_EXACT` | URL records |
"""


class TestSC006CodecSync:
    def test_consistent_trio_clean(self, project: LintProject) -> None:
        project.write("src/repro/protocol/wire.py", _WIRE)
        project.write("src/repro/summaries/codec.py", _CODEC_OK)
        project.write("docs/wire-protocol.md", _DOC_OK)
        assert project.lint(select="SC006") == []

    def test_annotated_mapping_still_found(
        self, project: LintProject
    ) -> None:
        # Regression: KIND_TO_REPRESENTATION carries a type annotation in
        # the real codec; the rule must still find the AnnAssign literal.
        project.write("src/repro/protocol/wire.py", _WIRE)
        project.write(
            "src/repro/summaries/codec.py",
            """\
            from typing import Dict

            KIND_TO_REPRESENTATION: Dict[str, int] = {
                "bloom": REPR_BLOOM,
                "exact": REPR_EXACT,
            }
            """,
        )
        project.write("docs/wire-protocol.md", _DOC_OK)
        assert project.lint(select="SC006") == []

    def test_missing_mapping_flagged(self, project: LintProject) -> None:
        project.write("src/repro/protocol/wire.py", _WIRE)
        project.write(
            "src/repro/summaries/codec.py", "OTHER = {}\n"
        )
        findings = project.lint(select="SC006")
        assert len(findings) == 1
        assert "no KIND_TO_REPRESENTATION" in findings[0].message

    def test_kind_maps_to_undefined_constant(
        self, project: LintProject
    ) -> None:
        project.write("src/repro/protocol/wire.py", _WIRE)
        project.write(
            "src/repro/summaries/codec.py",
            """\
            KIND_TO_REPRESENTATION = {
                "bloom": REPR_BLOOM,
                "exact": REPR_EXACT,
                "delta": REPR_DELTA,
            }
            """,
        )
        project.write("docs/wire-protocol.md", _DOC_OK)
        findings = project.lint(select="SC006")
        assert len(findings) == 1
        assert "REPR_DELTA" in findings[0].message
        assert "does not define" in findings[0].message

    def test_wire_constant_without_mapping_entry(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/protocol/wire.py",
            _WIRE + "REPR_SERVER_NAME = 2\n",
        )
        project.write("src/repro/summaries/codec.py", _CODEC_OK)
        project.write(
            "docs/wire-protocol.md",
            _DOC_OK + "| 2 | `REPR_SERVER_NAME` | server names |\n",
        )
        findings = project.lint(select="SC006")
        assert len(findings) == 1
        assert "REPR_SERVER_NAME" in findings[0].message
        assert "no KIND_TO_REPRESENTATION entry" in findings[0].message

    def test_doc_id_mismatch(self, project: LintProject) -> None:
        project.write("src/repro/protocol/wire.py", _WIRE)
        project.write("src/repro/summaries/codec.py", _CODEC_OK)
        project.write(
            "docs/wire-protocol.md",
            """\
            | 0 | `REPR_BLOOM` | bit flips |
            | 7 | `REPR_EXACT` | URL records |
            """,
        )
        findings = project.lint(select="SC006")
        assert len(findings) == 1
        assert "documented as id 7" in findings[0].message
        assert findings[0].path == "docs/wire-protocol.md"

    def test_doc_missing_constant(self, project: LintProject) -> None:
        project.write("src/repro/protocol/wire.py", _WIRE)
        project.write("src/repro/summaries/codec.py", _CODEC_OK)
        project.write(
            "docs/wire-protocol.md",
            "| 0 | `REPR_BLOOM` | bit flips |\n",
        )
        findings = project.lint(select="SC006")
        assert len(findings) == 1
        assert "REPR_EXACT" in findings[0].message
        assert "missing" in findings[0].message

    def test_doc_documents_undefined_constant(
        self, project: LintProject
    ) -> None:
        project.write("src/repro/protocol/wire.py", _WIRE)
        project.write("src/repro/summaries/codec.py", _CODEC_OK)
        project.write(
            "docs/wire-protocol.md",
            _DOC_OK + "| 9 | `REPR_GHOST` | never existed |\n",
        )
        findings = project.lint(select="SC006")
        assert len(findings) == 1
        assert "REPR_GHOST" in findings[0].message
        assert "not defined" in findings[0].message

    def test_doc_without_table_flagged(self, project: LintProject) -> None:
        project.write("src/repro/protocol/wire.py", _WIRE)
        project.write("src/repro/summaries/codec.py", _CODEC_OK)
        project.write(
            "docs/wire-protocol.md", "Prose only, no table here.\n"
        )
        findings = project.lint(select="SC006")
        assert len(findings) == 1
        assert "no representation-id table" in findings[0].message


class TestSC001NestedScopes:
    def test_blocking_call_in_lambda_inside_async(
        self, project: LintProject
    ) -> None:
        # A sort key runs on the loop when the coroutine calls sorted().
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import time

            async def handler(urls):
                return sorted(urls, key=lambda u: time.sleep(1))
            """,
        )
        assert project.rule_counts(select="SC001") == {"SC001": 1}

    def test_blocking_call_in_nested_sync_def_inside_async(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import time

            async def handler():
                def helper():
                    time.sleep(1)
                helper()
            """,
        )
        assert project.rule_counts(select="SC001") == {"SC001": 1}

    def test_blocking_call_in_comprehension_inside_async(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import socket

            async def handler(hosts):
                return [socket.gethostbyname(h) for h in hosts]
            """,
        )
        assert project.rule_counts(select="SC001") == {"SC001": 1}

    def test_module_level_sync_def_stays_exempt(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import time

            def sync_helper():
                time.sleep(1)
            """,
        )
        assert project.rule_counts(select="SC001") == {}


class TestSC007Races:
    def test_read_await_write_window_flagged(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/server.py",
            """\
            import asyncio

            class Proxy:
                async def handler(self):
                    n = len(self._cache)
                    await asyncio.sleep(0)
                    self._cache = {}
            """,
        )
        findings = project.lint(select="SC007")
        assert len(findings) == 1
        assert "_cache" in findings[0].message
        assert "stale" in findings[0].message

    def test_write_hidden_behind_helper_is_seen(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/server.py",
            """\
            import asyncio

            class Proxy:
                def _clear(self):
                    self._cache = {}

                async def handler(self):
                    n = len(self._cache)
                    await asyncio.sleep(0)
                    self._clear()
            """,
        )
        assert project.rule_counts(select="SC007") == {"SC007": 1}

    def test_fresh_read_after_await_revalidates(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/server.py",
            """\
            import asyncio

            class Proxy:
                async def handler(self):
                    n = len(self._cache)
                    await asyncio.sleep(0)
                    if self._cache:
                        self._cache = {}
            """,
        )
        assert project.rule_counts(select="SC007") == {}

    def test_common_lock_section_is_safe(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/server.py",
            """\
            import asyncio

            class Proxy:
                async def handler(self):
                    async with self._lock:
                        n = len(self._cache)
                        await asyncio.sleep(0)
                        self._cache = {}
            """,
        )
        assert project.rule_counts(select="SC007") == {}

    def test_single_writer_annotation_exempts(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/server.py",
            """\
            import asyncio

            class Proxy:
                async def handler(self):  # sc-lint: single-writer
                    n = len(self._cache)
                    await asyncio.sleep(0)
                    self._cache = {}
            """,
        )
        assert project.rule_counts(select="SC007") == {}

    def test_shared_state_annotation_extends_fields(
        self, project: LintProject
    ) -> None:
        # A file outside the seeded modules opts fields in explicitly.
        project.write(
            "src/repro/other/mod.py",
            """\
            import asyncio

            # sc-lint: shared-state=_table

            class Thing:
                async def handler(self):
                    n = len(self._table)
                    await asyncio.sleep(0)
                    self._table = {}
            """,
        )
        assert project.rule_counts(select="SC007") == {"SC007": 1}

    def test_no_await_between_read_and_write_is_atomic(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/server.py",
            """\
            class Proxy:
                async def handler(self):
                    n = len(self._cache)
                    self._cache = {}
            """,
        )
        assert project.rule_counts(select="SC007") == {}


class TestSC008Lifecycle:
    def test_span_leaks_across_await(self, project: LintProject) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(self, url):
                span = self.spans.start_span("fetch")
                body = await self._fetch(url)
                span.end("ok")
                return body
            """,
        )
        findings = project.lint(select="SC008")
        assert len(findings) == 1
        assert "span 'span' can leak" in findings[0].message
        assert "cancellation" in findings[0].message

    def test_span_in_with_statement_is_safe(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(self, url):
                with self.spans.start_span("fetch") as span:
                    body = await self._fetch(url)
                    span.end("ok")
                return body
            """,
        )
        assert project.rule_counts(select="SC008") == {}

    def test_span_with_try_finally_is_safe(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(self, url):
                span = self.spans.start_span("fetch")
                try:
                    return await self._fetch(url)
                finally:
                    span.end("ok")
            """,
        )
        assert project.rule_counts(select="SC008") == {}

    def test_pooled_connection_leak_on_exception_path(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(self, host, port):
                conn = await self._pool.acquire(host, port)
                body = await exchange(conn)
                self._pool.release(conn)
                return body
            """,
        )
        findings = project.lint(select="SC008")
        assert len(findings) == 1
        assert "pooled connection 'conn' can leak" in findings[0].message

    def test_return_escape_transfers_ownership(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            async def handler(self, host, port):
                conn = await self._pool.acquire(host, port)
                return conn
            """,
        )
        assert project.rule_counts(select="SC008") == {}

    def test_writer_closed_in_finally_is_safe(
        self, project: LintProject
    ) -> None:
        # Returns route through the finally suite; this fixture guards
        # the CFG fix that removed the false positive here.
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import asyncio

            async def handler(self, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    return await exchange(reader, writer)
                finally:
                    writer.close()
            """,
        )
        assert project.rule_counts(select="SC008") == {}

    def test_writer_without_close_is_flagged(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/proxy/mod.py",
            """\
            import asyncio

            async def handler(self, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                return await exchange(reader, writer)
            """,
        )
        findings = project.lint(select="SC008")
        assert len(findings) == 1
        assert "stream writer 'writer' can leak" in findings[0].message


class TestSC009Locks:
    def test_double_acquire_flagged(self, project: LintProject) -> None:
        project.write(
            "src/repro/any/mod.py",
            """\
            class Thing:
                async def handler(self):
                    async with self._lock:
                        async with self._lock:
                            pass
            """,
        )
        findings = project.lint(select="SC009")
        assert len(findings) == 1
        assert "double-acquire of self._lock" in findings[0].message

    def test_double_acquire_through_distinct_locks_ok(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/any/mod.py",
            """\
            class Thing:
                async def handler(self):
                    async with self._ring_lock:
                        async with self._io_lock:
                            pass
            """,
        )
        assert project.rule_counts(select="SC009") == {}

    def test_await_inside_no_await_section_flagged(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/any/mod.py",
            """\
            import asyncio

            class Thing:
                async def handler(self):
                    async with self._lock:  # sc-lint: no-await
                        await asyncio.sleep(0)
            """,
        )
        findings = project.lint(select="SC009")
        assert len(findings) == 1
        assert "annotated '# sc-lint: no-await'" in findings[0].message

    def test_await_inside_ordinary_section_ok(
        self, project: LintProject
    ) -> None:
        project.write(
            "src/repro/any/mod.py",
            """\
            import asyncio

            class Thing:
                async def handler(self):
                    async with self._lock:
                        await asyncio.sleep(0)
            """,
        )
        assert project.rule_counts(select="SC009") == {}

    def test_bare_acquire_flagged(self, project: LintProject) -> None:
        project.write(
            "src/repro/any/mod.py",
            """\
            class Thing:
                async def handler(self):
                    await self._lock.acquire()
                    try:
                        pass
                    finally:
                        self._lock.release()
            """,
        )
        findings = project.lint(select="SC009")
        assert len(findings) == 1
        assert "bare self._lock.acquire()" in findings[0].message
