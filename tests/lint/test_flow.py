"""Unit tests for the flow-graph engine behind SC007-SC009.

These pin the CFG semantics the rules depend on: event ordering, lock
context, effect expansion through ``self`` calls, and -- the two cases
that produced false positives during development -- returns routing
through ``finally`` suites and exception chains stopping at a
``finally`` level instead of conjuring a phantom straight-to-EXIT path.
"""

from __future__ import annotations

import ast
import textwrap
from typing import List, Optional, Set, Tuple

from repro.lint.flow import (
    EXIT,
    Event,
    EventPos,
    FlowGraph,
    build_flow_graph,
    class_method_effects,
    iter_async_functions,
)


def _graph(source: str, func_name: str = "handler") -> FlowGraph:
    tree = ast.parse(textwrap.dedent(source))
    for cls, func in iter_async_functions(tree):
        if func.name == func_name:
            effects = class_method_effects(cls) if cls is not None else {}
            return build_flow_graph(func, effects)
    raise AssertionError(f"no async def {func_name} in fixture")


def _events(graph: FlowGraph, kind: Optional[str] = None) -> List[Event]:
    return [
        event
        for _pos, event in graph.events()
        if kind is None or event.kind == kind
    ]


def _reachable(graph: FlowGraph, start: EventPos) -> List[Event]:
    """Every event reachable from *start* (exclusive), any path."""
    seen: Set[EventPos] = set()
    frontier = list(graph.successors(start))
    out: List[Event] = []
    while frontier:
        pos = frontier.pop()
        if pos in seen or pos[0] == EXIT:
            continue
        seen.add(pos)
        out.append(graph.blocks[pos[0]].events[pos[1]])
        frontier.extend(graph.successors(pos))
    return out


def _find(graph: FlowGraph, kind: str, attr: str = "") -> Tuple[EventPos, Event]:
    for pos, event in graph.events():
        if event.kind == kind and (not attr or event.attr == attr):
            return pos, event
    raise AssertionError(f"no {kind}/{attr} event in graph")


class TestEventOrdering:
    def test_read_await_write_sequence(self) -> None:
        graph = _graph(
            """\
            async def handler(self):
                n = len(self._cache)
                await helper()
                self._cache = {}
            """
        )
        kinds = [
            (e.kind, e.attr)
            for e in _events(graph)
            if e.kind in ("read", "await", "write")
        ]
        assert ("read", "_cache") in kinds
        assert ("write", "_cache") in kinds
        assert kinds.index(("read", "_cache")) < kinds.index(
            ("await", "")
        ) < kinds.index(("write", "_cache"))

    def test_self_call_expands_to_derived_effects(self) -> None:
        graph = _graph(
            """\
            class P:
                def _mutate(self):
                    self._cache = {}

                async def handler(self):
                    await other()
                    self._mutate()
            """
        )
        writes = _events(graph, "write")
        assert any(e.attr == "_cache" and e.derived for e in writes)

    def test_async_with_lock_context_wraps_body_events(self) -> None:
        graph = _graph(
            """\
            async def handler(self):
                async with self._lock:
                    self._cache = {}
                self._pending = {}
            """
        )
        by_attr = {e.attr: e for e in _events(graph, "write")}
        assert {chain for chain, _ in by_attr["_cache"].locks} == {
            "self._lock"
        }
        assert by_attr["_pending"].locks == ()


class TestFinallySemantics:
    def test_return_routes_through_finally(self) -> None:
        # The release in the finally must be on the path from the
        # return -- otherwise SC008 sees a leak on early returns.
        graph = _graph(
            """\
            async def handler(self):
                reader, writer = await helper()
                try:
                    return 1
                finally:
                    writer.close()
            """
        )
        ret_pos, _ = _find(graph, "return")
        after = _reachable(graph, ret_pos)
        assert any(
            e.kind == "call"
            and e.call_root == "writer"
            and e.call_method == "close"
            for e in after
        )

    def test_exception_chain_stops_at_finally(self) -> None:
        # An await inside try/finally may raise, but the exception runs
        # the finally suite; there is no direct await -> EXIT path that
        # skips it.
        graph = _graph(
            """\
            async def handler(self):
                writer = helper()
                try:
                    await send(writer)
                finally:
                    writer.close()
            """
        )
        for pos, event in graph.events():
            if event.kind != "await":
                continue
            for succ in graph.successors(pos):
                if succ[0] == EXIT:
                    raise AssertionError(
                        "await inside try/finally has a straight-to-EXIT "
                        "exceptional edge skipping the finally suite"
                    )

    def test_bare_except_does_not_catch_cancellation(self) -> None:
        # ``except Exception`` does not stop CancelledError: the await
        # keeps an exceptional continuation past the handler.
        graph = _graph(
            """\
            async def handler(self):
                try:
                    await helper()
                except Exception:
                    pass
                self._cache = {}
            """
        )
        pos, _ = _find(graph, "await")
        assert any(succ[0] == EXIT for succ in graph.successors(pos))

    def test_base_exception_handler_stops_chain(self) -> None:
        graph = _graph(
            """\
            async def handler(self):
                try:
                    await helper()
                except BaseException:
                    pass
                self._cache = {}
            """
        )
        pos, _ = _find(graph, "await")
        assert not any(succ[0] == EXIT for succ in graph.successors(pos))


class TestBranchesAndLoops:
    def test_both_branches_reachable_from_test(self) -> None:
        graph = _graph(
            """\
            async def handler(self, flag):
                n = len(self._cache)
                if flag:
                    self._cache = {}
                else:
                    self._pending = {}
            """
        )
        read_pos, _ = _find(graph, "read", "_cache")
        attrs = {
            e.attr for e in _reachable(graph, read_pos) if e.kind == "write"
        }
        assert attrs == {"_cache", "_pending"}

    def test_while_loop_back_edge(self) -> None:
        # A write after an await in a loop body is reachable from a
        # read later in the same body via the back edge.
        graph = _graph(
            """\
            async def handler(self):
                while True:
                    await helper()
                    self._cache = {}
            """
        )
        write_pos, _ = _find(graph, "write", "_cache")
        again = _reachable(graph, write_pos)
        assert any(e.kind == "await" for e in again)
        assert any(
            e.kind == "write" and e.attr == "_cache" for e in again
        )
