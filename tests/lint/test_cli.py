"""CLI surface: ``python -m repro.lint`` and ``summary-cache lint``.

Exit-code contract: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as summary_cache_main
from repro.lint.cli import main as lint_main
from tests.lint.conftest import LintProject

_VIOLATION = """\
def check(x):
    raise ValueError("negative")
"""


def _args(project: LintProject, *extra: str) -> list:
    return [str(project.root / "src"), "--root", str(project.root), *extra]


class TestLintMain:
    def test_clean_run_exits_zero(
        self, project: LintProject, capsys: pytest.CaptureFixture
    ) -> None:
        project.write("src/repro/core/mod.py", "x = 1\n")
        assert lint_main(_args(project)) == 0
        out = capsys.readouterr().out
        assert "clean: 1 file(s)" in out

    def test_findings_exit_one(
        self, project: LintProject, capsys: pytest.CaptureFixture
    ) -> None:
        project.write("src/repro/core/mod.py", _VIOLATION)
        assert lint_main(_args(project)) == 1
        out = capsys.readouterr().out
        assert "SC005" in out
        assert "src/repro/core/mod.py:2:" in out

    def test_missing_path_exits_two(
        self, project: LintProject, capsys: pytest.CaptureFixture
    ) -> None:
        assert lint_main([str(project.root / "nowhere")]) == 2
        assert "sc-lint: error:" in capsys.readouterr().out

    def test_unknown_rule_id_exits_two(
        self, project: LintProject, capsys: pytest.CaptureFixture
    ) -> None:
        project.write("src/repro/core/mod.py", "x = 1\n")
        assert lint_main(_args(project, "--select", "SC999")) == 2
        assert "unknown rule ids: SC999" in capsys.readouterr().out

    def test_json_format(
        self, project: LintProject, capsys: pytest.CaptureFixture
    ) -> None:
        project.write("src/repro/core/mod.py", _VIOLATION)
        assert lint_main(_args(project, "--format", "json")) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["counts"] == {"SC005": 1}

    def test_select_and_ignore_flags(
        self, project: LintProject, capsys: pytest.CaptureFixture
    ) -> None:
        project.write("src/repro/core/mod.py", _VIOLATION)
        assert lint_main(_args(project, "--ignore", "SC005")) == 0
        capsys.readouterr()
        assert lint_main(_args(project, "--select", "SC005")) == 1

    def test_list_rules(self, capsys: pytest.CaptureFixture) -> None:
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SC001", "SC002", "SC003", "SC004", "SC005", "SC006"):
            assert rule_id in out
        assert "repro/proxy" in out  # scopes are shown


class TestSummaryCacheSubcommand:
    def test_lint_subcommand_clean(
        self, project: LintProject, capsys: pytest.CaptureFixture
    ) -> None:
        project.write("src/repro/core/mod.py", "x = 1\n")
        code = summary_cache_main(["lint", *_args(project)])
        assert code == 0
        assert "clean:" in capsys.readouterr().out

    def test_lint_subcommand_findings(
        self, project: LintProject, capsys: pytest.CaptureFixture
    ) -> None:
        project.write("src/repro/core/mod.py", _VIOLATION)
        code = summary_cache_main(["lint", *_args(project)])
        assert code == 1
        assert "SC005" in capsys.readouterr().out


class TestSelfClean:
    def test_repo_sources_are_lint_clean(
        self, capsys: pytest.CaptureFixture
    ) -> None:
        """The acceptance gate: ``summary-cache lint src`` exits 0."""
        repo_root = Path(__file__).resolve().parents[2]
        src = repo_root / "src"
        if not src.is_dir():  # running from an installed package
            pytest.skip("repo source tree not available")
        code = lint_main([str(src), "--root", str(repo_root)])
        out = capsys.readouterr().out
        assert code == 0, f"sc-lint findings in src:\n{out}"
