#!/usr/bin/env python3
"""Scenario: characterize a workload before configuring cache sharing.

Before deploying summary cache, an operator wants to know whether the
workload can benefit at all: how skewed is document popularity, how
heavy is the size tail, how much do the user groups' working sets
overlap, and how far apart are re-references.  This script runs the
trace-characterization toolkit over a workload (a preset, or any trace
file readable by ``repro.traces.readers``) and turns the measurements
into configuration advice.

Run:  python examples/workload_analysis.py [--workload dec] [--trace file.jsonl]
"""

import argparse

from repro.analysis.tables import format_table
from repro.traces import (
    compute_stats,
    fit_zipf_alpha,
    group_overlap_matrix,
    interreference_percentiles,
    make_workload,
    read_jsonl,
    sharing_potential,
    size_statistics,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="dec")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--trace", help="JSONL trace file (overrides --workload)"
    )
    parser.add_argument("--groups", type=int, default=None)
    args = parser.parse_args()

    if args.trace:
        trace = read_jsonl(args.trace)
        groups = args.groups or 4
    else:
        trace, groups = make_workload(args.workload, scale=args.scale)
        groups = args.groups or groups

    stats = compute_stats(trace)
    print(
        f"trace {trace.name!r}: {stats.num_requests} requests, "
        f"{stats.num_clients} clients, {groups} proxy groups\n"
    )

    # Popularity and sizes.
    alpha = fit_zipf_alpha(trace)
    sizes = size_statistics(trace)
    print(
        format_table(
            ("property", "value", "reading"),
            [
                (
                    "zipf alpha",
                    f"{alpha:.2f}",
                    "web traces: 0.6-0.9; higher = more cacheable",
                ),
                (
                    "mean / median size",
                    f"{sizes.mean:.0f} / {sizes.median:.0f} B",
                    "mean >> median = heavy tail",
                ),
                (
                    "p99 / max size",
                    f"{sizes.p99 / 1024:.0f} KB / {sizes.max / 1024:.0f} KB",
                    "documents above 250 KB are never cached",
                ),
                (
                    "size tail index",
                    f"{sizes.tail_index:.2f}",
                    "Pareto alpha; the paper's benchmark uses 1.1",
                ),
                (
                    "max hit ratio",
                    f"{stats.max_hit_ratio:.3f}",
                    "infinite-cache ceiling",
                ),
            ],
            title="Workload character",
        )
    )

    # Reuse distances: how big must a cache be?
    distances = interreference_percentiles(trace, percentiles=(50, 90, 99))
    print()
    print(
        format_table(
            ("percentile", "inter-reference distance (requests)"),
            [(f"p{int(p)}", f"{d:,.0f}") for p, d in distances.items()],
            title="Re-reference distances",
        )
    )

    # Sharing: is cooperation worth the protocol?
    potential = sharing_potential(trace, groups)
    matrix = group_overlap_matrix(trace, groups)
    off_diagonal = [
        matrix[i][j]
        for i in range(groups)
        for j in range(groups)
        if i != j
    ]
    mean_overlap = sum(off_diagonal) / len(off_diagonal)
    print()
    print(
        format_table(
            ("property", "value", "reading"),
            [
                (
                    "sharing potential",
                    f"{potential:.3f}",
                    "upper bound on the remote-hit ratio",
                ),
                (
                    "mean group overlap",
                    f"{mean_overlap:.3f}",
                    "fraction of one group's documents another also uses",
                ),
            ],
            title="Sharing prospects",
        )
    )

    print("\nAdvice:")
    if potential < 0.03:
        print(
            "  - sharing potential is tiny: cooperation will not pay for"
            " its protocol overhead here."
        )
    else:
        print(
            f"  - up to {potential:.0%} of requests could become remote"
            " hits: cache sharing is worthwhile."
        )
        print(
            "  - use Bloom summaries at load factor 8-16 and a 1%-10%"
            " update threshold (paper Section V-E)."
        )
    if sizes.mean > 0 and sizes.p99 > 250 * 1024:
        print(
            "  - the size tail crosses the 250 KB cacheability limit:"
            " the largest documents will always go to the origin."
        )


if __name__ == "__main__":
    main()
