#!/usr/bin/env python3
"""Scenario: capacity-planning a national cache mesh (Section V-F).

You operate N proxies and must pick the Bloom filter load factor, hash
count, and update threshold.  This script explores the design space with
the analytic model and prints the trade-off tables the paper's
Section V-F sketches for 100 proxies, then sanity-checks one design
point against the analytic false-positive formula with a real filter.

Run:  python examples/deployment_planning.py [--proxies 100]
"""

import argparse

from repro.analysis.scalability import extrapolate
from repro.analysis.tables import format_table
from repro.core.bfmath import (
    false_positive_probability,
    optimal_integer_num_hashes,
)
from repro.core.bloom import BloomFilter
from repro.core.hashing import MD5HashFamily


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--proxies", type=int, default=100)
    parser.add_argument("--cache-gb", type=float, default=8.0)
    args = parser.parse_args()
    n = args.proxies
    cache_bytes = int(args.cache_gb * 2**30)

    # ------------------------------------------------------------------
    # Sweep the load factor: memory vs false-hit queries.
    # ------------------------------------------------------------------
    rows = []
    for load_factor in (4, 8, 16, 32):
        k = optimal_integer_num_hashes(load_factor)
        est = extrapolate(
            num_proxies=n,
            cache_bytes=cache_bytes,
            load_factor=load_factor,
            num_hashes=min(k, 10),
        )
        rows.append(
            (
                load_factor,
                min(k, 10),
                f"{est.summary_memory_bytes / 2**20:.0f} MB",
                f"{est.false_positive_per_filter:.3%}",
                f"{est.false_hit_queries_per_request:.4f}",
            )
        )
    print(
        format_table(
            (
                "load factor",
                "hashes",
                "summary DRAM/proxy",
                "p(false positive)",
                "false-hit queries/req",
            ),
            rows,
            title=f"Load factor trade-off for {n} proxies",
        )
    )

    # ------------------------------------------------------------------
    # Sweep the update threshold: staleness vs update traffic.
    # ------------------------------------------------------------------
    rows = []
    for threshold in (0.001, 0.01, 0.05, 0.10):
        est = extrapolate(
            num_proxies=n,
            cache_bytes=cache_bytes,
            update_threshold=threshold,
        )
        rows.append(
            (
                f"{threshold * 100:g}%",
                f"{est.requests_between_updates:,.0f}",
                f"{est.update_messages_per_request:.4f}",
            )
        )
    print()
    print(
        format_table(
            (
                "update threshold",
                "requests between updates",
                "update msgs/request",
            ),
            rows,
            title="Update threshold trade-off",
        )
    )

    # ------------------------------------------------------------------
    # The paper's recommended design point, spelled out.
    # ------------------------------------------------------------------
    est = extrapolate(num_proxies=n, cache_bytes=cache_bytes)
    print("\nRecommended configuration (paper Section V-E/V-F):")
    print("  " + est.summary())

    # ------------------------------------------------------------------
    # Empirical spot-check of the analytic false-positive rate.
    # ------------------------------------------------------------------
    print("\nEmpirical check (10k keys, load factor 16, k = 4):")
    filt = BloomFilter.for_capacity(
        10_000, load_factor=16, hash_family=MD5HashFamily(4)
    )
    for i in range(10_000):
        filt.add(f"http://host{i % 997}.net/obj/{i}")
    trials = 20_000
    false_hits = sum(
        filt.may_contain(f"http://absent{i}.org/x") for i in range(trials)
    )
    predicted = false_positive_probability(16, 4)
    print(
        f"  measured {false_hits / trials:.4%} vs "
        f"analytic {predicted:.4%}"
    )


if __name__ == "__main__":
    main()
