#!/usr/bin/env python3
"""Scenario: run a real SC-ICP proxy cluster on localhost.

Boots one origin server and four cooperating proxies speaking actual
ICP v2 (+ ``ICP_OP_DIRUPDATE``) over UDP and the HTTP subset over TCP,
replays a synthetic regional-ISP workload through them in all three
modes, and prints the Table II-style comparison from live socket
traffic.

Run:  python examples/proxy_cluster.py [--requests 1200]
"""

import argparse
import asyncio
import time

from repro.analysis.tables import format_table
from repro.core.summary import SummaryConfig
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


async def run_mode(mode: ProxyMode, trace, cache_capacity: int):
    config = ProxyConfig(
        summary=SummaryConfig(kind="bloom", load_factor=8),
        expected_doc_size=2048,
        update_threshold=0.01,
    )
    started = time.perf_counter()
    async with ProxyCluster(
        num_proxies=4,
        mode=mode,
        cache_capacity=cache_capacity,
        origin_delay=0.002,  # stand-in for the paper's 1 s WAN delay
        base_config=config,
    ) as cluster:
        result = await cluster.replay(trace, clients_per_proxy=4)
    wall = time.perf_counter() - started
    return result, wall


async def main_async(num_requests: int) -> None:
    trace = generate_trace(
        SyntheticTraceConfig(
            name="regional-isp",
            num_requests=num_requests,
            num_clients=32,
            num_documents=max(200, num_requests // 3),
            mean_size=2048,
            max_size=64 * 1024,
            mod_probability=0.0,
            seed=77,
        )
    )
    print(
        f"replaying {len(trace)} requests from "
        f"{len(trace.clients())} clients through 4 proxies "
        f"(real sockets on localhost)\n"
    )

    rows = []
    for mode in (ProxyMode.NO_ICP, ProxyMode.ICP, ProxyMode.SC_ICP):
        result, wall = await run_mode(mode, trace, cache_capacity=2**20)
        remote = sum(s.remote_hits for s in result.proxy_stats)
        queries = sum(s.icp_queries_sent for s in result.proxy_stats)
        updates = sum(s.dirupdates_sent for s in result.proxy_stats)
        false_rounds = sum(
            s.false_query_rounds for s in result.proxy_stats
        )
        rows.append(
            (
                mode.value,
                f"{result.total_hit_ratio:.3f}",
                remote,
                result.udp_total,
                queries,
                updates,
                false_rounds,
                f"{result.client_report.mean_latency * 1000:.1f} ms",
                f"{wall:.1f} s",
            )
        )

    print(
        format_table(
            (
                "mode",
                "hit-ratio",
                "remote-hits",
                "udp-sent",
                "queries",
                "dir-updates",
                "false-rounds",
                "latency",
                "wall",
            ),
            rows,
            title="Prototype cluster, live measurement (cf. Table II)",
        )
    )
    print(
        "\nReading the table: ICP finds the same remote hits as SC-ICP"
        "\nbut floods a query to every peer on every miss; SC-ICP's"
        "\nqueries collapse to (almost) only the ones that pay off,"
        "\ntraded against a stream of DIRUPDATE messages."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=1200)
    args = parser.parse_args()
    asyncio.run(main_async(args.requests))


if __name__ == "__main__":
    main()
