#!/usr/bin/env python3
"""Quickstart: the summary cache building blocks in five minutes.

Walks through the paper's core machinery:

1. a counting Bloom filter summarizing a cache directory;
2. delta updates keeping a peer's copy in sync (``ICP_OP_DIRUPDATE``);
3. the false-positive math that sizes the filter;
4. a cache wired to its summary via callbacks.

Run:  python examples/quickstart.py
"""

from repro import CountingBloomFilter, WebCache
from repro.core.bfmath import (
    false_positive_probability,
    optimal_integer_num_hashes,
)
from repro.core.bloom import BloomFilter
from repro.protocol import (
    apply_dir_update,
    build_dir_update_messages,
    decode_message,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A proxy summarizes its own directory with a counting filter.
    # ------------------------------------------------------------------
    print("=== 1. Counting Bloom filter (the proxy's local summary) ===")
    summary = CountingBloomFilter.for_capacity(10_000, load_factor=8)
    urls = [f"http://server{i % 50}.edu/page/{i}" for i in range(2_000)]
    for url in urls:
        summary.add(url)
    print(f"inserted {len(urls)} URLs into {summary!r}")

    probe = urls[123]
    print(f"may_contain({probe!r}) -> {summary.may_contain(probe)}")
    summary.remove(probe)
    print(f"after remove            -> {summary.may_contain(probe)}")
    summary.add(probe)  # put it back for step 2

    # ------------------------------------------------------------------
    # 2. Peers hold plain-filter copies, patched by DIRUPDATE messages.
    # ------------------------------------------------------------------
    print("\n=== 2. Delta updates over the wire ===")
    peer_copy = BloomFilter(summary.num_bits, hash_family=summary.hash_family)
    flips = summary.drain_flips()
    messages = build_dir_update_messages(
        flips, summary.hash_family, summary.num_bits, mtu=1400
    )
    print(
        f"{len(flips)} bit flips -> {len(messages)} UDP-sized "
        f"ICP_OP_DIRUPDATE messages"
    )
    for message in messages:
        datagram = message.encode()  # bytes on the wire
        apply_dir_update(peer_copy, decode_message(datagram))
    print(
        "peer copy agrees with local filter:",
        peer_copy == summary.snapshot(),
    )

    # ------------------------------------------------------------------
    # 3. The math: how big should the filter be?
    # ------------------------------------------------------------------
    print("\n=== 3. Sizing the filter (Fig. 4) ===")
    for load_factor in (8, 16, 32):
        p4 = false_positive_probability(load_factor, 4)
        k_opt = optimal_integer_num_hashes(load_factor)
        p_opt = false_positive_probability(load_factor, k_opt)
        print(
            f"load factor {load_factor:2d}: false positives "
            f"{p4:7.4%} with k=4, {p_opt:7.4%} with optimal k={k_opt}"
        )

    # ------------------------------------------------------------------
    # 4. A cache that keeps its summary in sync automatically.
    # ------------------------------------------------------------------
    print("\n=== 4. Cache + summary, wired by callbacks ===")
    live = CountingBloomFilter.for_capacity(100, load_factor=8)
    cache = WebCache(
        capacity_bytes=64 * 1024,
        on_insert=live.add,
        on_evict=live.remove,
    )
    for i in range(200):
        cache.put(f"http://campus.edu/doc{i}", 1024)
    in_cache = sum(1 for u in cache.urls() if live.may_contain(u))
    print(
        f"cache holds {len(cache)} documents "
        f"({cache.used_bytes} bytes); summary confirms "
        f"{in_cache}/{len(cache)} (no false negatives, ever)"
    )
    evicted_url = "http://campus.edu/doc0"  # long evicted by LRU
    print(
        f"evicted URL still in summary? "
        f"{live.may_contain(evicted_url)} (counters removed it)"
    )


if __name__ == "__main__":
    main()
