#!/usr/bin/env python3
"""Scenario: eight university departments deciding whether to share caches.

This is the paper's motivating situation -- "each department in a
university has its own proxy cache, and the caches collaborate."  The
script answers the questions an administrator would ask, using the
trace-driven simulators:

1. How much does sharing improve our hit ratio?  (Fig. 1)
2. What does discovery cost under ICP vs summary cache?  (Figs. 7/8)
3. How stale can summaries be before we lose hits?  (Fig. 2)
4. How much DRAM do the summaries take?  (Table III)

Run:  python examples/campus_cache_sharing.py [--scale 1.0]
"""

import argparse

from repro.analysis.tables import format_table
from repro.core.summary import SummaryConfig
from repro.sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_global_cache,
    simulate_icp,
    simulate_no_sharing,
    simulate_simple_sharing,
    simulate_summary_sharing,
)
from repro.traces import compute_stats, make_workload, mean_cacheable_size


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    # The UPisa preset models a university department population.
    trace, groups = make_workload("upisa", scale=args.scale)
    stats = compute_stats(trace)
    capacity = int(stats.infinite_cache_bytes * 0.10 / groups)
    doc_size = mean_cacheable_size(trace)
    print(
        f"workload: {stats.num_requests} requests from "
        f"{stats.num_clients} clients across {groups} departments; "
        f"each proxy gets {capacity / 1024:.0f} KB of cache "
        f"(10% of the {stats.infinite_cache_bytes / 2**20:.1f} MB "
        f"working set)\n"
    )

    # ------------------------------------------------------------------
    # 1. Is sharing worth it at all?
    # ------------------------------------------------------------------
    alone = simulate_no_sharing(trace, groups, capacity)
    shared = simulate_simple_sharing(trace, groups, capacity)
    pooled = simulate_global_cache(trace, groups, capacity)
    print(
        format_table(
            ("scheme", "hit ratio", "extra hits vs alone"),
            [
                ("each department alone", f"{alone.total_hit_ratio:.3f}", "-"),
                (
                    "simple sharing (ICP-style)",
                    f"{shared.total_hit_ratio:.3f}",
                    f"+{(shared.total_hit_ratio - alone.total_hit_ratio) * 100:.1f} pp",
                ),
                (
                    "one pooled cache",
                    f"{pooled.total_hit_ratio:.3f}",
                    f"+{(pooled.total_hit_ratio - alone.total_hit_ratio) * 100:.1f} pp",
                ),
            ],
            title="1. The benefit of sharing (Fig. 1)",
        )
    )
    print(
        "\n-> simple sharing captures nearly all of the pooled cache's"
        " benefit without any coordination of replacements.\n"
    )

    # ------------------------------------------------------------------
    # 2. Discovery cost: ICP floods vs Bloom summaries.
    # ------------------------------------------------------------------
    icp = simulate_icp(trace, groups, capacity)
    # The update threshold is a fraction of *cached documents*: a campus
    # cache at this scale holds only a few hundred documents, so the
    # paper's 1% would ship an update every couple of requests.  Scale
    # the threshold so updates fire about every ~150 requests per proxy,
    # the regime the paper's full-size traces operate in.
    docs_per_cache = max(1, capacity // doc_size)
    threshold = min(0.10, max(0.01, 50.0 / docs_per_cache))
    bloom_cfg = SummarySharingConfig(
        summary=SummaryConfig(kind="bloom", load_factor=16),
        update_policy=ThresholdUpdatePolicy(threshold),
        expected_doc_size=doc_size,
    )
    bloom = simulate_summary_sharing(trace, groups, capacity, bloom_cfg)
    rows = []
    for name, r in (("ICP", icp), ("summary cache (bloom-16)", bloom)):
        rows.append(
            (
                name,
                f"{r.total_hit_ratio:.3f}",
                f"{r.messages_per_request:.3f}",
                f"{r.message_bytes_per_request:.0f}",
            )
        )
    print(
        format_table(
            ("protocol", "hit ratio", "msgs/request", "bytes/request"),
            rows,
            title="2. Discovery cost (Figs. 7-8)",
        )
    )
    factor = icp.messages_per_request / max(
        1e-9, bloom.messages_per_request
    )
    query_factor = icp.messages.query_messages / max(
        1, bloom.messages.query_messages
    )
    print(
        f"\n-> summary cache sends {factor:.1f}x fewer interproxy"
        f" messages overall ({query_factor:.0f}x fewer per-miss"
        f" queries) at nearly the same hit ratio; the factor grows"
        f" with cache size (the paper's full-size traces reach"
        f" 25-60x).\n"
    )

    # ------------------------------------------------------------------
    # 3. How stale may summaries become?
    # ------------------------------------------------------------------
    rows = []
    for threshold in (0.0, 0.01, 0.05, 0.10):
        cfg = SummarySharingConfig(
            summary=SummaryConfig(kind="exact-directory"),
            update_policy=ThresholdUpdatePolicy(threshold),
            expected_doc_size=doc_size,
        )
        r = simulate_summary_sharing(trace, groups, capacity, cfg)
        rows.append(
            (
                f"{threshold * 100:g}%",
                f"{r.total_hit_ratio:.4f}",
                f"{r.false_miss_ratio:.4f}",
            )
        )
    print(
        format_table(
            ("update threshold", "hit ratio", "false-miss ratio"),
            rows,
            title="3. Tolerating stale summaries (Fig. 2)",
        )
    )
    print(
        "\n-> delaying updates until 1% of the cache is new costs"
        " almost nothing.\n"
    )

    # ------------------------------------------------------------------
    # 4. Memory bill per department.
    # ------------------------------------------------------------------
    rows = []
    for kind, lf in (
        ("exact-directory", 8),
        ("bloom", 8),
        ("bloom", 16),
    ):
        cfg = SummarySharingConfig(
            summary=SummaryConfig(kind=kind, load_factor=lf),
            update_policy=ThresholdUpdatePolicy(0.01),
            expected_doc_size=doc_size,
        )
        r = simulate_summary_sharing(trace, groups, capacity, cfg)
        label = kind if kind != "bloom" else f"bloom-{lf}"
        rows.append(
            (
                label,
                f"{r.summary_memory_bytes / 1024:.1f} KB",
                f"{r.summary_memory_ratio * 100:.2f}%",
            )
        )
    print(
        format_table(
            ("representation", "DRAM per proxy", "% of cache size"),
            rows,
            title="4. Summary memory (Table III)",
        )
    )


if __name__ == "__main__":
    main()
