"""Ablation: unicast vs multicast dissemination of summary updates.

The paper: "update messages can be transferred via a nonreliable
multicast scheme" while its Fig. 7/8 accounting assumes unicast ("All
messages are assumed to be uni-cast messages").  This ablation recomputes
the message economy under multicast delivery (one transmission per
update regardless of fan-out) from the same simulations.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.traces.workloads import WORKLOAD_PRESETS

from benchmarks._shared import representation_sweep, write_result


def test_ablation_multicast_updates(benchmark):
    workloads = ("dec", "upisa")

    def collect():
        return {w: representation_sweep(w) for w in workloads}

    all_results = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for workload, results in all_results.items():
        fanout = WORKLOAD_PRESETS[workload].num_groups - 1
        r = results["bloom-16"]
        unicast_updates = r.messages.update_messages
        multicast_updates = unicast_updates // fanout
        unicast_total = r.messages.total_messages
        multicast_total = (
            r.messages.query_messages + multicast_updates
        )
        # Multicast removes the (n-1) fan-out from updates only.
        assert multicast_total < unicast_total
        savings = 1 - multicast_total / unicast_total
        rows.append(
            (
                workload,
                fanout + 1,
                f"{unicast_total / r.requests:.4f}",
                f"{multicast_total / r.requests:.4f}",
                f"{savings:.1%}",
            )
        )

    # DEC's 16-way fan-out benefits more than UPisa's 8-way.
    assert float(rows[0][4].rstrip("%")) > float(rows[1][4].rstrip("%"))

    write_result(
        "ablation_multicast_updates",
        format_table(
            (
                "trace",
                "proxies",
                "unicast msgs/req",
                "multicast msgs/req",
                "savings",
            ),
            rows,
            title=(
                "Ablation: unicast vs multicast update dissemination "
                "(bloom-16, threshold 1%)"
            ),
        ),
    )
