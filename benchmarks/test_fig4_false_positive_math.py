"""Fig. 4: probability of false positives vs bits per entry.

Regenerates both curves (k = 4 and the optimal integral k) plus the
example-values table of Section V-C, and cross-checks the analytic
curve against a real Bloom filter empirically.
"""

from __future__ import annotations

import pytest

from repro import experiments
from repro.analysis.tables import format_table
from repro.core.bfmath import (
    example_table,
    false_positive_probability,
    fig4_series,
)
from repro.core.bloom import BloomFilter

from benchmarks._shared import write_result


def test_fig4_curves(benchmark):
    headers, rows = benchmark.pedantic(
        experiments.fig4, rounds=1, iterations=1
    )
    xs, top, bottom = fig4_series()

    # The paper's anchor point: m/n = 10, k = 4 -> 1.2%; optimal -> <1%.
    p_at_10_k4 = top[xs.index(10)]
    assert p_at_10_k4 == pytest.approx(0.0118, abs=0.001)
    assert bottom[xs.index(10)] < 0.01

    # Log-linear decrease (the straight line on Fig. 4's log axis).
    assert all(b <= t * 1.0001 for t, b in zip(top, bottom))
    assert top == sorted(top, reverse=True)

    write_result(
        "fig4_false_positive_math",
        format_table(
            headers,
            rows,
            title="Fig. 4: false-positive probability vs bits/entry",
        )
        + "\n\nExample values (Section V-C): (m/n, k=4, p, k_opt, p_opt)\n"
        + "\n".join(
            f"  {lf:2d}  4  {p4:.3e}  {kopt:2d}  {popt:.3e}"
            for lf, _k4, p4, kopt, popt in example_table()
        ),
    )


def test_fig4_empirical_agreement(benchmark):
    """A real filter at load factor 8 matches the analytic prediction."""

    def measure():
        n = 5000
        filt = BloomFilter(8 * n)
        for i in range(n):
            filt.add(f"http://h{i}.com/d{i}")
        trials = 20_000
        false_positives = sum(
            filt.may_contain(f"http://absent{i}.org/q")
            for i in range(trials)
        )
        return false_positives / trials

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    predicted = false_positive_probability(8, 4)
    assert measured == pytest.approx(predicted, abs=0.006)
