"""Ablation: load imbalance across proxy groups.

Section III: "separate simulations have confirmed that in case of
severe load imbalance, the global cache will have a better cache hit
ratio, and therefore it is important to allocate cache size of each
proxy to be proportional to its user population size."

This ablation compares simple sharing with fixed equal per-proxy
caches against the global cache under increasingly skewed client
activity, then applies the paper's remedy -- caches sized proportional
to each proxy's load -- and checks it closes the gap.
"""

from __future__ import annotations

from repro.sharing.schemes import (
    simulate_global_cache,
    simulate_simple_sharing,
)
from repro.analysis.tables import format_table
from repro.traces.stats import compute_stats
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

from benchmarks._shared import write_result

GROUPS = 8


def make_trace(client_alpha: float):
    return generate_trace(
        SyntheticTraceConfig(
            name=f"imbalance-a{client_alpha:g}",
            num_requests=40_000,
            num_clients=GROUPS,  # one client per group: alpha directly
            # skews per-proxy load
            client_alpha=client_alpha,
            num_documents=25_000,
            zipf_alpha=0.75,
            locality_probability=0.3,
            mean_size=2 * 1024,
            max_size=1024 * 1024,
            mod_probability=0.0,
            seed=202,
        )
    )


def test_ablation_load_imbalance(benchmark):
    alphas = (0.0, 1.0, 2.5)

    def sweep():
        results = {}
        for alpha in alphas:
            trace = make_trace(alpha)
            stats = compute_stats(trace)
            total = max(GROUPS, int(stats.infinite_cache_bytes * 0.10))
            capacity = max(1, total // GROUPS)
            shares = [0] * GROUPS
            for req in trace:
                shares[req.client_id % GROUPS] += 1
            busiest = max(shares) / len(trace)
            # The paper's remedy: per-proxy caches proportional to load.
            proportional = [
                max(1, int(total * share / len(trace)))
                for share in shares
            ]
            results[alpha] = (
                busiest,
                simulate_simple_sharing(trace, GROUPS, capacity),
                simulate_global_cache(trace, GROUPS, capacity),
                simulate_simple_sharing(trace, GROUPS, proportional),
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    gaps = {}
    prop_gaps = {}
    for alpha, (busiest, shared, pooled, proportional) in results.items():
        gap = pooled.total_hit_ratio - shared.total_hit_ratio
        prop_gap = (
            pooled.total_hit_ratio - proportional.total_hit_ratio
        )
        gaps[alpha] = gap
        prop_gaps[alpha] = prop_gap
        rows.append(
            (
                f"{alpha:g}",
                f"{busiest:.2f}",
                f"{shared.total_hit_ratio:.4f}",
                f"{proportional.total_hit_ratio:.4f}",
                f"{pooled.total_hit_ratio:.4f}",
                f"{gap * +100:+.2f} pp",
            )
        )

    # The paper's claim: the global cache's advantage appears (grows)
    # under severe imbalance...
    assert gaps[2.5] > gaps[0.0]
    assert gaps[2.5] > 0.0
    # ...and its remedy works: proportional allocation recovers most of
    # the gap at the severe-imbalance point.
    assert prop_gaps[2.5] < gaps[2.5] / 2

    write_result(
        "ablation_load_imbalance",
        format_table(
            (
                "client-alpha",
                "busiest-proxy-share",
                "equal-caches-HR",
                "proportional-caches-HR",
                "global-HR",
                "global-advantage",
            ),
            rows,
            title=(
                "Ablation: load imbalance -- fixed equal caches vs a "
                "global pool (Section III)"
            ),
        ),
    )
