"""Ablation: cache replacement policy under simple sharing.

The paper's results "are obtained under the LRU replacement algorithm
... different replacement algorithms may give different results."  This
ablation reruns the Fig. 1 simple-sharing point under five policies.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.sharing.schemes import simulate_no_sharing, simulate_simple_sharing
from repro.traces.stats import compute_stats
from repro.traces.workloads import make_workload

from benchmarks._shared import SCALE, write_result

POLICIES = ("lru", "fifo", "lfu", "size", "gdsf")


def test_ablation_replacement_policy(benchmark):
    trace, groups = make_workload("dec", scale=min(SCALE, 1.0))
    stats = compute_stats(trace)
    capacity = max(1, int(stats.infinite_cache_bytes * 0.10 / groups))

    def sweep():
        results = {}
        for policy in POLICIES:
            results[policy] = (
                simulate_no_sharing(trace, groups, capacity, policy=policy),
                simulate_simple_sharing(
                    trace, groups, capacity, policy=policy
                ),
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for policy, (alone, shared) in results.items():
        gain = shared.total_hit_ratio - alone.total_hit_ratio
        # The sharing benefit survives every replacement policy.
        assert gain > 0.02
        rows.append(
            (
                policy,
                f"{alone.total_hit_ratio:.4f}",
                f"{shared.total_hit_ratio:.4f}",
                f"+{gain * 100:.1f} pp",
            )
        )

    # FIFO cannot beat LRU on this recency-friendly workload.
    assert (
        results["fifo"][1].total_hit_ratio
        <= results["lru"][1].total_hit_ratio + 0.01
    )

    write_result(
        "ablation_replacement_policy",
        format_table(
            ("policy", "no-sharing-HR", "simple-sharing-HR", "gain"),
            rows,
            title="Ablation: replacement policy vs sharing benefit (dec)",
        ),
    )
