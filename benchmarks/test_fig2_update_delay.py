"""Fig. 2: impact of summary update delays on total hit ratio.

Exact-directory summaries (as in the paper's Fig. 2), thresholds 0.1%
to 10%, with the no-delay line as reference.  Checks the paper's
finding that degradation grows roughly linearly with the threshold and
stays small at 1%.
"""

from __future__ import annotations

import pytest

from repro import experiments
from repro.analysis.tables import format_table

from benchmarks._shared import SCALE, write_result

THRESHOLDS = (0.0, 0.001, 0.01, 0.02, 0.05, 0.10)


@pytest.mark.parametrize("workload", experiments.ALL_WORKLOADS)
def test_fig2_update_delay(benchmark, workload):
    headers, rows = benchmark.pedantic(
        experiments.fig2,
        args=(workload,),
        kwargs={"scale": SCALE, "thresholds": THRESHOLDS},
        rounds=1,
        iterations=1,
    )

    hit_ratios = [float(row[1]) for row in rows]
    false_misses = [float(row[2]) for row in rows]

    # The no-delay line dominates, and the loss grows with threshold.
    assert hit_ratios[0] == max(hit_ratios)
    assert false_misses == sorted(false_misses)
    assert false_misses[0] == 0.0

    # Degradation at the 1% threshold is small (the paper: 0.02%-1.7%
    # relative).
    drop_at_1pct = hit_ratios[0] - hit_ratios[2]
    assert drop_at_1pct < 0.02

    # Roughly linear growth: the 10% threshold loses clearly more than
    # the 1% threshold.
    drop_at_10pct = hit_ratios[0] - hit_ratios[5]
    assert drop_at_10pct >= drop_at_1pct

    write_result(
        f"fig2_{workload}",
        format_table(
            headers,
            rows,
            title=(
                f"Fig. 2 ({workload}): update-delay impact, "
                f"exact-directory summaries, scale {SCALE:g}"
            ),
        ),
    )
