"""Section V-F: the 100-proxy scalability extrapolation, regenerated
and checked against the paper's published numbers."""

from __future__ import annotations

import pytest

from repro import experiments
from repro.analysis.scalability import extrapolate
from repro.analysis.tables import format_table

from benchmarks._shared import write_result


def test_scalability_extrapolation(benchmark):
    headers, rows = benchmark.pedantic(
        experiments.scalability,
        kwargs={"proxy_counts": (16, 32, 64, 100, 200)},
        rounds=1,
        iterations=1,
    )

    est = extrapolate(num_proxies=100)
    # The paper's quantities, one by one:
    # "about 200 MB to represent all the summaries"
    assert est.summary_memory_bytes == pytest.approx(
        200 * 2**20, rel=0.05
    )
    # "another 8 MB to represent its own counters"
    assert est.counter_memory_bytes == 8 * 2**20
    # "10 K requests between updates"
    assert est.requests_between_updates == pytest.approx(10_486, rel=0.01)
    # "the number of update messages per request is less than 0.01"
    assert est.update_messages_per_request < 0.01
    # "false hit ratios are around 4.7%"
    assert est.false_hit_queries_per_request == pytest.approx(
        0.047, abs=0.003
    )
    # "under 0.06 messages per request for 100 proxies"
    assert est.protocol_messages_per_request < 0.06

    # Overhead grows linearly, not quadratically, in the proxy count --
    # the scalability claim itself.
    per_n = {int(row[0]): float(row[5]) for row in rows}
    assert per_n[200] / per_n[100] == pytest.approx(
        199 / 99, rel=0.05
    )

    write_result(
        "scalability_extrapolation",
        format_table(
            headers,
            rows,
            title="Section V-F: scalability extrapolation",
        )
        + "\n\n"
        + est.summary(),
    )
