"""Table V: trace replay with round-robin request assignment (the
paper's experiment 4: global request order preserved, client binding
not; proxies are more load-balanced than in experiment 3)."""

from __future__ import annotations

from repro.analysis.tables import format_table

from benchmarks._shared import write_result
from benchmarks.test_table4_trace_replay import check_replay_rows, run_replay


def test_table5_trace_replay_round_robin(benchmark):
    headers, rows = benchmark.pedantic(
        run_replay, args=("round-robin",), rounds=1, iterations=1
    )
    check_replay_rows(rows)
    write_result(
        "table5_trace_replay_rr",
        format_table(
            headers,
            rows,
            title=(
                "Table V: UPisa-like replay, round-robin assignment "
                "(experiment 4)"
            ),
        ),
    )
