"""Ablation: the cost of the perfect-consistency assumption.

The paper's simulations "assume that cache consistency mechanism is
perfect."  This ablation runs real consistency protocols (TTL,
adaptive TTL, poll-every-time) over a churning workload and maps the
trade-off surface the assumption collapses: validation messages per
request vs stale documents served.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.consistency import (
    AdaptiveTTL,
    FixedTTL,
    NeverValidate,
    OracleConsistency,
    PollEveryTime,
    simulate_consistency,
)
from repro.traces.stats import compute_stats
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

from benchmarks._shared import write_result


def make_trace():
    return generate_trace(
        SyntheticTraceConfig(
            name="consistency-bench",
            num_requests=40_000,
            num_clients=80,
            num_documents=8_000,
            mean_size=2048,
            max_size=256 * 1024,
            mod_probability=0.02,
            request_rate=10.0,
            seed=71,
        )
    )


POLICIES = (
    OracleConsistency(),
    NeverValidate(),
    PollEveryTime(),
    FixedTTL(60.0),
    FixedTTL(600.0),
    AdaptiveTTL(0.1),
    AdaptiveTTL(0.5),
)


def test_ablation_consistency(benchmark):
    trace = make_trace()
    stats = compute_stats(trace)
    capacity = max(1, int(stats.infinite_cache_bytes * 0.25))

    def sweep():
        return [
            simulate_consistency(trace, capacity, policy)
            for policy in POLICIES
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_name = {r.policy: r for r in results}

    # The corners of the trade-off surface:
    assert by_name["oracle"].stale_serve_ratio == 0.0
    assert by_name["oracle"].validations_per_request == 0.0
    assert by_name["poll-every-time"].stale_serve_ratio == 0.0
    assert by_name["never-validate"].validations_per_request == 0.0
    assert by_name["never-validate"].stale_serve_ratio > 0.01

    # TTL policies interpolate monotonically in TTL length.
    assert (
        by_name["ttl=60s"].stale_serve_ratio
        <= by_name["ttl=600s"].stale_serve_ratio
    )
    assert (
        by_name["ttl=60s"].validations_per_request
        >= by_name["ttl=600s"].validations_per_request
    )
    # Every real policy dominates no corner: nonzero cost somewhere.
    for r in results:
        if r.policy in ("oracle",):
            continue
        assert (
            r.stale_serve_ratio > 0
            or r.validations_per_request > 0
        )

    rows = [
        (
            r.policy,
            f"{r.hit_ratio:.3f}",
            f"{r.stale_serve_ratio:.4f}",
            f"{r.validations_per_request:.3f}",
            f"{r.origin_fetches / r.requests:.3f}",
        )
        for r in results
    ]
    write_result(
        "ablation_consistency",
        format_table(
            (
                "policy",
                "hit-ratio",
                "stale-served/req",
                "validations/req",
                "origin-fetches/req",
            ),
            rows,
            title=(
                "Ablation: consistency protocols vs the paper's oracle "
                "assumption (2% modification churn)"
            ),
        ),
    )
