"""Ablation: number of hash functions and hash family choice.

Sweeps k at a fixed load factor against the analytic optimum (Fig. 4's
two curves at one x), and compares the paper's MD5-slice family with
the fast polynomial family for false-positive quality.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.bfmath import (
    false_positive_probability,
    optimal_integer_num_hashes,
)
from repro.core.bloom import BloomFilter
from repro.core.hashing import MD5HashFamily, PolynomialHashFamily

from benchmarks._shared import write_result

LOAD_FACTOR = 12
NUM_KEYS = 4000
TRIALS = 15_000


def measure(family) -> float:
    filt = BloomFilter(LOAD_FACTOR * NUM_KEYS, hash_family=family)
    for i in range(NUM_KEYS):
        filt.add(f"http://present{i}.com/doc")
    hits = sum(
        filt.may_contain(f"http://absent{i}.org/doc")
        for i in range(TRIALS)
    )
    return hits / TRIALS


def test_ablation_hash_functions(benchmark):
    ks = (1, 2, 4, 8, optimal_integer_num_hashes(LOAD_FACTOR))

    def sweep():
        rows = {}
        for k in ks:
            rows[k] = measure(MD5HashFamily(num_functions=k))
        rows["poly-4"] = measure(PolynomialHashFamily(4))
        return rows

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for k in ks:
        analytic = false_positive_probability(LOAD_FACTOR, k)
        # Empirical rates track the analytic curve.
        assert measured[k] == pytest.approx(analytic, abs=0.01)
        rows.append((f"md5 k={k}", f"{measured[k]:.4%}", f"{analytic:.4%}"))

    # The fast polynomial family performs like MD5 at the same k.
    assert measured["poly-4"] == pytest.approx(
        false_positive_probability(LOAD_FACTOR, 4), abs=0.01
    )
    rows.append(
        (
            "polynomial k=4",
            f"{measured['poly-4']:.4%}",
            f"{false_positive_probability(LOAD_FACTOR, 4):.4%}",
        )
    )

    # The optimal k beats k=1 decisively at this load factor.
    k_opt = optimal_integer_num_hashes(LOAD_FACTOR)
    assert measured[k_opt] < measured[1] / 3

    write_result(
        "ablation_hash_functions",
        format_table(
            ("family", "measured-fp", "analytic-fp"),
            rows,
            title=(
                f"Ablation: hash count/family at load factor {LOAD_FACTOR} "
                f"({NUM_KEYS} keys, {TRIALS} probes)"
            ),
        ),
    )
