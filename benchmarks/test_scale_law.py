"""The scale law: the ICP-to-summary-cache message factor vs trace size.

EXPERIMENTS.md derives that update messages per request shrink as
documents-per-cache grow (update msgs/req = (n-1) * miss / (threshold *
docs_per_cache)), so the headline Fig. 7 factor climbs toward the
paper's 25-60x as the workload approaches real trace sizes.  This
benchmark measures the factor at three workload scales and checks it
grows monotonically, bridging the laptop-scale tables to the paper's.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.summary import SummaryConfig
from repro.sharing.summary_sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_icp,
    simulate_summary_sharing,
)
from repro.traces.stats import compute_stats, mean_cacheable_size
from repro.traces.workloads import make_workload

from benchmarks._shared import write_result

SCALES = (1.0, 2.0, 4.0)


def measure(scale: float):
    trace, groups = make_workload("dec", scale=scale)
    stats = compute_stats(trace)
    capacity = max(1, int(stats.infinite_cache_bytes * 0.10 / groups))
    doc_size = mean_cacheable_size(trace)
    docs_per_cache = capacity // doc_size
    icp = simulate_icp(trace, groups, capacity)
    bloom = simulate_summary_sharing(
        trace,
        groups,
        capacity,
        SummarySharingConfig(
            summary=SummaryConfig(kind="bloom", load_factor=16),
            update_policy=ThresholdUpdatePolicy(0.01),
            expected_doc_size=doc_size,
        ),
    )
    return docs_per_cache, icp, bloom


def test_scale_law(benchmark):
    def sweep():
        return {scale: measure(scale) for scale in SCALES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    factors = []
    for scale, (docs, icp, bloom) in results.items():
        factor = icp.messages_per_request / bloom.messages_per_request
        factors.append(factor)
        rows.append(
            (
                f"{scale:g}",
                docs,
                f"{icp.messages_per_request:.2f}",
                f"{bloom.messages_per_request:.3f}",
                f"{bloom.messages.update_messages / bloom.requests:.3f}",
                f"{factor:.1f}x",
            )
        )

    # The factor grows with documents-per-cache, and update traffic per
    # request falls.
    assert factors == sorted(factors)
    updates = [
        results[s][2].messages.update_messages / results[s][2].requests
        for s in SCALES
    ]
    assert updates == sorted(updates, reverse=True)
    # Hit ratios stay equivalent at every scale.
    for scale in SCALES:
        _docs, icp, bloom = results[scale]
        assert abs(bloom.total_hit_ratio - icp.total_hit_ratio) < 0.01

    write_result(
        "scale_law",
        format_table(
            (
                "scale",
                "docs/cache",
                "icp msgs/req",
                "bloom-16 msgs/req",
                "updates/req",
                "factor",
            ),
            rows,
            title=(
                "Scale law (dec, 16 proxies): ICP-to-summary-cache factor "
                "vs trace size -- extrapolates to the paper's 25-60x"
            ),
        ),
    )
