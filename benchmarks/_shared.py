"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and writes it to ``benchmarks/results/<name>.txt`` so the
output survives pytest's capture.

``REPRO_BENCH_SCALE`` (default 2.0) scales the synthetic workloads.
Larger scales move the message-economy results toward the paper's
regime (see EXPERIMENTS.md for the scale law) at the cost of runtime;
0.2 gives a fast smoke run.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path
from typing import Dict

from repro import experiments
from repro.analysis.tables import format_table
from repro.sharing.results import SharingResult

#: Workload scale for all trace-driven benchmarks.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2"))

#: The paper's update threshold for the representation sweep.
SWEEP_THRESHOLD = float(os.environ.get("REPRO_BENCH_THRESHOLD", "0.01"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_result(name: str, text: str) -> None:
    """Print *text* and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")


@functools.lru_cache(maxsize=None)
def representation_sweep(workload: str) -> Dict[str, SharingResult]:
    """The Section V-D sweep for one workload, computed once per run.

    Figs. 5-8 and Table III all read from this sweep.
    """
    return experiments.representations(
        workload, scale=SCALE, threshold=SWEEP_THRESHOLD
    )


def sweep_table(
    workload: str, columns, headers, title: str
) -> str:
    """Render selected columns of a workload's sweep as a table."""
    results = representation_sweep(workload)
    rows = []
    for label, result in results.items():
        rows.append((label,) + tuple(col(result) for col in columns))
    return format_table(("summary",) + tuple(headers), rows, title=title)
