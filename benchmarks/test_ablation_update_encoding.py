"""Ablation: delta (bit-flip) updates vs whole-filter transfers.

Section VI: "the proxy can either specify which bits in the bit array
are flipped, or send the whole array, whichever is smaller"; Squid's
cache digests ship the whole array.  This ablation measures real
encoded wire bytes for both encodings across update batch sizes and
locates the crossover.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.counting_bloom import CountingBloomFilter
from repro.protocol.update import (
    build_digest_messages,
    build_dir_update_messages,
)

from benchmarks._shared import write_result

NUM_BITS = 131_072  # a 16 KB filter (2K documents at load factor 8)


def measure(batch_size: int):
    cbf = CountingBloomFilter(NUM_BITS)
    for i in range(2000):
        cbf.add(f"http://base{i}.com/x")
    cbf.drain_flips()  # baseline shipped
    for i in range(batch_size):
        cbf.add(f"http://delta{i}.com/y")
    flips = cbf.drain_flips()
    delta_messages = build_dir_update_messages(
        flips, cbf.hash_family, cbf.num_bits
    )
    delta_bytes = sum(len(m.encode()) for m in delta_messages)
    digest_messages = build_digest_messages(cbf)
    digest_bytes = sum(len(c.encode()) for c in digest_messages)
    return len(flips), delta_bytes, digest_bytes


def test_ablation_update_encoding(benchmark):
    batch_sizes = (10, 100, 1000, 4000, 16000)

    def sweep():
        return {n: measure(n) for n in batch_sizes}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for batch, (flips, delta_bytes, digest_bytes) in results.items():
        winner = "delta" if delta_bytes < digest_bytes else "whole-filter"
        rows.append((batch, flips, delta_bytes, digest_bytes, winner))

    # Small batches favour deltas; huge batches favour the digest.
    assert rows[0][4] == "delta"
    assert rows[-1][4] == "whole-filter"
    # The digest's cost is constant (plus chunk headers) regardless of
    # batch size.
    digest_sizes = [row[3] for row in rows]
    assert max(digest_sizes) - min(digest_sizes) < 1024

    write_result(
        "ablation_update_encoding",
        format_table(
            (
                "new-docs",
                "bit-flips",
                "delta-bytes",
                "whole-filter-bytes",
                "smaller",
            ),
            rows,
            title=(
                "Ablation: DIRUPDATE deltas vs cache-digest transfers "
                f"({NUM_BITS} -bit filter)"
            ),
        ),
    )
