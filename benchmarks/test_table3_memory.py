"""Table III: storage requirement of the summary representations,
as a percentage of proxy cache size."""

from __future__ import annotations

import pytest

from repro import experiments
from repro.analysis.tables import format_table

from benchmarks._shared import representation_sweep, write_result


def test_table3_memory(benchmark):
    def build():
        rows = []
        for workload in experiments.ALL_WORKLOADS:
            results = representation_sweep(workload)
            rows.append(
                (workload,)
                + tuple(
                    f"{results[cfg.label()].summary_memory_ratio * 100:.2f}%"
                    for cfg in experiments.REPRESENTATIONS
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ("trace",) + tuple(
        cfg.label() for cfg in experiments.REPRESENTATIONS
    )

    for row in rows:
        exact, server, b8, b16, b32 = (
            float(cell.rstrip("%")) for cell in row[1:]
        )
        # Bloom summaries undercut the exact directory by a wide margin
        # and scale with the load factor (Table III's ordering).
        assert b8 < exact / 4
        assert b8 < b16 < b32
        # Load-factor proportionality: 16 is ~2x of 8, 32 ~4x of 8.
        assert b16 / b8 == pytest.approx(2.0, rel=0.2)
        assert b32 / b8 == pytest.approx(4.0, rel=0.2)
        # The load-factor-8 filter is in the same ballpark as or below
        # the server-name list (the paper's observation).
        assert b8 < server * 2.0

    write_result(
        "table3_memory",
        format_table(
            headers,
            rows,
            title="Table III: summary memory as % of proxy cache size",
        ),
    )

