"""Scalability measured, not extrapolated: overhead vs cluster size.

Section V-F argues ICP's overhead grows with the number of proxies
(every miss generates N-1 inquiries) while summary cache's stays small.
This experiment runs the discrete-event cluster at N = 2, 4, 8 proxies
with a fixed per-proxy client population and measures each protocol's
*per-proxy* UDP and CPU overhead over the no-ICP baseline.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.proxy.config import ProxyMode
from repro.simulation.experiment import run_overhead_experiment

from benchmarks._shared import write_result

PROXY_COUNTS = (2, 4, 8)
CLIENTS_PER_PROXY = 15
REQUESTS_PER_CLIENT = 120


def measure(num_proxies: int):
    results = {}
    for mode in (ProxyMode.NO_ICP, ProxyMode.ICP, ProxyMode.SC_ICP):
        results[mode] = run_overhead_experiment(
            mode,
            num_proxies=num_proxies,
            clients_per_proxy=CLIENTS_PER_PROXY,
            requests_per_client=REQUESTS_PER_CLIENT,
            target_hit_ratio=0.25,
        )
    return results


def test_scalability_measured_in_des(benchmark):
    all_results = benchmark.pedantic(
        lambda: {n: measure(n) for n in PROXY_COUNTS},
        rounds=1,
        iterations=1,
    )

    rows = []
    icp_udp_per_request = {}
    sc_udp_per_request = {}
    icp_cpu_overhead = {}
    sc_cpu_overhead = {}
    for n, results in all_results.items():
        base = results[ProxyMode.NO_ICP]
        icp = results[ProxyMode.ICP]
        sc = results[ProxyMode.SC_ICP]
        # Protocol UDP per request, with the keep-alive baseline netted
        # out so only query/update traffic remains.
        base_udp = base.udp_sent + base.udp_received
        icp_udp_per_request[n] = (
            icp.udp_sent + icp.udp_received - base_udp
        ) / icp.requests
        sc_udp_per_request[n] = (
            sc.udp_sent + sc.udp_received - base_udp
        ) / sc.requests
        icp_cpu_overhead[n] = icp.overhead_vs(base)["user_cpu"]
        sc_cpu_overhead[n] = sc.overhead_vs(base)["user_cpu"]
        rows.append(
            (
                n,
                f"{icp_udp_per_request[n]:.2f}",
                f"{sc_udp_per_request[n]:.2f}",
                f"+{icp_cpu_overhead[n]:.1f}%",
                f"+{sc_cpu_overhead[n]:.1f}%",
            )
        )

    # ICP's traffic per request grows ~linearly with N-1...
    growth = icp_udp_per_request[8] / icp_udp_per_request[2]
    assert growth > 4  # (8-1)/(2-1) = 7 ideally; allow slack
    # ...while SC-ICP's stays an order of magnitude below at every N.
    for n in PROXY_COUNTS:
        assert sc_udp_per_request[n] < icp_udp_per_request[n] / 5
    # ICP's CPU overhead climbs with N; SC-ICP's stays low and flat.
    assert icp_cpu_overhead[8] > icp_cpu_overhead[2] * 2
    assert sc_cpu_overhead[8] < 8

    write_result(
        "extension_scalability_des",
        format_table(
            (
                "proxies",
                "icp udp/req",
                "sc-icp udp/req",
                "icp user-cpu overhead",
                "sc-icp user-cpu overhead",
            ),
            rows,
            title=(
                "Scalability measured in the DES (Section V-F's claim): "
                "per-request protocol traffic and CPU overhead vs "
                "cluster size"
            ),
        ),
    )
