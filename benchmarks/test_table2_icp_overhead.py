"""Table II: overhead of ICP in the four-proxy benchmark.

The paper's setup: 4 proxies, 120 clients issuing 200 requests each
with no think time, origin replies delayed 1 s, no request overlap
between clients (no remote hits -- ICP's worst case), at inherent hit
ratios of 25% and 45%.
"""

from __future__ import annotations

import pytest

from repro import experiments
from repro.analysis.tables import format_table

from benchmarks._shared import write_result


@pytest.mark.parametrize("hit_ratio", [0.25, 0.45])
def test_table2_icp_overhead(benchmark, hit_ratio):
    headers, rows = benchmark.pedantic(
        experiments.table2,
        kwargs={
            "target_hit_ratio": hit_ratio,
            "clients_per_proxy": 30,
            "requests_per_client": 200,
        },
        rounds=1,
        iterations=1,
    )

    by_config = {row[0]: row for row in rows}
    # No remote hits: identical hit ratios in all three configurations.
    assert (
        by_config["no-icp"][1]
        == by_config["icp"][1]
        == by_config["sc-icp"][1]
    )

    # ICP's UDP factor lands in the paper's ballpark (73x-90x).
    udp_factor = by_config["icp overhead"][5]
    factor = float(udp_factor.rstrip("x"))
    assert 40 < factor < 150

    # ICP inflates CPU and latency; SC-ICP stays near no-ICP.
    icp_user = float(by_config["icp overhead"][3].strip("+%"))
    sc_user = float(by_config["sc-icp overhead"][3].strip("+%"))
    assert icp_user > 10
    assert sc_user < icp_user / 2
    icp_latency = float(by_config["icp overhead"][2].strip("+%"))
    sc_latency = float(by_config["sc-icp overhead"][2].strip("+%"))
    assert icp_latency > 2
    assert sc_latency < icp_latency

    write_result(
        f"table2_hit{int(hit_ratio * 100)}",
        format_table(
            headers,
            rows,
            title=(
                "Table II: ICP overhead, 4 proxies, inherent hit ratio "
                f"{hit_ratio:g} (120 clients x 200 requests)"
            ),
        ),
    )
