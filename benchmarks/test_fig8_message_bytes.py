"""Fig. 8: bytes of interproxy network messages per user request,
under the paper's size model (70-byte queries, 20+16n digest updates,
32+4n Bloom updates)."""

from __future__ import annotations

from repro import experiments
from repro.sharing.messages import (
    QUERY_MESSAGE_BYTES,
    bloom_update_bytes,
    digest_update_bytes,
)

from benchmarks._shared import representation_sweep, sweep_table, write_result


def test_fig8_message_bytes(benchmark):
    def collect():
        return {
            workload: representation_sweep(workload)
            for workload in experiments.ALL_WORKLOADS
        }

    all_results = benchmark.pedantic(collect, rounds=1, iterations=1)

    sections = []
    for workload, results in all_results.items():
        icp = results["icp"]
        # Bloom summaries beat ICP on bytes (the paper: 55%-64% less).
        for key in ("bloom-16", "bloom-32"):
            assert (
                results[key].message_bytes_per_request
                < icp.message_bytes_per_request
            )
        # A Bloom flip record (4 B) is cheaper than a digest change
        # record (16 B), so at equal update counts bloom updates are
        # smaller per change.
        assert bloom_update_bytes(100) < digest_update_bytes(100)

        # Internal consistency of the byte accounting.
        for label, r in results.items():
            assert r.messages.query_bytes == (
                r.messages.query_messages * QUERY_MESSAGE_BYTES
            )

        sections.append(
            sweep_table(
                workload,
                columns=(
                    lambda r: f"{r.message_bytes_per_request:.1f}",
                    lambda r: f"{r.messages.query_bytes / r.requests:.1f}",
                    lambda r: f"{r.messages.update_bytes / r.requests:.1f}",
                ),
                headers=("bytes/req", "query-B/req", "update-B/req"),
                title=f"Fig. 8 ({workload}): message bytes per request",
            )
        )

    write_result("fig8_message_bytes", "\n\n".join(sections))
