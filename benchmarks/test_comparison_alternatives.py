"""Comparison: summary cache vs the alternative protocols the paper
discusses (Sections I and VIII related work).

- **ICP**: per-miss multicast queries (the paper's main baseline).
- **CARP**: hash-partitioned URL space -- no duplicates and no queries,
  but most requests route to a remote owner ("not appropriate for
  wide-area cache sharing").
- **Directory server**: exact central directory -- no false hits, but
  "the central server can easily become a bottleneck."
- **Summary cache (bloom-16)**: the paper's proposal.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.summary import SummaryConfig
from repro.sharing.carp import simulate_carp
from repro.sharing.directory_server import simulate_directory_server
from repro.sharing.summary_sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_icp,
    simulate_summary_sharing,
)
from repro.traces.stats import compute_stats, mean_cacheable_size
from repro.traces.workloads import make_workload

from benchmarks._shared import SCALE, SWEEP_THRESHOLD, write_result


def test_comparison_alternatives(benchmark):
    trace, groups = make_workload("ucb", scale=SCALE)
    stats = compute_stats(trace)
    capacity = max(1, int(stats.infinite_cache_bytes * 0.10 / groups))
    doc_size = mean_cacheable_size(trace)

    def sweep():
        icp = simulate_icp(trace, groups, capacity)
        carp = simulate_carp(trace, groups, capacity)
        dserver, load = simulate_directory_server(
            trace, groups, capacity
        )
        bloom = simulate_summary_sharing(
            trace,
            groups,
            capacity,
            SummarySharingConfig(
                summary=SummaryConfig(kind="bloom", load_factor=16),
                update_policy=ThresholdUpdatePolicy(SWEEP_THRESHOLD),
                expected_doc_size=doc_size,
            ),
        )
        return icp, carp, dserver, load, bloom

    icp, carp, dserver, load, bloom = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    # The qualitative claims:
    # 1. All schemes find comparable aggregate hit ratios.
    ratios = [
        icp.total_hit_ratio,
        carp.hit_ratio,
        dserver.total_hit_ratio,
        bloom.total_hit_ratio,
    ]
    assert max(ratios) - min(ratios) < 0.10
    # 2. CARP routes almost everything over the wide area; summary
    #    cache serves its local hits locally.
    assert carp.remote_routing_ratio > 0.5
    local_service = bloom.local_hits / bloom.requests
    assert 1 - carp.remote_routing_ratio < local_service
    # 3. The directory server concentrates load centrally.
    assert load.per_request(dserver.requests) > 1.0
    # 4. Summary cache beats ICP on interproxy messages.
    assert bloom.messages_per_request < icp.messages_per_request

    rows = [
        (
            "icp",
            f"{icp.total_hit_ratio:.3f}",
            f"{icp.messages_per_request:.3f}",
            "0%",
            "-",
        ),
        (
            "carp",
            f"{carp.hit_ratio:.3f}",
            "0.000",
            f"{carp.remote_routing_ratio:.0%}",
            "-",
        ),
        (
            "directory-server",
            f"{dserver.total_hit_ratio:.3f}",
            f"{dserver.messages_per_request:.3f}",
            "0%",
            f"{load.per_request(dserver.requests):.2f}",
        ),
        (
            "summary-cache (bloom-16)",
            f"{bloom.total_hit_ratio:.3f}",
            f"{bloom.messages_per_request:.3f}",
            "0%",
            "-",
        ),
    ]
    write_result(
        "comparison_alternatives",
        format_table(
            (
                "protocol",
                "hit-ratio",
                "interproxy msgs/req",
                "wide-area routed",
                "central-server msgs/req",
            ),
            rows,
            title=(
                "Comparison: summary cache vs alternative protocols "
                f"(ucb, {groups} proxies)"
            ),
        ),
    )
