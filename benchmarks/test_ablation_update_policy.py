"""Ablation: threshold-triggered vs interval-triggered summary updates.

Section V-A studies the threshold form and notes the time-interval
alternative "can be derived through converting the intervals to
thresholds."  This ablation runs both at matched update rates and
checks they produce comparable hit ratios and false-miss ratios.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.summary import SummaryConfig
from repro.sharing.summary_sharing import (
    IntervalUpdatePolicy,
    PacketFillUpdatePolicy,
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_summary_sharing,
)
from repro.traces.stats import compute_stats, mean_cacheable_size
from repro.traces.workloads import make_workload

from benchmarks._shared import SCALE, write_result


def test_ablation_update_policy(benchmark):
    trace, groups = make_workload("ucb", scale=SCALE)
    stats = compute_stats(trace)
    capacity = max(1, int(stats.infinite_cache_bytes * 0.10 / groups))
    doc_size = mean_cacheable_size(trace)

    def run(policy):
        cfg = SummarySharingConfig(
            summary=SummaryConfig(kind="bloom", load_factor=16),
            update_policy=policy,
            expected_doc_size=doc_size,
        )
        return simulate_summary_sharing(trace, groups, capacity, cfg)

    def sweep():
        threshold_result = run(ThresholdUpdatePolicy(0.02))
        # Convert the observed update rate into an equivalent interval.
        updates = threshold_result.messages.update_messages / (groups - 1)
        interval = max(0.5, trace.duration / max(1, updates / groups))
        interval_result = run(IntervalUpdatePolicy(interval))
        packet_result = run(PacketFillUpdatePolicy())
        return threshold_result, interval_result, interval, packet_result

    threshold_result, interval_result, interval, packet_result = (
        benchmark.pedantic(sweep, rounds=1, iterations=1)
    )

    # Matched update budgets produce comparable quality.
    assert abs(
        threshold_result.total_hit_ratio
        - interval_result.total_hit_ratio
    ) < 0.02
    # Both stay close in update volume (within ~3x after conversion).
    t_updates = threshold_result.messages.update_messages
    i_updates = interval_result.messages.update_messages
    assert i_updates > 0
    assert 1 / 3 < t_updates / i_updates < 3

    # The prototype's packet-fill policy ships rarer, maximal-size
    # updates: fewest messages, largest staleness window.
    assert (
        packet_result.messages.update_messages <= t_updates
    )
    rows = [
        (
            "threshold 2%",
            f"{threshold_result.total_hit_ratio:.4f}",
            f"{threshold_result.false_miss_ratio:.4f}",
            t_updates,
        ),
        (
            f"interval {interval:.0f}s",
            f"{interval_result.total_hit_ratio:.4f}",
            f"{interval_result.false_miss_ratio:.4f}",
            i_updates,
        ),
        (
            "packet-fill (342 rec)",
            f"{packet_result.total_hit_ratio:.4f}",
            f"{packet_result.false_miss_ratio:.4f}",
            packet_result.messages.update_messages,
        ),
    ]
    write_result(
        "ablation_update_policy",
        format_table(
            ("policy", "hit-ratio", "false-miss", "update-msgs"),
            rows,
            title="Ablation: threshold vs interval update triggering (ucb)",
        ),
    )
