"""Microbenchmarks of the core data-structure operations.

Unlike the experiment benchmarks (which regenerate the paper's tables
with single-shot runs), these measure steady-state throughput of the
primitives a deployed proxy exercises on every request: filter probes,
inserts/deletes, MD5 hashing, and wire encode/decode.
"""

from __future__ import annotations

import itertools
import random

from repro.core.bitarray import BitArray
from repro.core.bloom import BloomFilter
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import MD5HashFamily, PolynomialHashFamily
from repro.protocol.update import build_dir_update_messages
from repro.protocol.wire import IcpQuery, decode_message

URLS = [f"http://server{i % 97}.example.net/path/{i}" for i in range(5000)]

BITARRAY_BITS = 40_000


def test_micro_bloom_probe(benchmark):
    filt = BloomFilter.for_capacity(5000, load_factor=8)
    for url in URLS:
        filt.add(url)
    probe_urls = itertools.cycle(URLS)

    def probe():
        return filt.may_contain(next(probe_urls))

    assert benchmark(probe) is True


def test_micro_bloom_negative_probe(benchmark):
    filt = BloomFilter.for_capacity(5000, load_factor=8)
    for url in URLS:
        filt.add(url)
    absent = itertools.cycle(
        [f"http://absent{i}.org/x" for i in range(1000)]
    )

    def probe():
        return filt.may_contain(next(absent))

    benchmark(probe)


def test_micro_counting_add_remove(benchmark):
    cbf = CountingBloomFilter.for_capacity(5000, load_factor=8)
    urls = itertools.cycle(URLS)

    def add_remove():
        url = next(urls)
        cbf.add(url)
        cbf.remove(url)
        # Bound the pending-flip list: a deployed proxy drains it on
        # every update, so steady state never accumulates.
        if cbf.pending_flip_count > 1024:
            cbf.drain_flips()

    benchmark(add_remove)


def test_micro_bitarray_from_bytes(benchmark):
    # Exercises the payload-decode popcount (one big-int bit_count
    # instead of a per-byte Python loop).
    rng = random.Random(7)
    source = BitArray(BITARRAY_BITS)
    for _ in range(BITARRAY_BITS // 8):
        source.set(rng.randrange(BITARRAY_BITS))
    payload = source.to_bytes()

    rebuilt = benchmark(lambda: BitArray.from_bytes(BITARRAY_BITS, payload))
    assert rebuilt.popcount == source.popcount


def test_micro_bitarray_set_many(benchmark):
    # The batch path behind BloomFilter.add: k bits per key, popcount
    # bookkeeping settled once per batch.
    rng = random.Random(11)
    array = BitArray(BITARRAY_BITS)
    batches = itertools.cycle(
        [
            [rng.randrange(BITARRAY_BITS) for _ in range(8)]
            for _ in range(512)
        ]
    )

    def set_clear():
        batch = next(batches)
        set_count = len(array.set_many(batch, True))
        cleared = array.set_many(batch, False)
        return set_count == len(cleared)

    assert benchmark(set_clear) is True


def test_micro_bitarray_flipped_indices(benchmark):
    # The XOR diff between a live filter and a shipped copy.
    rng = random.Random(13)
    mine = BitArray(BITARRAY_BITS)
    mine.set_many(
        rng.randrange(BITARRAY_BITS) for _ in range(BITARRAY_BITS // 8)
    )
    theirs = mine.copy()
    drift = [rng.randrange(BITARRAY_BITS) for _ in range(64)]
    for index in drift:
        theirs.set(index, not theirs.get(index))

    flips = benchmark(lambda: mine.flipped_indices(theirs))
    assert len(flips) == len(set(drift))


def test_micro_md5_family(benchmark):
    family = MD5HashFamily()
    urls = itertools.cycle(URLS)
    benchmark(lambda: family.hashes(next(urls), 40_000))


def test_micro_polynomial_family(benchmark):
    family = PolynomialHashFamily()
    urls = itertools.cycle(URLS)
    benchmark(lambda: family.hashes(next(urls), 40_000))


def test_micro_query_encode_decode(benchmark):
    urls = itertools.cycle(URLS)

    def roundtrip():
        query = IcpQuery(url=next(urls), request_number=7)
        return decode_message(query.encode())

    result = benchmark(roundtrip)
    assert isinstance(result, IcpQuery)


def test_micro_dirupdate_build(benchmark):
    cbf = CountingBloomFilter.for_capacity(5000, load_factor=8)
    for url in URLS[:1000]:
        cbf.add(url)
    flips = cbf.drain_flips()

    def build():
        return build_dir_update_messages(
            flips, cbf.hash_family, cbf.num_bits
        )

    messages = benchmark(build)
    assert messages
