"""Table I: statistics of the five workload stand-ins."""

from __future__ import annotations

from repro import experiments
from repro.analysis.tables import format_table

from benchmarks._shared import SCALE, write_result


def test_table1_trace_stats(benchmark):
    headers, rows = benchmark.pedantic(
        experiments.table1,
        kwargs={"scale": SCALE},
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 5
    # Every trace achieves a substantial but sub-1 maximum hit ratio.
    for row in rows:
        max_hr = float(row[6])
        assert 0.2 < max_hr < 0.95
    write_result(
        "table1_trace_stats",
        format_table(
            headers,
            rows,
            title=f"Table I: trace statistics (scale {SCALE:g})",
        ),
    )
