"""Table IV: trace replay through the simulated 4-proxy cluster,
client-bound assignment (the paper's experiment 3: 80 clients, the
first 24,000 UPisa requests, clients keep their proxy binding)."""

from __future__ import annotations

from repro import experiments
from repro.analysis.tables import format_table

from benchmarks._shared import SCALE, write_result


def run_replay(assignment: str):
    return experiments.table45(
        assignment=assignment,
        workload="upisa",
        scale=SCALE,
        num_requests=24_000,
        num_proxies=4,
        clients_per_proxy=20,
    )


def check_replay_rows(rows):
    by_config = {row[0]: row for row in rows}
    hr = {k: float(v[1]) for k, v in by_config.items()}
    remote = {k: float(v[2]) for k, v in by_config.items()}
    latency = {k: float(v[3]) for k, v in by_config.items()}
    udp = {k: int(v[6]) for k, v in by_config.items()}

    # Cooperation finds remote hits; no-ICP cannot.
    assert remote["no-icp"] == 0.0
    assert remote["icp"] > 0.01
    assert remote["sc-icp"] > 0.01

    # SC-ICP keeps nearly ICP's hit ratio with far less UDP.
    assert hr["sc-icp"] > hr["no-icp"]
    assert hr["sc-icp"] > hr["icp"] - 0.05
    assert udp["sc-icp"] < udp["icp"] / 2

    # Remote hits beat the 1-second origin delay: cooperating modes do
    # not increase latency over no-ICP by more than a sliver (Table IV:
    # SC-ICP actually lowers it slightly).
    assert latency["sc-icp"] <= latency["no-icp"] * 1.05


def test_table4_trace_replay_client_bound(benchmark):
    headers, rows = benchmark.pedantic(
        run_replay, args=("client-bound",), rounds=1, iterations=1
    )
    check_replay_rows(rows)
    write_result(
        "table4_trace_replay",
        format_table(
            headers,
            rows,
            title=(
                "Table IV: UPisa-like replay, client-bound assignment "
                "(experiment 3)"
            ),
        ),
    )
