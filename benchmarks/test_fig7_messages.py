"""Fig. 7: number of interproxy network messages per user request.

Compares every summary representation against ICP.  The absolute
ICP-to-Bloom factor depends on documents-per-cache (the paper's traces
hold thousands of documents per cache; scaled-down workloads hold
hundreds, which inflates update traffic -- see EXPERIMENTS.md), so the
benchmark asserts the ordering and the per-miss query economics, and
prints a paper-scale projection alongside the measured table.
"""

from __future__ import annotations

from repro import experiments
from repro.analysis.scalability import extrapolate

from benchmarks._shared import representation_sweep, sweep_table, write_result


def test_fig7_messages(benchmark):
    def collect():
        return {
            workload: representation_sweep(workload)
            for workload in experiments.ALL_WORKLOADS
        }

    all_results = benchmark.pedantic(collect, rounds=1, iterations=1)

    sections = []
    for workload, results in all_results.items():
        icp = results["icp"]
        for key in ("exact-directory", "bloom-16", "bloom-32"):
            r = results[key]
            # Summary cache sends fewer messages than ICP overall...
            assert r.messages_per_request < icp.messages_per_request
            # ...and floods dramatically fewer per-miss queries.
            assert (
                r.messages.query_messages
                < icp.messages.query_messages / 3
            )
        # Server-name's false hits cost it extra queries vs bloom-32.
        assert (
            results["server-name"].messages.query_messages
            > results["bloom-32"].messages.query_messages
        )

        sections.append(
            sweep_table(
                workload,
                columns=(
                    lambda r: f"{r.messages_per_request:.4f}",
                    lambda r: f"{r.messages.query_messages / r.requests:.4f}",
                    lambda r: f"{r.messages.update_messages / r.requests:.4f}",
                ),
                headers=("msgs/req", "queries/req", "updates/req"),
                title=f"Fig. 7 ({workload}): interproxy messages per request",
            )
        )

    # Paper-scale projection: with paper-sized caches (1M pages), the
    # analytic update+false-hit overhead against ICP's per-miss flood
    # recovers the 25-60x headline factor.
    est = extrapolate(num_proxies=16, load_factor=16, num_hashes=4,
                      miss_ratio=0.6)
    icp_messages = (16 - 1) * 0.6  # queries per request at 60% misses
    remote_traffic = 0.25  # remote + stale hit queries, roughly stable
    projection = icp_messages / (
        est.protocol_messages_per_request + remote_traffic
    )
    assert projection > 20
    sections.append(
        "Paper-scale projection (16 proxies, 1M pages/cache, 60% miss):\n"
        f"  ICP ~{icp_messages:.1f} msgs/req vs summary cache "
        f"~{est.protocol_messages_per_request + remote_traffic:.3f} "
        f"msgs/req -> factor ~{projection:.0f}x (paper: 25-60x)"
    )

    write_result("fig7_messages", "\n\n".join(sections))
