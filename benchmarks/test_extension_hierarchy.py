"""Extension (Section VIII): summary cache in a parent/child hierarchy.

The Questnet topology: 12 child proxies behind one regional parent.
Measures how much SC-ICP sibling sharing among the children offloads
the parent, with and without the protocol.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.sharing.hierarchy import simulate_hierarchy
from repro.traces.stats import compute_stats
from repro.traces.workloads import make_workload

from benchmarks._shared import SCALE, write_result


def test_extension_hierarchy(benchmark):
    trace, groups = make_workload("questnet", scale=min(SCALE, 1.0))
    stats = compute_stats(trace)
    child_capacity = max(
        1, int(stats.infinite_cache_bytes * 0.05 / groups)
    )
    parent_capacity = max(1, int(stats.infinite_cache_bytes * 0.20))

    def sweep():
        return {
            label: simulate_hierarchy(
                trace,
                num_children=groups,
                child_capacity=child_capacity,
                parent_capacity=parent_capacity,
                sibling_sharing=sibling,
            )
            for label, sibling in (
                ("hierarchy only", False),
                ("hierarchy + SC-ICP siblings", True),
            )
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    plain = results["hierarchy only"]
    with_siblings = results["hierarchy + SC-ICP siblings"]

    # Sibling sharing offloads the parent without hurting total hits.
    assert with_siblings.parent_requests < plain.parent_requests
    assert with_siblings.sibling_hits > 0
    assert (
        with_siblings.total_hit_ratio > plain.total_hit_ratio - 0.05
    )

    rows = []
    for label, r in results.items():
        rows.append(
            (
                label,
                f"{r.child_hit_ratio:.3f}",
                f"{r.sibling_hits / r.requests:.3f}",
                f"{r.parent_requests / r.requests:.3f}",
                f"{r.total_hit_ratio:.3f}",
                f"{r.origin_traffic_ratio:.3f}",
            )
        )
    write_result(
        "extension_hierarchy",
        format_table(
            (
                "configuration",
                "child-HR",
                "sibling-HR",
                "parent-load",
                "total-HR",
                "origin-traffic",
            ),
            rows,
            title=(
                f"Extension: Questnet-style hierarchy, {groups} children "
                "(Section VIII)"
            ),
        ),
    )
