"""Ablation: counter width of the counting Bloom filter.

The paper argues 4-bit counters are "amply sufficient" (overflow
probability ~ m * 1.37e-15).  This ablation measures, per width, the
memory cost and the saturation events under a heavy churn workload, and
checks the analytic overflow bound.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.core.bfmath import counter_overflow_probability
from repro.core.counting_bloom import CountingBloomFilter

from benchmarks._shared import write_result

NUM_BITS = 32_768
CHURN_OPS = 30_000


def churn(width: int):
    """Random adds/removes at a steady ~2000 live keys."""
    rng = random.Random(width)
    cbf = CountingBloomFilter(NUM_BITS, counter_width=width)
    live = []
    for op in range(CHURN_OPS):
        if live and rng.random() < 0.45:
            cbf.remove(live.pop(rng.randrange(len(live))))
        else:
            key = f"http://churn{op}.net/obj"
            cbf.add(key)
            live.append(key)
    # A filter is *sound* if every live key still probes positive.
    false_negatives = sum(1 for k in live if not cbf.may_contain(k))
    return cbf, false_negatives


def test_ablation_counter_width(benchmark):
    def sweep():
        return {width: churn(width) for width in (2, 4, 8)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for width, (cbf, false_negatives) in results.items():
        # No width may ever produce a false negative: saturated
        # counters stick at max rather than under-count.
        assert false_negatives == 0
        rows.append(
            (
                width,
                cbf.counters.size_bytes(),
                cbf.counters.saturation_events,
                f"{counter_overflow_probability(NUM_BITS, 4096, (1 << width)):.2e}",
            )
        )

    by_width = {row[0]: row for row in rows}
    # Narrow counters saturate much more often; 4-bit rarely if ever.
    assert by_width[2][2] >= by_width[4][2]
    assert by_width[4][2] >= by_width[8][2]
    # Memory halves as width halves.
    assert by_width[4][1] == by_width[8][1] // 2

    # The paper's own bound for 4-bit counters is minuscule.
    assert counter_overflow_probability(NUM_BITS, 4096, 16) < 1e-9

    write_result(
        "ablation_counter_width",
        format_table(
            (
                "counter-bits",
                "counter-bytes",
                "saturation-events",
                "analytic-P(overflow)",
            ),
            rows,
            title=(
                "Ablation: counter width under churn "
                f"({CHURN_OPS} ops, {NUM_BITS} bits)"
            ),
        ),
    )
