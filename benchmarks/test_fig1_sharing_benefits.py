"""Fig. 1: hit ratios of the cooperation schemes vs cache size.

One benchmark per trace, sweeping the paper's cache sizes (0.5%, 5%,
10%, 20% of the infinite cache size) over all five schemes (including
the 10%-smaller global cache).
"""

from __future__ import annotations

import pytest

from repro import experiments
from repro.analysis.tables import format_table

from benchmarks._shared import SCALE, write_result

FRACTIONS = (0.005, 0.05, 0.10, 0.20)


@pytest.mark.parametrize("workload", experiments.ALL_WORKLOADS)
def test_fig1_sharing_benefits(benchmark, workload):
    headers, rows = benchmark.pedantic(
        experiments.fig1,
        args=(workload,),
        kwargs={"scale": SCALE, "cache_fractions": FRACTIONS},
        rounds=1,
        iterations=1,
    )
    assert len(rows) == len(FRACTIONS)

    for row in rows:
        no_sharing, simple, single, global_, global90 = map(
            float, row[1:]
        )
        # Every sharing scheme beats no sharing.
        assert simple > no_sharing
        assert single > no_sharing
        assert global_ > no_sharing
        # The smaller global cache never beats the full one.
        assert global90 <= global_ + 1e-9
        # The sharing schemes track each other closely (the paper's
        # central Fig. 1 observation).
        assert max(simple, single, global_) - min(
            simple, single, global_
        ) < 0.10

    # Hit ratio grows with cache size for every scheme.
    for col in range(1, 6):
        series = [float(row[col]) for row in rows]
        assert series == sorted(series)

    write_result(
        f"fig1_{workload}",
        format_table(
            headers,
            rows,
            title=(
                f"Fig. 1 ({workload}): hit ratio vs cache size, "
                f"scale {SCALE:g}"
            ),
        ),
    )
