"""Fig. 5: total hit ratio under different summary representations.

Reads the shared representation sweep; benchmarks one representative
simulation (bloom-16 on upisa) so the timing numbers measure simulator
throughput.
"""

from __future__ import annotations

from repro import experiments
from repro.core.summary import SummaryConfig
from repro.sharing.summary_sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_summary_sharing,
)
from repro.traces.stats import compute_stats, mean_cacheable_size
from repro.traces.workloads import make_workload

from benchmarks._shared import (
    SCALE,
    SWEEP_THRESHOLD,
    representation_sweep,
    sweep_table,
    write_result,
)

BLOOM_KEYS = ("bloom-8", "bloom-16", "bloom-32")


def test_fig5_hit_ratios(benchmark):
    trace, groups = make_workload("upisa", scale=min(SCALE, 1.0))
    stats = compute_stats(trace)
    capacity = max(1, int(stats.infinite_cache_bytes * 0.10 / groups))
    config = SummarySharingConfig(
        summary=SummaryConfig(kind="bloom", load_factor=16),
        update_policy=ThresholdUpdatePolicy(SWEEP_THRESHOLD),
        expected_doc_size=mean_cacheable_size(trace),
    )
    benchmark.pedantic(
        simulate_summary_sharing,
        args=(trace, groups, capacity, config),
        rounds=1,
        iterations=1,
    )

    sections = []
    for workload in experiments.ALL_WORKLOADS:
        results = representation_sweep(workload)
        # Bloom summaries achieve virtually the exact directory's hit
        # ratio (the paper's Fig. 5 observation).
        exact_hr = results["exact-directory"].total_hit_ratio
        for key in BLOOM_KEYS:
            assert abs(results[key].total_hit_ratio - exact_hr) < 0.02
        # And all representations stay close to the ICP oracle.
        icp_hr = results["icp"].total_hit_ratio
        assert exact_hr > icp_hr - 0.02
        sections.append(
            sweep_table(
                workload,
                columns=(lambda r: f"{r.total_hit_ratio:.4f}",),
                headers=("total-hit-ratio",),
                title=f"Fig. 5 ({workload}): total hit ratio",
            )
        )
    write_result("fig5_hit_ratios", "\n\n".join(sections))
