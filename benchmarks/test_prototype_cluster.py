"""Section VII analogue: the asyncio prototype on real localhost
sockets, measured in all three modes (the live-measurement counterpart
of Tables II/IV/V) and, for SC-ICP, across all three summary
representations (the live counterpart of the Section V comparison)."""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.tables import format_table
from repro.proxy import ProxyCluster, ProxyConfig, ProxyMode
from repro.summaries import SummaryConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

from benchmarks._shared import write_result

NUM_REQUESTS = 2000

REPRESENTATIONS = ("bloom", "exact-directory", "server-name")


def make_trace():
    return generate_trace(
        SyntheticTraceConfig(
            name="prototype-bench",
            num_requests=NUM_REQUESTS,
            num_clients=32,
            num_documents=700,
            mean_size=2048,
            max_size=64 * 1024,
            mod_probability=0.0,
            seed=55,
        )
    )


def config_for(kind: str) -> ProxyConfig:
    return ProxyConfig(
        summary=SummaryConfig(kind=kind, load_factor=8),
        expected_doc_size=2048,
        update_threshold=0.01,
    )


async def run_all_modes():
    trace = make_trace()
    config = config_for("bloom")
    outcomes = {}
    for mode in (ProxyMode.NO_ICP, ProxyMode.ICP, ProxyMode.SC_ICP):
        async with ProxyCluster(
            num_proxies=4,
            mode=mode,
            cache_capacity=2 * 2**20,
            origin_delay=0.001,
            base_config=config,
        ) as cluster:
            result = await cluster.replay(trace, clients_per_proxy=4)
        outcomes[mode] = result
    return outcomes


async def run_sc_icp(kind: str):
    trace = make_trace()
    async with ProxyCluster(
        num_proxies=4,
        mode=ProxyMode.SC_ICP,
        cache_capacity=2 * 2**20,
        origin_delay=0.001,
        base_config=config_for(kind),
    ) as cluster:
        return await cluster.replay(trace, clients_per_proxy=4)


def result_row(label, result):
    return (
        label,
        f"{result.total_hit_ratio:.3f}",
        sum(s.remote_hits for s in result.proxy_stats),
        result.udp_total,
        sum(s.icp_queries_sent for s in result.proxy_stats),
        sum(s.dirupdates_sent for s in result.proxy_stats),
        sum(s.false_query_rounds for s in result.proxy_stats),
        f"{result.client_report.mean_latency * 1000:.2f} ms",
    )


TABLE_HEADER = (
    "mode",
    "hit-ratio",
    "remote-hits",
    "udp-sent",
    "queries",
    "dir-updates",
    "false-rounds",
    "latency",
)


def test_prototype_cluster(benchmark):
    outcomes = benchmark.pedantic(
        lambda: asyncio.run(run_all_modes()), rounds=1, iterations=1
    )

    no_icp = outcomes[ProxyMode.NO_ICP]
    icp = outcomes[ProxyMode.ICP]
    sc = outcomes[ProxyMode.SC_ICP]

    # Cooperation finds remote hits over real sockets.
    assert sum(s.remote_hits for s in icp.proxy_stats) > 0
    assert sum(s.remote_hits for s in sc.proxy_stats) > 0
    assert sc.total_hit_ratio > no_icp.total_hit_ratio

    # SC-ICP's per-miss query traffic collapses versus ICP.
    icp_queries = sum(s.icp_queries_sent for s in icp.proxy_stats)
    sc_queries = sum(s.icp_queries_sent for s in sc.proxy_stats)
    assert sc_queries < icp_queries / 3

    # Hit ratios stay close between ICP and SC-ICP.
    assert sc.total_hit_ratio > icp.total_hit_ratio - 0.05

    rows = [
        result_row(mode.value, result) for mode, result in outcomes.items()
    ]
    write_result(
        "prototype_cluster",
        format_table(
            TABLE_HEADER,
            rows,
            title=(
                "Section VII: asyncio prototype, 4 proxies on localhost "
                f"({NUM_REQUESTS} requests)"
            ),
        ),
    )


@pytest.mark.parametrize("kind", REPRESENTATIONS)
def test_prototype_cluster_representation(benchmark, kind):
    """SC-ICP with each Section V summary representation: every one
    must find remote hits over real sockets, with no rejected deltas."""
    result = benchmark.pedantic(
        lambda: asyncio.run(run_sc_icp(kind)), rounds=1, iterations=1
    )

    assert sum(s.remote_hits for s in result.proxy_stats) > 0
    assert sum(s.dirupdates_sent for s in result.proxy_stats) > 0
    assert sum(s.dirupdate_rejects for s in result.proxy_stats) == 0

    write_result(
        f"prototype_cluster_{kind}",
        format_table(
            TABLE_HEADER,
            [result_row(f"sc-icp/{kind}", result)],
            title=(
                f"Section VII: SC-ICP with {kind} summaries, 4 proxies "
                f"on localhost ({NUM_REQUESTS} requests)"
            ),
        ),
    )
