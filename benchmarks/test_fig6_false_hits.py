"""Fig. 6: ratio of false hits under different summary representations
(log-scale axis in the paper)."""

from __future__ import annotations

from repro import experiments
from repro.core.bfmath import false_positive_probability

from benchmarks._shared import representation_sweep, sweep_table, write_result


def test_fig6_false_hits(benchmark):
    def collect():
        return {
            workload: representation_sweep(workload)
            for workload in experiments.ALL_WORKLOADS
        }

    all_results = benchmark.pedantic(collect, rounds=1, iterations=1)

    sections = []
    for workload, results in all_results.items():
        server = results["server-name"].false_hit_ratio
        b8 = results["bloom-8"].false_hit_ratio
        b16 = results["bloom-16"].false_hit_ratio
        b32 = results["bloom-32"].false_hit_ratio
        exact = results["exact-directory"].false_hit_ratio

        # The paper's ordering: server-name >> bloom (decreasing in
        # load factor) >= exact-directory.  bloom-8 is allowed to
        # approach server-name with many peers -- the paper notes the
        # "slightly higher false hit ratio when the bit array is small",
        # and with 15 peer filters the per-filter 2.4% rate aggregates.
        assert server > b16
        assert b8 >= b16 >= b32
        assert b32 >= exact - 1e-9
        # Server-name false hits are large in absolute terms.
        assert server > 0.01

        sections.append(
            sweep_table(
                workload,
                columns=(
                    lambda r: f"{r.false_hit_ratio:.5f}",
                    lambda r: f"{r.false_miss_ratio:.5f}",
                    lambda r: f"{r.remote_stale_hit_ratio:.5f}",
                ),
                headers=("false-hit", "false-miss", "stale-hit"),
                title=f"Fig. 6 ({workload}): error ratios per request",
            )
        )

    # Analytic anchor: per-filter false positives at the nominal load
    # factors order the same way.
    assert false_positive_probability(8, 4) > false_positive_probability(
        16, 4
    ) > false_positive_probability(32, 4)

    write_result("fig6_false_hits", "\n\n".join(sections))
