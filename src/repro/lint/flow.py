"""Flow-sensitive analysis core: CFGs over ``async def`` bodies.

The per-file rules up to SC006 are syntax walkers: they look at one
node at a time.  The concurrency rules (SC007..SC009) need *order* --
"a read of ``self._placement`` happens, then an ``await`` yields the
event loop, then a write lands" is a statement about paths, not nodes.
This module builds that path structure once so the rules stay small:

- :func:`build_flow_graph` turns one function into basic blocks of
  ordered :class:`Event` records (reads/writes of ``self.<attr>``,
  await points, calls, returns/raises) linked by normal and
  exceptional successor edges;
- :func:`class_method_effects` computes, per class, the transitive
  ``self``-attribute read/write sets of every method, so a call like
  ``self.remove_peer(...)`` expands to the placement/peer-table writes
  it performs;
- annotation helpers parse the source-comment conventions the rules
  honour (``# sc-lint: single-writer``, ``# sc-lint: no-await``,
  ``# sc-lint: shared-state=a,b``).

Everything here is dependency-free ``ast`` analysis; the asyncio model
is the cooperative one the proxy relies on: **code between two awaits
is atomic**, every ``await`` is a preemption (and cancellation) point.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

#: Virtual block index meaning "the function returned or the exception
#: escaped" -- the target of return edges and uncaught-raise edges.
EXIT = -1

#: Method names treated as *mutations* of the object they are called
#: on: ``self._pending.pop(...)`` is a write of ``_pending``.  Covers
#: the builtin container verbs plus this project's domain mutators.
MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {
        # builtin containers
        "append", "extend", "insert", "add", "discard", "remove",
        "pop", "popitem", "clear", "update", "setdefault",
        # repro domain objects
        "put", "publish", "rebuild", "on_insert", "on_evict",
        "add_member", "remove_member", "acquire", "release",
        "set_result", "set_exception", "cancel",
    }
)

#: Event kinds that can raise and therefore carry exceptional edges.
CAN_RAISE_KINDS: FrozenSet[str] = frozenset({"await", "raise"})

AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_SINGLE_WRITER_RE = re.compile(r"#\s*sc-lint\s*:\s*single-writer\b")
_NO_AWAIT_RE = re.compile(r"#\s*sc-lint\s*:\s*no-await\b")
_SHARED_STATE_RE = re.compile(
    r"#\s*sc-lint\s*:\s*shared-state\s*=\s*(?P<names>[A-Za-z0-9_,\s]+)"
)


@dataclass
class Event:
    """One atomic action on some path through a function.

    ``kind`` is one of ``read``/``write`` (of the ``self``-attribute in
    ``attr``), ``await``, ``call``, ``assign``, ``return``, ``raise``.
    ``derived`` marks read/write events inferred from the effect set of
    a called ``self.<method>`` rather than written in place.  ``locks``
    names the ``async with <lock>`` regions enclosing the event, as
    ``(chain, with_node_id)`` pairs -- two events share a critical
    section only when the *node id* matches.  ``exc_targets`` are the
    block indices an exception raised here may continue at (ending with
    :data:`EXIT` when it can escape the function).
    """

    kind: str
    node: ast.AST
    attr: str = ""
    derived: bool = False
    locks: Tuple[Tuple[str, int], ...] = ()
    exc_targets: Tuple[int, ...] = ()
    #: For ``call`` events: root name of the callee chain ("self",
    #: "span", "asyncio"), the final method name, and the plain-name
    #: positional args (for release/escape matching).
    call_root: str = ""
    call_method: str = ""
    call_args: Tuple[str, ...] = ()
    #: For ``assign`` events: the simple names bound by the statement.
    targets: Tuple[str, ...] = ()


@dataclass
class Block:
    """A straight-line run of events plus its normal successors."""

    idx: int
    events: List[Event] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)


#: An event's position: ``(block index, event index)``.
EventPos = Tuple[int, int]

#: The virtual position representing function exit.
EXIT_POS: EventPos = (EXIT, 0)


@dataclass(frozen=True)
class MethodEffects:
    """Transitive ``self``-attribute effect sets of one method."""

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    has_await: bool = False


class FlowGraph:
    """The CFG of one function: blocks of events, entry block 0."""

    def __init__(self, func: AnyFunc, blocks: List[Block]) -> None:
        self.func = func
        self.blocks = blocks

    def events(self) -> Iterator[Tuple[EventPos, Event]]:
        """Every event with its position, in block/statement order."""
        for block in self.blocks:
            for i, event in enumerate(block.events):
                yield (block.idx, i), event

    def _block_entries(
        self, idx: int, seen: Optional[Set[int]] = None
    ) -> List[EventPos]:
        """First event position(s) reachable by entering block *idx*,
        skipping through empty blocks (``EXIT`` propagates as
        :data:`EXIT_POS`)."""
        if idx == EXIT:
            return [EXIT_POS]
        seen = seen if seen is not None else set()
        if idx in seen:
            return []
        seen.add(idx)
        block = self.blocks[idx]
        if block.events:
            return [(idx, 0)]
        out: List[EventPos] = []
        for succ in block.succs:
            out.extend(self._block_entries(succ, seen))
        return out

    def successors(self, pos: EventPos) -> List[EventPos]:
        """Positions control may reach immediately after *pos*,
        including exceptional continuations of can-raise events."""
        block_idx, event_idx = pos
        if block_idx == EXIT:
            return []
        block = self.blocks[block_idx]
        event = block.events[event_idx]
        out: List[EventPos] = []
        if event_idx + 1 < len(block.events):
            out.append((block_idx, event_idx + 1))
        else:
            for succ in block.succs:
                out.extend(self._block_entries(succ))
        if event.kind in CAN_RAISE_KINDS:
            for target in event.exc_targets:
                out.extend(self._block_entries(target))
        return out


@dataclass
class _ExcLevel:
    """One enclosing try context during construction.

    ``stops`` means an exception cannot propagate past this level on
    its own: either a handler catches ``BaseException``, or the level
    has a ``finally`` suite -- the exception flows *into* the finally,
    whose own outgoing edges model the re-raise.
    """

    targets: List[int]
    stops: bool


class _CfgBuilder:
    """Single-pass recursive CFG construction for one function body."""

    def __init__(
        self,
        effects: Dict[str, MethodEffects],
        no_await_lines: FrozenSet[int],
        no_await_chains: FrozenSet[str],
    ) -> None:
        self._effects = effects
        self._no_await_lines = no_await_lines
        self._no_await_chains = no_await_chains
        self.blocks: List[Block] = []
        self._cur = self._new_block()
        #: (continue target, break target) per enclosing loop.
        self._loops: List[Tuple[int, int]] = []
        self._exc: List[_ExcLevel] = []
        self._locks: List[Tuple[str, int]] = []
        #: Entry blocks of enclosing ``finally`` suites: a ``return``
        #: runs the innermost one before leaving the function.
        self._finallies: List[int] = []

    # -- plumbing ------------------------------------------------------

    def _new_block(self) -> int:
        block = Block(idx=len(self.blocks))
        self.blocks.append(block)
        return block.idx

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)

    def _emit(self, event: Event) -> None:
        event.locks = tuple(self._locks)
        if event.kind in CAN_RAISE_KINDS:
            event.exc_targets = self._exc_chain()
        self.blocks[self._cur].events.append(event)

    def _exc_chain(self) -> Tuple[int, ...]:
        """Blocks an exception raised *here* may continue at."""
        out: List[int] = []
        for level in reversed(self._exc):
            out.extend(level.targets)
            if level.stops:
                return tuple(out)
        out.append(EXIT)
        return tuple(out)

    # -- function entry ------------------------------------------------

    def build(self, func: AnyFunc) -> FlowGraph:
        self._stmts(func.body)
        self._edge_to_exit()
        return FlowGraph(func, self.blocks)

    def _edge_to_exit(self) -> None:
        self._edge(self._cur, EXIT)

    # -- statements ----------------------------------------------------

    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
            self._emit(Event("return", stmt))
            # A return inside try/finally runs the finally suite first
            # (whose own edges propagate outward to EXIT).
            target = self._finallies[-1] if self._finallies else EXIT
            self._edge(self._cur, target)
            self._cur = self._new_block()
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc)
            self._emit(Event("raise", stmt))
            self._cur = self._new_block()
        elif isinstance(stmt, ast.Break):
            if self._loops:
                self._edge(self._cur, self._loops[-1][1])
            self._cur = self._new_block()
        elif isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(self._cur, self._loops[-1][0])
            self._cur = self._new_block()
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            self._store_target(stmt.target, aug=True)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value)
                self._store_target(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._store_target(target)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Assert):
            self._expr(stmt.test)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass  # a nested definition's body is not on this CFG
        elif isinstance(stmt, getattr(ast, "Match", ())):
            self._match(stmt)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _if(self, stmt: ast.If) -> None:
        self._expr(stmt.test)
        cond = self._cur
        after = self._new_block()
        then_entry = self._new_block()
        self._edge(cond, then_entry)
        self._cur = then_entry
        self._stmts(stmt.body)
        self._edge(self._cur, after)
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(cond, else_entry)
            self._cur = else_entry
            self._stmts(stmt.orelse)
            self._edge(self._cur, after)
        else:
            self._edge(cond, after)
        self._cur = after

    def _while(self, stmt: ast.While) -> None:
        header = self._new_block()
        self._edge(self._cur, header)
        self._cur = header
        self._expr(stmt.test)
        header_end = self._cur
        after = self._new_block()
        body_entry = self._new_block()
        self._edge(header_end, body_entry)
        self._edge(header_end, after)
        self._loops.append((header, after))
        self._cur = body_entry
        self._stmts(stmt.body)
        self._edge(self._cur, header)
        self._loops.pop()
        if stmt.orelse:
            self._cur = after
            self._stmts(stmt.orelse)
        self._cur = after

    def _for(self, stmt: Union[ast.For, ast.AsyncFor]) -> None:
        self._expr(stmt.iter)
        header = self._new_block()
        self._edge(self._cur, header)
        self._cur = header
        if isinstance(stmt, ast.AsyncFor):
            self._emit(Event("await", stmt))
        self._store_target(stmt.target)
        header_end = self._cur
        after = self._new_block()
        body_entry = self._new_block()
        self._edge(header_end, body_entry)
        self._edge(header_end, after)
        self._loops.append((header, after))
        self._cur = body_entry
        self._stmts(stmt.body)
        self._edge(self._cur, header)
        self._loops.pop()
        if stmt.orelse:
            self._cur = after
            self._stmts(stmt.orelse)
        self._cur = after

    def _try(self, stmt: ast.Try) -> None:
        handler_entries = [self._new_block() for _ in stmt.handlers]
        final_entry = self._new_block() if stmt.finalbody else None
        after = self._new_block()

        catches_all = any(
            h.type is None or _catches_everything(h.type)
            for h in stmt.handlers
        )
        level_targets = list(handler_entries)
        if final_entry is not None:
            level_targets.append(final_entry)
        self._exc.append(
            _ExcLevel(
                targets=level_targets,
                stops=catches_all or final_entry is not None,
            )
        )
        if final_entry is not None:
            self._finallies.append(final_entry)
        self._stmts(stmt.body)
        body_exit = self._cur
        self._exc.pop()

        # else runs only when the body fell through normally.
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(body_exit, else_entry)
            self._cur = else_entry
            self._stmts(stmt.orelse)
            body_exit = self._cur

        join = final_entry if final_entry is not None else after
        self._edge(body_exit, join)

        # Handlers run with the try level popped (an exception inside a
        # handler propagates outward), but still inside any finally.
        if final_entry is not None:
            self._exc.append(
                _ExcLevel(targets=[final_entry], stops=True)
            )
        for handler, entry in zip(stmt.handlers, handler_entries):
            self._cur = entry
            self._stmts(handler.body)
            self._edge(self._cur, join)
        if final_entry is not None:
            self._exc.pop()
            self._finallies.pop()

        if final_entry is not None:
            self._cur = final_entry
            self._stmts(stmt.finalbody)
            # Normal continuation, plus onward propagation for the
            # exceptional entries the finally intercepted.
            self._edge(self._cur, after)
            for target in self._exc_chain():
                self._edge(self._cur, target)
        self._cur = after

    def _with(self, stmt: Union[ast.With, ast.AsyncWith]) -> None:
        acquired: List[Tuple[str, int]] = []
        for item in stmt.items:
            self._expr(item.context_expr)
            if isinstance(stmt, ast.AsyncWith):
                chain = attribute_chain(item.context_expr)
                if chain is not None and self._is_lock(chain, stmt.lineno):
                    acquired.append((chain, id(stmt) & 0x7FFFFFFF))
            if item.optional_vars is not None:
                self._store_target(item.optional_vars)
        if isinstance(stmt, ast.AsyncWith):
            self._emit(Event("await", stmt))  # __aenter__
        else:
            # A sync ``with NAME:`` hands cleanup to the context
            # manager; SC008 treats the entry as a release of NAME.
            for item in stmt.items:
                if isinstance(item.context_expr, ast.Name):
                    self._emit(
                        Event(
                            "call",
                            stmt,
                            call_root=item.context_expr.id,
                            call_method="__exit__",
                        )
                    )
        self._locks.extend(acquired)
        self._stmts(stmt.body)
        for _ in acquired:
            self._locks.pop()
        if isinstance(stmt, ast.AsyncWith):
            self._emit(Event("await", stmt))  # __aexit__

    def _is_lock(self, chain: str, lineno: int) -> bool:
        last = chain.rsplit(".", 1)[-1].lower()
        return (
            "lock" in last
            or "sem" in last
            or chain in self._no_await_chains
            or lineno in self._no_await_lines
        )

    def _match(self, stmt: ast.AST) -> None:
        subject = getattr(stmt, "subject", None)
        if isinstance(subject, ast.expr):
            self._expr(subject)
        cond = self._cur
        after = self._new_block()
        for case in getattr(stmt, "cases", []):
            entry = self._new_block()
            self._edge(cond, entry)
            self._cur = entry
            self._stmts(case.body)
            self._edge(self._cur, after)
        self._edge(cond, after)
        self._cur = after

    # -- expressions and effects --------------------------------------

    def _assign(self, stmt: ast.Assign) -> None:
        self._expr(stmt.value)
        names: List[str] = []
        for target in stmt.targets:
            self._store_target(target)
            names.extend(_bound_names(target))
        if names:
            self._emit(Event("assign", stmt, targets=tuple(names)))

    def _store_target(self, target: ast.expr, aug: bool = False) -> None:
        """Write events for a store/del target (``self.attr`` forms)."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store_target(elt)
            return
        attr = _self_attr_of_store(target)
        if attr is not None:
            self._emit(Event("write", target, attr=attr))
            return
        if isinstance(target, ast.Subscript):
            self._expr(target.slice)
            self._expr(target.value)
        elif isinstance(target, ast.Attribute):
            self._expr(target.value)

    def _expr(self, node: Optional[ast.expr]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Await):
            self._await(node)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            if getattr(node, "value", None) is not None:
                self._expr(node.value)
            self._emit(Event("await", node))
        elif isinstance(node, ast.Call):
            self._call(node, awaited=False)
        elif isinstance(node, ast.Attribute):
            attr = _self_attr_of_load(node)
            if attr is not None:
                self._emit(Event("read", node, attr=attr))
            else:
                self._expr(node.value)
        elif isinstance(node, ast.Lambda):
            pass  # a lambda body runs when called, not here
        elif isinstance(
            node,
            (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
        ):
            for comp in node.generators:
                self._expr(comp.iter)
                for cond in comp.ifs:
                    self._expr(cond)
            if isinstance(node, ast.DictComp):
                self._expr(node.key)
                self._expr(node.value)
            else:
                self._expr(node.elt)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._call(node.value, awaited=True)
        else:
            self._expr(node.value)
            self._emit(Event("await", node))

    def _call(self, call: ast.Call, awaited: bool) -> None:
        for arg in call.args:
            self._expr(arg)
        for kw in call.keywords:
            self._expr(kw.value)
        func = call.func
        root, method = _call_root_method(func)
        arg_names = tuple(
            a.id for a in call.args if isinstance(a, ast.Name)
        )

        # ``self.<attr>.<method>(...)``: a read or mutation of <attr>.
        owner_attr = _self_attr_method_owner(func)
        # ``self.<method>(...)``: expand the method's effect sets.
        self_method = (
            method if root == "self" and owner_attr is None else ""
        )

        if awaited:
            # The callee's effects land *during* the suspension, so the
            # await event precedes them on the path.
            self._emit(Event("await", call))
        if owner_attr is not None:
            kind = "write" if method in MUTATOR_METHODS else "read"
            self._emit(Event(kind, call, attr=owner_attr))
        elif self_method and self_method in self._effects:
            eff = self._effects[self_method]
            for attr in sorted(eff.reads):
                self._emit(Event("read", call, attr=attr, derived=True))
            for attr in sorted(eff.writes):
                self._emit(Event("write", call, attr=attr, derived=True))
        elif isinstance(func, ast.Attribute):
            self._expr(func.value)
        self._emit(
            Event(
                "call",
                call,
                call_root=root,
                call_method=method,
                call_args=arg_names,
            )
        )


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def attribute_chain(node: ast.expr) -> Optional[str]:
    """``self._pool`` -> ``"self._pool"``; None for non-name chains."""
    parts: List[str] = []
    probe: ast.expr = node
    while isinstance(probe, ast.Attribute):
        parts.append(probe.attr)
        probe = probe.value
    if isinstance(probe, ast.Name):
        parts.append(probe.id)
        return ".".join(reversed(parts))
    return None


def _self_attr_of_load(node: ast.Attribute) -> Optional[str]:
    """The first attribute after ``self`` in a load chain, if any."""
    probe: ast.expr = node
    attr: Optional[str] = None
    while isinstance(probe, ast.Attribute):
        attr = probe.attr
        probe = probe.value
    if isinstance(probe, ast.Name) and probe.id == "self":
        return attr
    return None


def _self_attr_of_store(target: ast.expr) -> Optional[str]:
    """The ``self``-attribute a store target mutates, if any.

    ``self.x = v`` and ``self.x[k] = v`` and ``del self.x[k]`` all
    mutate ``x``; deeper chains attribute to the first hop.
    """
    probe: ast.expr = target
    if isinstance(probe, ast.Subscript):
        probe = probe.value
    if isinstance(probe, ast.Attribute):
        return _self_attr_of_load(probe)
    return None


def _call_root_method(func: ast.expr) -> Tuple[str, str]:
    """Root name and final method of a call target chain."""
    if isinstance(func, ast.Name):
        return func.id, func.id
    if isinstance(func, ast.Attribute):
        method = func.attr
        probe: ast.expr = func.value
        while isinstance(probe, ast.Attribute):
            probe = probe.value
        while isinstance(probe, ast.Call):
            # chained calls: span.set(...).end() roots at span
            probe = probe.func
            while isinstance(probe, ast.Attribute):
                probe = probe.value
        if isinstance(probe, ast.Name):
            return probe.id, method
        return "", method
    return "", ""


def _self_attr_method_owner(func: ast.expr) -> Optional[str]:
    """For ``self.<attr>(...).<...>`` call chains of depth exactly two
    (``self.<attr>.<method>``), the owning attribute."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
    ):
        return value.attr
    return None


def _bound_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_bound_names(elt))
        return out
    return []


def _catches_everything(handler_type: ast.expr) -> bool:
    """True when the except clause catches ``BaseException`` (so even
    ``asyncio.CancelledError`` cannot escape past it)."""
    types: List[ast.expr]
    if isinstance(handler_type, ast.Tuple):
        types = list(handler_type.elts)
    else:
        types = [handler_type]
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else (
            t.id if isinstance(t, ast.Name) else ""
        )
        if name == "BaseException":
            return True
    return False


# ----------------------------------------------------------------------
# Class effect sets
# ----------------------------------------------------------------------


class _EffectCollector(ast.NodeVisitor):
    """Direct (non-transitive) effect scan of one method body."""

    def __init__(self) -> None:
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.calls: Set[str] = set()
        self.has_await = False

    def visit_Await(self, node: ast.Await) -> None:
        self.has_await = True
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.has_await = True
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self.has_await = True
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        owner = _self_attr_method_owner(node.func)
        if owner is not None:
            method = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else ""
            )
            if method in MUTATOR_METHODS:
                self.writes.add(owner)
            else:
                self.reads.add(owner)
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            return
        root, method = _call_root_method(node.func)
        if root == "self":
            self.calls.add(method)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr_of_load(node)
        if attr is None:
            self.generic_visit(node)
            return
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.writes.add(attr)
        else:
            self.reads.add(attr)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and isinstance(
            node.value, ast.Attribute
        ):
            attr = _self_attr_of_load(node.value)
            if attr is not None:
                self.writes.add(attr)
                self.visit(node.slice)
                return
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs' effects are not this method's

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


def class_method_effects(cls: ast.ClassDef) -> Dict[str, MethodEffects]:
    """Per-method transitive ``self``-attribute effect sets.

    A call ``self.m(...)`` inside a method folds ``m``'s reads and
    writes into the caller's sets (fixpoint over the class-internal
    call graph), so rules see through helper layers like
    ``remove_peer -> _rebalance -> placement.remove_member``.
    """
    direct: Dict[str, _EffectCollector] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            collector = _EffectCollector()
            for body_stmt in stmt.body:
                collector.visit(body_stmt)
            if isinstance(stmt, ast.AsyncFunctionDef):
                collector.has_await = True
            direct[stmt.name] = collector

    reads = {name: set(c.reads) for name, c in direct.items()}
    writes = {name: set(c.writes) for name, c in direct.items()}
    awaits = {name: c.has_await for name, c in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, collector in direct.items():
            for callee in collector.calls:
                if callee not in direct:
                    continue
                if not reads[callee] <= reads[name]:
                    reads[name] |= reads[callee]
                    changed = True
                if not writes[callee] <= writes[name]:
                    writes[name] |= writes[callee]
                    changed = True
                if awaits[callee] and not awaits[name]:
                    awaits[name] = True
                    changed = True
    return {
        name: MethodEffects(
            reads=frozenset(reads[name]),
            writes=frozenset(writes[name]),
            has_await=awaits[name],
        )
        for name in direct
    }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def iter_async_functions(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[ast.ClassDef], ast.AsyncFunctionDef]]:
    """Every ``async def`` in *tree* with its enclosing class (if any),
    including methods of nested classes; nested function bodies are
    visited too (each gets its own graph)."""

    def walk(
        node: ast.AST, cls: Optional[ast.ClassDef]
    ) -> Iterator[Tuple[Optional[ast.ClassDef], ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, ast.AsyncFunctionDef):
                yield cls, child
                yield from walk(child, cls)
            elif isinstance(child, ast.FunctionDef):
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)


def build_flow_graph(
    func: AnyFunc,
    effects: Optional[Dict[str, MethodEffects]] = None,
    no_await_lines: FrozenSet[int] = frozenset(),
    no_await_chains: FrozenSet[str] = frozenset(),
) -> FlowGraph:
    """The CFG of *func* (effect expansion for ``self.m()`` calls when
    *effects* is the enclosing class's effect table)."""
    builder = _CfgBuilder(
        effects if effects is not None else {},
        no_await_lines,
        no_await_chains,
    )
    return builder.build(func)


# ----------------------------------------------------------------------
# Source annotations
# ----------------------------------------------------------------------


def single_writer_lines(source: str) -> FrozenSet[int]:
    """Lines carrying ``# sc-lint: single-writer`` (1-based)."""
    return frozenset(
        lineno
        for lineno, text in enumerate(source.splitlines(), start=1)
        if _SINGLE_WRITER_RE.search(text)
    )


def no_await_lines(source: str) -> FrozenSet[int]:
    """Lines carrying ``# sc-lint: no-await`` (1-based)."""
    return frozenset(
        lineno
        for lineno, text in enumerate(source.splitlines(), start=1)
        if _NO_AWAIT_RE.search(text)
    )


def shared_state_fields(source: str) -> FrozenSet[str]:
    """Field names declared shared via ``# sc-lint: shared-state=a,b``."""
    out: Set[str] = set()
    for text in source.splitlines():
        match = _SHARED_STATE_RE.search(text)
        if match:
            out.update(
                part.strip()
                for part in match.group("names").split(",")
                if part.strip()
            )
    return frozenset(out)


def no_await_lock_chains(
    tree: ast.Module, annotated_lines: FrozenSet[int]
) -> FrozenSet[str]:
    """Lock chains (``self._lock``) whose *defining assignment* line is
    annotated ``# sc-lint: no-await`` -- e.g. in ``__init__``::

        self._lock = asyncio.Lock()  # sc-lint: no-await
    """
    out: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if node.lineno not in annotated_lines:
            continue
        for target in node.targets:
            chain = attribute_chain(target)
            if chain is not None:
                out.add(chain)
    return frozenset(out)


def function_is_single_writer(
    func: AnyFunc, annotated_lines: FrozenSet[int]
) -> bool:
    """Whether *func*'s ``def`` line (or a decorator line) is annotated
    ``# sc-lint: single-writer``."""
    first = min(
        [func.lineno]
        + [dec.lineno for dec in func.decorator_list]
    )
    return any(
        line in annotated_lines for line in range(first, func.lineno + 1)
    )
