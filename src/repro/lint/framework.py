"""Visitor core, rule registry, suppressions, and the lint runner.

A rule is a class deriving from :class:`Rule`, registered with the
:func:`register` decorator.  Rules run in two phases:

1. :meth:`Rule.check` is called once per parsed file (scope-filtered by
   :attr:`Rule.scopes` / :attr:`Rule.exempt`) and yields
   :class:`Finding` records for that file;
2. :meth:`Rule.finalize` is called once after every file was visited,
   for cross-file invariants (e.g. global metric-name uniqueness) --
   per-file state accumulates in :meth:`ProjectContext.scratch`.

Findings on a line carrying a suppression comment ::

    something_noncompliant()  # sc-lint: disable=SC001
    another_thing()           # sc-lint: disable=SC002,SC005
    anything_at_all()         # sc-lint: disable

are dropped (an id list limits the suppression to those rules; a bare
``disable`` suppresses every rule on the line).  Suppressions apply to
cross-file findings too.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.errors import ConfigurationError

#: Rule id reserved for files the runner itself could not parse.
PARSE_ERROR_RULE = "SC000"

_SUPPRESS_RE = re.compile(
    r"#\s*sc-lint\s*:\s*disable(?:\s*=\s*(?P<rules>[A-Z0-9_,\s]+))?"
)

_RULE_ID_RE = re.compile(r"^SC\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: project-root-relative posix path
    line: int  #: 1-based line number
    col: int  #: 0-based column offset
    rule: str  #: rule id, e.g. ``"SC001"``
    message: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready record (the JSON reporter's element schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: RULE message`` (the text reporter's line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Suppressions:
    """Per-file map of suppression comments, by line number."""

    def __init__(self, source: str) -> None:
        #: line -> frozenset of suppressed ids; empty set = all rules.
        self._by_line: Dict[int, FrozenSet[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self._by_line[lineno] = frozenset()
            else:
                self._by_line[lineno] = frozenset(
                    part.strip() for part in rules.split(",") if part.strip()
                )

    def extend_from_tree(self, tree: ast.AST) -> None:
        """Merge decorator-line suppressions into the ``def`` line.

        Rules anchor per-function findings at the ``def``/``class``
        line, but a decorated definition *starts* at its first
        decorator — which is where an author naturally writes the
        comment.  Any ``# sc-lint: disable`` on a decorator line (or a
        continuation line of a multi-line decorator call) therefore
        also applies to the definition line.  A bare ``disable``
        (all rules) wins over id lists when merging.
        """
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for deco in node.decorator_list:
                end = getattr(deco, "end_lineno", None) or deco.lineno
                for lineno in range(deco.lineno, end + 1):
                    ids = self._by_line.get(lineno)
                    if ids is None:
                        continue
                    existing = self._by_line.get(node.lineno)
                    if not ids or (existing is not None and not existing):
                        self._by_line[node.lineno] = frozenset()
                    elif existing is None:
                        self._by_line[node.lineno] = ids
                    else:
                        self._by_line[node.lineno] = existing | ids

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when *rule* is disabled on *line*."""
        ids = self._by_line.get(line)
        if ids is None:
            return False
        return not ids or rule in ids


class ProjectContext:
    """Cross-file state shared by every rule over one run."""

    def __init__(
        self, root: Path, docs_dir: Optional[Path] = None
    ) -> None:
        self.root = root
        docs = docs_dir if docs_dir is not None else root / "docs"
        self.docs_dir: Optional[Path] = docs if docs.is_dir() else None
        self._scratch: Dict[str, Dict[str, object]] = {}
        #: rel_path -> that file's suppression map (finalize filtering).
        self.suppressions: Dict[str, Suppressions] = {}

    def scratch(self, rule_id: str) -> Dict[str, object]:
        """A mutable per-rule dict surviving from check() to finalize()."""
        return self._scratch.setdefault(rule_id, {})

    def read_doc(self, name: str) -> Optional[str]:
        """The text of ``docs/<name>``, or ``None`` when unavailable."""
        if self.docs_dir is None:
            return None
        path = self.docs_dir / name
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None

    def doc_rel_path(self, name: str) -> str:
        """Project-relative posix path of ``docs/<name>`` (for findings)."""
        if self.docs_dir is None:
            return f"docs/{name}"
        path = self.docs_dir / name
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()


@dataclass
class FileContext:
    """Everything a rule sees about one source file."""

    path: Path  #: absolute filesystem path
    rel_path: str  #: project-root-relative posix path
    source: str
    tree: ast.Module
    project: ProjectContext

    def finding(
        self,
        rule: str,
        node: Union[ast.AST, int],
        message: str,
        col: Optional[int] = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at *node* (or a line number)."""
        if isinstance(node, int):
            line, column = node, col if col is not None else 0
        else:
            line = getattr(node, "lineno", 1)
            column = col if col is not None else getattr(node, "col_offset", 0)
        return Finding(
            path=self.rel_path,
            line=line,
            col=column,
            rule=rule,
            message=message,
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`id` / :attr:`title` / :attr:`rationale`,
    optionally narrow :attr:`scopes` and :attr:`exempt`, and implement
    :meth:`check` (per file) and/or :meth:`finalize` (per run).
    """

    #: Stable rule id, e.g. ``"SC001"``.
    id: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Why the invariant matters (paper section reference).
    rationale: str = ""
    #: Path fragments the rule applies to (posix, matched as whole path
    #: segments anywhere in the relative path).  Empty = every file.
    scopes: Tuple[str, ...] = ()
    #: Path fragments exempt from the rule even when inside a scope.
    exempt: Tuple[str, ...] = ()

    @staticmethod
    def _fragment_matches(fragment: str, rel_path: str) -> bool:
        probe = "/" + rel_path.strip("/")
        needle = "/" + fragment.strip("/")
        return probe.endswith(needle) or (needle + "/") in probe

    def applies_to(self, rel_path: str) -> bool:
        """Whether the rule should run on *rel_path*."""
        if any(self._fragment_matches(f, rel_path) for f in self.exempt):
            return False
        if not self.scopes:
            return True
        return any(self._fragment_matches(f, rel_path) for f in self.scopes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Per-file phase; yield findings for *ctx*."""
        return iter(())

    def finalize(self, project: ProjectContext) -> Iterator[Finding]:
        """Cross-file phase; runs once after every file was checked."""
        return iter(())


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *cls* to the global rule registry."""
    if not _RULE_ID_RE.match(cls.id):
        raise ConfigurationError(
            f"rule id {cls.id!r} does not match 'SC' + 3 digits"
        )
    if cls.id == PARSE_ERROR_RULE:
        raise ConfigurationError(
            f"rule id {PARSE_ERROR_RULE} is reserved for parse errors"
        )
    existing = _REGISTRY.get(cls.id)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"duplicate rule id {cls.id}: {existing.__name__} and "
            f"{cls.__name__}"
        )
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, keyed by id (sorted copies)."""
    return dict(sorted(_REGISTRY.items()))


@dataclass(frozen=True)
class LintConfig:
    """Runner options.

    ``select`` limits the run to those rule ids (None = all registered);
    ``ignore`` removes ids after selection.  ``root`` pins the project
    root (default: nearest ancestor of the first path holding a
    ``pyproject.toml``); ``docs_dir`` pins where the doc cross-check
    rules look for ``docs/*.md``.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    root: Optional[Path] = None
    docs_dir: Optional[Path] = None


@dataclass
class LintResult:
    """The outcome of one :func:`run_lint` call."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def counts(self) -> Dict[str, int]:
        """Findings per rule id (only ids with >= 1 finding)."""
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survived."""
        return 1 if self.findings else 0


def find_project_root(start: Path) -> Path:
    """Nearest ancestor of *start* containing ``pyproject.toml``."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return Path.cwd()


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in candidate.parts
            ):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(resolved)
    return out


def _selected_rules(config: LintConfig) -> List[Rule]:
    registry = all_rules()
    if config.select is not None:
        unknown = config.select - set(registry)
        if unknown:
            raise ConfigurationError(
                f"unknown rule ids: {', '.join(sorted(unknown))}"
            )
    ids = [
        rule_id
        for rule_id in registry
        if (config.select is None or rule_id in config.select)
        and rule_id not in config.ignore
    ]
    return [registry[rule_id]() for rule_id in ids]


def run_lint(
    paths: Sequence[Union[str, Path]],
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Run every selected rule over *paths*; return the combined result."""
    config = config if config is not None else LintConfig()
    files = iter_python_files(paths)
    root = (
        config.root.resolve()
        if config.root is not None
        else find_project_root(files[0] if files else Path.cwd())
    )
    project = ProjectContext(root, docs_dir=config.docs_dir)
    rules = _selected_rules(config)
    result = LintResult(rules_run=tuple(rule.id for rule in rules))

    for path in files:
        try:
            rel_path = path.relative_to(root).as_posix()
        except ValueError:
            rel_path = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None)
            result.findings.append(
                Finding(
                    path=rel_path,
                    line=line if isinstance(line, int) else 1,
                    col=0,
                    rule=PARSE_ERROR_RULE,
                    message=f"file could not be parsed: {exc}",
                )
            )
            continue
        result.files_checked += 1
        suppressions = Suppressions(source)
        suppressions.extend_from_tree(tree)
        project.suppressions[rel_path] = suppressions
        ctx = FileContext(
            path=path,
            rel_path=rel_path,
            source=source,
            tree=tree,
            project=project,
        )
        for rule in rules:
            if not rule.applies_to(rel_path):
                continue
            for finding in rule.check(ctx):
                if not suppressions.is_suppressed(finding.rule, finding.line):
                    result.findings.append(finding)

    for rule in rules:
        for finding in rule.finalize(project):
            suppressions_for = project.suppressions.get(finding.path)
            if suppressions_for is not None and suppressions_for.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            result.findings.append(finding)

    result.findings.sort()
    return result
