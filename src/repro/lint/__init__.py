"""``sc-lint``: project-invariant static analysis for the reproduction.

The interpreter never checks the invariants the paper's correctness
rests on: wire headers must pack big-endian to the exact SC-ICP layout
of Section VI, counting-Bloom counters may only be touched through the
core modules (the Section V-C overflow bound assumes disciplined
increments and decrements), and the asyncio proxy must never block its
event loop or the Table II latency story collapses.  This package makes
those invariants machine-checked:

- :mod:`repro.lint.framework` -- the AST visitor core, rule registry,
  per-line suppression comments, and the runner;
- :mod:`repro.lint.rules` -- the domain rules (SC001..SC006);
- :mod:`repro.lint.reporters` -- text and JSON output;
- :mod:`repro.lint.cli` -- the ``summary-cache lint`` subcommand and the
  ``python -m repro.lint`` entry point.

See ``docs/static-analysis.md`` for the rule catalogue and the paper
rationale behind each rule.
"""

from repro.lint.framework import (
    FileContext,
    Finding,
    LintConfig,
    LintResult,
    ProjectContext,
    Rule,
    all_rules,
    register,
    run_lint,
)
from repro.lint.reporters import render_json, render_text

# Importing the rules package registers every built-in rule.
from repro.lint import rules as _rules  # noqa: F401  (import for effect)

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectContext",
    "Rule",
    "all_rules",
    "register",
    "render_json",
    "render_text",
    "run_lint",
]
