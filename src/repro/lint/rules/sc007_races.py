"""SC007: shared-state reads must not go stale across an ``await``.

The proxy's protocol invariants (summary deltas atomic with cache
mutation, placement stable under an in-flight forward) rely on
asyncio's cooperative model: code between two awaits is atomic, but
**every await is a preemption point**.  A read of shared ``self``
state followed -- on some path crossing an await -- by a write of the
same state is a check-then-act window: another task can mutate the
state during the suspension and the write then acts on a stale view.
This is exactly the interleaving the runtime sanitizer
(:mod:`repro.sanitizer`) detects dynamically; this rule finds the
windows statically.

The rule analyses every ``async def``, expanding ``self.<method>()``
calls through the class's transitive effect sets (so a write hidden
behind ``self.remove_peer(...) -> _rebalance -> remove_member`` is
seen).  Watched fields are the known-hot ones seeded per module below,
plus any declared in-file with ``# sc-lint: shared-state=a,b``.

Three ways to satisfy the rule:

- hold one ``async with <lock>`` across both the read and the write
  (the same critical section, not two sections on one lock);
- re-validate with a fresh read of the field immediately before the
  write (a direct read after the await closes the window -- see
  ``Placement.version`` in ``_owner_path``);
- annotate the function ``# sc-lint: single-writer`` when only one
  task can ever execute it.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.lint.flow import (
    EXIT,
    Event,
    EventPos,
    FlowGraph,
    build_flow_graph,
    class_method_effects,
    function_is_single_writer,
    iter_async_functions,
    shared_state_fields,
    single_writer_lines,
)
from repro.lint.framework import FileContext, Finding, Rule, register

#: Known-hot shared fields, seeded per module (path-fragment keyed,
#: matched with endswith semantics on the project-relative path).
#: Monotonic counters (``stats``, ``_request_counter``) are excluded:
#: their increments are single-statement atomic.
SHARED_FIELDS: Dict[str, FrozenSet[str]] = {
    "repro/proxy/server.py": frozenset(
        {
            "_peers", "_peers_by_name", "_placement", "_pending",
            "_bodies", "_cache", "_node",
        }
    ),
    "repro/proxy/pool.py": frozenset({"_idle", "_closed"}),
    "repro/placement/live.py": frozenset({"_ring"}),
}


def _watched_fields(rel_path: str, source: str) -> FrozenSet[str]:
    fields: Set[str] = set(shared_state_fields(source))
    probe = "/" + rel_path.strip("/")
    for fragment, seeded in SHARED_FIELDS.items():
        if probe.endswith("/" + fragment):
            fields |= seeded
    return frozenset(fields)


def _common_section(read: Event, write: Event) -> bool:
    """Same ``async with <lock>`` critical section around both events."""
    read_ids = {node_id for _, node_id in read.locks}
    write_ids = {node_id for _, node_id in write.locks}
    return bool(read_ids & write_ids)


@register
class InterleavedReadModifyWrite(Rule):
    """Flag shared-state check-then-act windows split by an await."""

    id = "SC007"
    title = "shared-state read goes stale across an await before a write"
    rationale = (
        "Summary deltas must apply atomically with cache mutation and "
        "placement must not change under an in-flight forward (paper "
        "Sections V-VI); every await yields the event loop, so a "
        "read..await..write window acts on state another task may have "
        "changed."
    )
    scopes = ()  # seeded fields + in-file annotations bound the blast radius

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        fields = _watched_fields(ctx.rel_path, ctx.source)
        if not fields:
            return iter(())
        writer_lines = single_writer_lines(ctx.source)
        findings: List[Finding] = []
        for cls, func in iter_async_functions(ctx.tree):
            if function_is_single_writer(func, writer_lines):
                continue
            effects = class_method_effects(cls) if cls is not None else {}
            graph = build_flow_graph(func, effects)
            self._check_graph(ctx, graph, fields, findings)
        return iter(findings)

    def _check_graph(
        self,
        ctx: FileContext,
        graph: FlowGraph,
        fields: FrozenSet[str],
        findings: List[Finding],
    ) -> None:
        reported: Set[Tuple[str, int]] = set()
        for pos, event in graph.events():
            if event.kind == "read" and event.attr in fields:
                self._trace_read(
                    ctx, graph, pos, event, reported, findings
                )

    def _trace_read(
        self,
        ctx: FileContext,
        graph: FlowGraph,
        start: EventPos,
        read: Event,
        reported: Set[Tuple[str, int]],
        findings: List[Finding],
    ) -> None:
        """BFS from one read; report writes of the same attr reached
        across >= 1 await.  Direct (in-place) reads of the attr absorb
        the path -- they re-validate; derived reads (inside a called
        helper) do not, because the helper may read before *its* own
        awaits.  Any write of the attr closes the window."""
        attr = read.attr
        seen: Set[Tuple[EventPos, bool]] = set()
        frontier: List[Tuple[EventPos, bool]] = [
            (succ, False) for succ in graph.successors(start)
        ]
        while frontier:
            state = frontier.pop()
            if state in seen:
                continue
            seen.add(state)
            pos, crossed = state
            if pos[0] == EXIT:
                continue
            event = graph.blocks[pos[0]].events[pos[1]]
            if event.kind == "await":
                crossed = True
            elif event.kind == "read" and event.attr == attr:
                if not event.derived:
                    continue  # fresh in-place read: window re-validated
            elif event.kind == "write" and event.attr == attr:
                if crossed and not _common_section(read, event):
                    line = getattr(event.node, "lineno", 0)
                    key = (attr, line)
                    if key not in reported:
                        reported.add(key)
                        findings.append(
                            self._finding(ctx, read, event, attr)
                        )
                continue  # the write closes the window either way
            for succ in graph.successors(pos):
                frontier.append((succ, crossed))

    def _finding(
        self, ctx: FileContext, read: Event, write: Event, attr: str
    ) -> Finding:
        read_line = getattr(read.node, "lineno", 0)
        how = "read here" if read.derived else "read"
        return ctx.finding(
            self.id,
            write.node,
            f"write of self.{attr} may act on a stale value: {how} at "
            f"line {read_line} crosses an await before this write, so "
            "another task can mutate the field in between; hold one "
            "async lock across both, re-read the field after the "
            "await, or annotate the function '# sc-lint: "
            "single-writer'",
        )
