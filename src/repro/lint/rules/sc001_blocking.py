"""SC001: no blocking or unbounded-read calls inside ``async def`` in
the proxy.

Table II's latency claim ("the overhead of summary cache is negligible")
holds only while the asyncio event loop never stalls: one synchronous
``time.sleep`` or socket call inside a coroutine serializes every
concurrent HTTP request and ICP round behind it.

The rule also flags unbounded stream reads — ``reader.read()`` with no
byte count (reads to EOF into one buffer) and ``readexactly(n)`` with a
non-constant length (a peer-controlled ``n`` becomes a peer-controlled
allocation).  The proxy's framing layer reads bodies in bounded chunks
(``repro.proxy.http.read_body``); new code must do the same.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.lint.astutil import import_map, resolve_call_name
from repro.lint.framework import FileContext, Finding, Rule, register

#: Fully-qualified call targets that block the event loop, with the
#: asyncio-native replacement the finding suggests.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "await asyncio.sleep(...)",
    "socket.create_connection": "asyncio.open_connection(...)",
    "socket.getaddrinfo": "loop.getaddrinfo(...)",
    "socket.gethostbyname": "loop.getaddrinfo(...)",
    "os.system": "asyncio.create_subprocess_shell(...)",
    "os.popen": "asyncio.create_subprocess_shell(...)",
    "open": "asyncio.to_thread(open, ...) or aiofiles",
    "io.open": "asyncio.to_thread(...)",
    "urllib.request.urlopen": "asyncio.open_connection(...)",
}

#: Module prefixes whose every call is considered blocking.
BLOCKING_PREFIXES: Dict[str, str] = {
    "subprocess": "asyncio.create_subprocess_exec(...)",
    "socket": "the asyncio transport/protocol APIs",
    "requests": "asyncio.open_connection(...)",
}


#: Stream-read method names checked for a missing/unbounded size.
UNBOUNDED_READ_METHODS = ("read", "readexactly")


def _unbounded_read_message(call: ast.Call) -> str:
    """The SC001 message when *call* is an unbounded stream read, else
    the empty string."""
    if not isinstance(call.func, ast.Attribute):
        return ""
    method = call.func.attr
    if method not in UNBOUNDED_READ_METHODS or call.keywords:
        return ""
    if method == "read":
        if not call.args:
            return (
                "unbounded .read() inside async def reads to EOF into "
                "one buffer; pass an explicit chunk size "
                "(e.g. reader.read(chunk_bytes))"
            )
        if len(call.args) == 1:
            arg: ast.expr = call.args[0]
            # ``-1`` parses as USub(Constant(1)); normalise it.
            value: object = None
            if isinstance(arg, ast.UnaryOp) and isinstance(
                arg.op, ast.USub
            ):
                arg = arg.operand
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, int
                ):
                    value = -arg.value
            elif isinstance(arg, ast.Constant):
                value = arg.value
            if value is None and not isinstance(arg, ast.Constant):
                return ""
            if value is None or (isinstance(value, int) and value < 0):
                return (
                    f".read({value!r}) inside async def is an "
                    "unbounded read-to-EOF; pass a positive chunk size"
                )
        return ""
    # readexactly: a literal length is a static bound; anything
    # computed can be peer-controlled (e.g. a Content-Length header)
    # and allocates that many bytes in one go.
    if len(call.args) == 1 and isinstance(call.args[0], ast.Constant):
        return ""
    return (
        ".readexactly() with a non-constant length inside async def "
        "turns a peer-supplied size into an allocation; read in "
        "bounded chunks instead (see repro.proxy.http.read_body)"
    )


@register
class NoBlockingCallsInAsync(Rule):
    """Flag event-loop-blocking and unbounded-read calls inside
    ``async def`` bodies."""

    id = "SC001"
    title = "no blocking or unbounded-read calls inside async def"
    rationale = (
        "The asyncio proxy must never block its event loop: the Table II "
        "latency results assume ICP rounds and HTTP serving interleave "
        "freely (paper Section IV)."
    )
    scopes = ("repro/proxy",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = import_map(ctx.tree)
        findings: List[Finding] = []
        self._walk(ctx, ctx.tree, in_async=False, imports=imports, out=findings)
        return iter(findings)

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        in_async: bool,
        imports: Dict[str, str],
        out: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                self._walk(ctx, child, True, imports, out)
            elif isinstance(child, (ast.FunctionDef, ast.Lambda)):
                # A sync def/lambda nested inside a coroutine is almost
                # always invoked from that coroutine (a sort key, a
                # callback handed to loop.call_soon, a local helper) --
                # it runs on the loop, so it inherits async scope.
                # Module/class-level sync defs stay sync scope.
                self._walk(ctx, child, in_async, imports, out)
            else:
                if in_async and isinstance(child, ast.Call):
                    self._check_call(ctx, child, imports, out)
                self._walk(ctx, child, in_async, imports, out)

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        imports: Dict[str, str],
        out: List[Finding],
    ) -> None:
        unbounded = _unbounded_read_message(call)
        if unbounded:
            out.append(ctx.finding(self.id, call, unbounded))
            return
        name = resolve_call_name(call.func, imports)
        if name is None:
            return
        hit: Tuple[str, str] = ("", "")
        if name in BLOCKING_CALLS:
            hit = (name, BLOCKING_CALLS[name])
        else:
            root = name.partition(".")[0]
            if root in BLOCKING_PREFIXES and name != root:
                hit = (name, BLOCKING_PREFIXES[root])
        if hit[0]:
            out.append(
                ctx.finding(
                    self.id,
                    call,
                    f"blocking call {hit[0]}() inside async def; "
                    f"use {hit[1]} instead",
                )
            )
