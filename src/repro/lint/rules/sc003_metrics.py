"""SC003: metric names are unique, snake_case, Prometheus-conventional,
and documented in ``docs/observability.md``.

Kangasharju et al.'s measurement critique (PAPERS.md) shows how
silently-broken instrumentation invalidates cache evaluations; every
Table/Figure number in this reproduction is a registry read, so the
registry's naming contract is load-bearing.  Counters end in ``_total``,
histograms carry a base-unit suffix, one name never changes kind between
call sites, and the catalogue table in ``docs/observability.md`` stays
in sync with the code.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.framework import (
    FileContext,
    Finding,
    ProjectContext,
    Rule,
    register,
)

#: Attribute / wrapper names that register an instrument, mapped to the
#: instrument kind they produce.
INSTRUMENT_METHODS: Dict[str, str] = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "time_block": "histogram",
    "timed": "histogram",
}

_SNAKE_RE = re.compile(r"^[a-z][a-z0-9]*(_[a-z0-9]+)*$")

#: Prometheus base-unit suffixes accepted for histograms.
HISTOGRAM_SUFFIXES = ("_seconds", "_bytes")

#: One row of the doc catalogue: | `name` | kind | ... |
_DOC_ROW_RE = re.compile(
    r"^\|\s*`(?P<name>[A-Za-z0-9_]+)`\s*\|\s*(?P<kind>counter|gauge|histogram)\s*\|"
)

#: A registration site recorded for the cross-file phase.
Registration = Tuple[str, str, int]  # (kind, rel_path, line)


@register
class MetricNameConventions(Rule):
    """Validate metric names and cross-check the doc catalogue."""

    id = "SC003"
    title = "metric naming: unique, snake_case, Prometheus suffixes, documented"
    rationale = (
        "Every Table/Figure number is a registry read; a misnamed or "
        "shadowed metric silently breaks the evaluation (PAPERS.md, 'You "
        "Really Need A Good Ruler...')."
    )
    scopes = ("repro",)
    exempt = ("repro/lint",)

    #: The doc file holding the catalogue table.
    doc_name = "observability.md"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        registrations = self._registrations(ctx.tree)
        store = ctx.project.scratch(self.id)
        by_name = store.setdefault("by_name", {})
        assert isinstance(by_name, dict)

        for name_node, kind in registrations:
            name = name_node.value
            if not isinstance(name, str):
                continue
            if not _SNAKE_RE.match(name):
                findings.append(
                    ctx.finding(
                        self.id,
                        name_node,
                        f"metric name {name!r} is not snake_case",
                    )
                )
                continue
            if kind == "counter" and not name.endswith("_total"):
                findings.append(
                    ctx.finding(
                        self.id,
                        name_node,
                        f"counter {name!r} must end in '_total' "
                        "(Prometheus convention)",
                    )
                )
            if kind == "gauge" and name.endswith("_total"):
                findings.append(
                    ctx.finding(
                        self.id,
                        name_node,
                        f"gauge {name!r} must not end in '_total' "
                        "(reserved for counters)",
                    )
                )
            if kind == "histogram" and not name.endswith(HISTOGRAM_SUFFIXES):
                findings.append(
                    ctx.finding(
                        self.id,
                        name_node,
                        f"histogram {name!r} must end in a base-unit "
                        f"suffix {HISTOGRAM_SUFFIXES}",
                    )
                )
            sites = by_name.setdefault(name, [])
            sites.append((kind, ctx.rel_path, name_node.lineno))

        return iter(findings)

    def finalize(self, project: ProjectContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        store = project.scratch(self.id)
        by_name = store.get("by_name", {})
        assert isinstance(by_name, dict)

        # Global uniqueness: one name, one instrument kind.
        for name, sites in sorted(by_name.items()):
            kinds = sorted({kind for kind, _, _ in sites})
            if len(kinds) > 1:
                first_kind, first_path, first_line = sites[0]
                for kind, path, line in sites[1:]:
                    if kind == first_kind:
                        continue
                    findings.append(
                        Finding(
                            path=path,
                            line=line,
                            col=0,
                            rule=self.id,
                            message=(
                                f"metric {name!r} registered as {kind} "
                                f"here but as {first_kind} at "
                                f"{first_path}:{first_line}"
                            ),
                        )
                    )

        # Doc catalogue cross-check (skipped when docs are unavailable,
        # e.g. linting an installed package outside the repo).
        doc = project.read_doc(self.doc_name)
        if doc is None or not by_name:
            return iter(findings)
        doc_path = project.doc_rel_path(self.doc_name)
        documented: Dict[str, Tuple[str, int]] = {}
        for lineno, line_text in enumerate(doc.splitlines(), start=1):
            match = _DOC_ROW_RE.match(line_text.strip())
            if match is not None:
                documented[match.group("name")] = (
                    match.group("kind"),
                    lineno,
                )
        if not documented:
            findings.append(
                Finding(
                    path=doc_path,
                    line=1,
                    col=0,
                    rule=self.id,
                    message=(
                        "no metric catalogue table found "
                        "(rows of the form | `name` | kind | ...)"
                    ),
                )
            )
            return iter(findings)

        for name, sites in sorted(by_name.items()):
            kind, path, line = sites[0]
            entry = documented.get(name)
            if entry is None:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule=self.id,
                        message=(
                            f"metric {name!r} is not documented in "
                            f"{doc_path}'s catalogue table"
                        ),
                    )
                )
            elif entry[0] != kind:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule=self.id,
                        message=(
                            f"metric {name!r} is a {kind} in code but "
                            f"documented as {entry[0]} at "
                            f"{doc_path}:{entry[1]}"
                        ),
                    )
                )
        code_names = set(by_name)
        for name, (kind, lineno) in sorted(documented.items()):
            if name not in code_names:
                findings.append(
                    Finding(
                        path=doc_path,
                        line=lineno,
                        col=0,
                        rule=self.id,
                        message=(
                            f"documented metric {name!r} is not "
                            "registered anywhere in the linted sources"
                        ),
                    )
                )
        return iter(findings)

    # ------------------------------------------------------------------
    # registration-site discovery
    # ------------------------------------------------------------------

    def _registrations(
        self, tree: ast.Module
    ) -> List[Tuple[ast.Constant, str]]:
        """``(name_literal_node, kind)`` for every registration site.

        Three idioms are recognised:

        - method calls: ``registry.counter("name", ...)``,
          ``self.registry.histogram(...)``, ``get_registry().gauge(...)``;
        - bound-method aliases: ``c = registry.counter`` then
          ``c("name", ...)``;
        - thin local wrappers literally named ``counter`` / ``gauge`` /
          ``histogram``: ``counter("name", ...)``.

        Sites whose name argument is not a string literal are skipped --
        dynamic names cannot be statically checked.
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.value, ast.Attribute)
                and node.value.attr in INSTRUMENT_METHODS
            ):
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    aliases[target.id] = INSTRUMENT_METHODS[node.value.attr]

        out: List[Tuple[ast.Constant, str]] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            kind: Optional[str] = None
            func = node.func
            if isinstance(func, ast.Attribute):
                kind = INSTRUMENT_METHODS.get(func.attr)
            elif isinstance(func, ast.Name):
                kind = aliases.get(func.id)
                if kind is None and func.id in (
                    "counter",
                    "gauge",
                    "histogram",
                ):
                    kind = func.id
            if kind is None:
                continue
            name_node = node.args[0] if node.args else None
            if isinstance(name_node, ast.Constant) and isinstance(
                name_node.value, str
            ):
                out.append((name_node, kind))
        return out
