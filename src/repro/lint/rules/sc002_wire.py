"""SC002: wire ``struct`` formats are explicit network byte order and
their computed sizes match the declared header-size constants.

The SC-ICP layout of Section VI is defined big-endian; a host-order
format string would interoperate only between same-endian peers, and a
header constant drifting from its format string silently corrupts every
offset computation downstream (MTU budgeting, payload slicing).
"""

from __future__ import annotations

import ast
import struct as struct_mod
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.astutil import (
    import_map,
    resolve_call_name,
    single_name_assign,
    string_value,
)
from repro.lint.framework import FileContext, Finding, Rule, register

#: ``struct`` functions whose first argument is a format string.
STRUCT_FUNCTIONS = (
    "struct.pack",
    "struct.pack_into",
    "struct.unpack",
    "struct.unpack_from",
    "struct.iter_unpack",
    "struct.calcsize",
    "struct.Struct",
)

#: Module-level ``_NAME = struct.Struct(...)`` assignments whose size
#: constant does not follow the ``NAME_SIZE`` naming pattern.
SIZE_CONSTANT_ALIASES: Dict[str, str] = {
    "_HEADER": "ICP_HEADER_SIZE",
}


def _expected_size_constant(struct_name: str) -> str:
    """``_DIRUPDATE_HEADER`` -> ``DIRUPDATE_HEADER_SIZE`` (and aliases)."""
    alias = SIZE_CONSTANT_ALIASES.get(struct_name)
    if alias is not None:
        return alias
    return struct_name.lstrip("_") + "_SIZE"


@register
class WireFormatByteOrder(Rule):
    """Check byte order and header-size consistency of struct formats."""

    id = "SC002"
    title = "wire struct formats: network byte order + size constants"
    rationale = (
        "Section VI-A defines the SC-ICP header layout big-endian; every "
        "format string must carry an explicit '!' and computed header "
        "sizes must match the declared *_SIZE constants."
    )
    scopes = ("repro",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = import_map(ctx.tree)
        findings: List[Finding] = []

        int_constants: Dict[str, int] = {}
        struct_assigns: List[Tuple[str, ast.Call, str]] = []

        for node in ctx.tree.body:
            assigned = single_name_assign(node)
            if assigned is None:
                continue
            target, value = assigned
            if (
                isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
            ):
                int_constants[target] = value.value
            elif isinstance(value, ast.Call):
                name = resolve_call_name(value.func, imports)
                if name == "struct.Struct":
                    fmt = self._format_arg(value)
                    if fmt is not None:
                        struct_assigns.append((target, value, fmt))

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, imports)
            if name not in STRUCT_FUNCTIONS:
                continue
            fmt_node = node.args[0] if node.args else None
            if fmt_node is None:
                continue
            fmt = string_value(fmt_node)
            if fmt is None:
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"{name}() format is not a string literal; "
                        "wire formats must be statically verifiable",
                    )
                )
                continue
            if not fmt.startswith("!"):
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"struct format {fmt!r} does not use explicit "
                        "network byte order ('!')",
                    )
                )

        for target, call, fmt in struct_assigns:
            const_name = _expected_size_constant(target)
            declared = int_constants.get(const_name)
            if declared is None:
                continue
            try:
                computed = struct_mod.calcsize(fmt)  # sc-lint: disable=SC002
            except struct_mod.error:
                findings.append(
                    ctx.finding(
                        self.id, call, f"invalid struct format {fmt!r}"
                    )
                )
                continue
            if computed != declared:
                findings.append(
                    ctx.finding(
                        self.id,
                        call,
                        f"struct format {fmt!r} packs {computed} bytes "
                        f"but {const_name} declares {declared}",
                    )
                )

        return iter(findings)

    @staticmethod
    def _format_arg(call: ast.Call) -> Optional[str]:
        if call.args:
            return string_value(call.args[0])
        return None
