"""SC004: Bloom bit arrays and counters mutate only through the core.

The Section V-C overflow analysis (4-bit counters overflow with
probability 1.37e-15 per entry) holds only when every increment and
decrement travels through :class:`~repro.core.counting_bloom.
CountingBloomFilter`, which validates underflow and records the 0 <-> 1
transitions a delta update needs.  A stray ``filter.bits.set(...)`` in a
simulator desynchronizes the shipped copy from the counters without any
runtime error.

The same discipline covers placement state: the hash ring and the
:class:`~repro.placement.live.Placement` wrapper keep every proxy's
owner derivation in agreement, which only holds while membership
changes travel through their public API.  Reaching into ring internals
(``placement._ring``, ``ring._points``) from a caller would let one
proxy's view drift from its peers' with no runtime error, so those
privates are confined to ``repro.placement``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.lint.astutil import dotted_name
from repro.lint.framework import FileContext, Finding, Rule, register

#: Attribute names that hold a BitArray / CounterArray on the summary
#: structures (``BloomFilter.bits``, ``CountingBloomFilter.counters``).
STORAGE_ATTRIBUTES = ("bits", "counters", "bit_array", "counter_array")

#: Mutating methods of BitArray / CounterArray.
MUTATOR_METHODS = (
    "set",
    "set_many",
    "flip",
    "reset",
    "increment",
    "decrement",
    "load_from",
    "load_bytes",
    "apply_flips",
)

#: Private storage internals of BitArray / CounterArray; touching these
#: anywhere outside core/ is always a violation.
PRIVATE_STORAGE_ATTRIBUTES = ("_buf", "_popcount")

#: Private internals of HashRing / Placement; touching these anywhere
#: outside ``repro/placement`` is always a violation (membership
#: changes go through the public with_member / add_member API, which
#: keeps every proxy's owner derivation consistent).
PLACEMENT_PRIVATE_ATTRIBUTES = ("_ring", "_points", "_self_name")

#: Directories allowed to touch placement internals.
PLACEMENT_EXEMPT = ("repro/placement",)


@register
class SummaryEncapsulation(Rule):
    """Flag direct bit/counter mutation outside ``core/``/``summaries/``."""

    id = "SC004"
    title = (
        "no direct BitArray/counter mutation outside core and "
        "summaries; no placement/ring internals outside placement"
    )
    rationale = (
        "Section V-C's counter overflow bound assumes disciplined "
        "increments/decrements through the counting filter; direct bit "
        "twiddling desynchronizes summaries from their counters.  "
        "Likewise owner derivation assumes ring membership only ever "
        "changes through repro.placement's public API."
    )
    scopes = ("repro",)
    exempt = ("repro/core", "repro/summaries", "repro/lint")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        placement_confined = not any(
            self._fragment_matches(f, ctx.rel_path)
            for f in PLACEMENT_EXEMPT
        )
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in PRIVATE_STORAGE_ATTRIBUTES
                and not self._is_self_access(node.value)
            ):
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"access to private storage field .{node.attr} "
                        "outside repro.core",
                    )
                )
            if (
                placement_confined
                and isinstance(node, ast.Attribute)
                and node.attr in PLACEMENT_PRIVATE_ATTRIBUTES
                and not self._is_self_access(node.value)
            ):
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"access to placement internal .{node.attr} "
                        "outside repro.placement; go through the "
                        "Placement / HashRing public API instead",
                    )
                )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                owner = self._storage_owner(func.value)
                if owner is not None:
                    findings.append(
                        ctx.finding(
                            self.id,
                            node,
                            f"direct mutation {owner}.{func.attr}(...) "
                            "outside repro.core/repro.summaries; go "
                            "through CountingBloomFilter / the summary "
                            "backend instead",
                        )
                    )
        return iter(findings)

    @staticmethod
    def _storage_owner(node: ast.expr) -> Optional[str]:
        """Dotted receiver when it names bit/counter storage, else None.

        Matches receivers whose final attribute (or bare name) is one of
        :data:`STORAGE_ATTRIBUTES`, e.g. ``summary.filter.bits`` or a
        local variable literally called ``counters``.
        """
        if isinstance(node, ast.Attribute) and node.attr in STORAGE_ATTRIBUTES:
            return dotted_name(node) or node.attr
        if isinstance(node, ast.Name) and node.id in STORAGE_ATTRIBUTES:
            return node.id
        return None

    @staticmethod
    def _is_self_access(node: ast.expr) -> bool:
        """True for ``self._buf``-style access (a class's own internals)."""
        return isinstance(node, ast.Name) and node.id == "self"
