"""SC005: library code raises only the ``repro.errors`` hierarchy and
never uses bare ``except``.

Callers distinguish library failures from programming errors by
catching :class:`~repro.errors.ReproError`; a stray ``raise ValueError``
escapes that contract, and a bare ``except:`` swallows
``KeyboardInterrupt``/``SystemExit`` along with genuine bugs.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List

from repro.lint.framework import FileContext, Finding, Rule, register

#: Builtin exceptions library code must not raise directly.  The repro
#: hierarchy subclasses the natural builtins (``ConfigurationError`` is
#: a ``ValueError``, ``CacheStateError`` a ``KeyError``, ...), so raising
#: the domain class keeps builtin-catching callers working.
FORBIDDEN_BUILTIN_RAISES: FrozenSet[str] = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopAsyncIteration",
        "StopIteration",
        "SystemError",
        "TimeoutError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


@register
class ExceptionHygiene(Rule):
    """Flag builtin-exception raises and bare excepts in library code."""

    id = "SC005"
    title = "raise only the repro.errors hierarchy; no bare except"
    rationale = (
        "Callers catch ReproError to separate library failures from "
        "programming errors; builtin raises and bare excepts break that "
        "contract (and bare except swallows KeyboardInterrupt)."
    )
    scopes = ("repro",)
    exempt = ()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        "bare 'except:' swallows KeyboardInterrupt and "
                        "SystemExit; catch a specific exception",
                    )
                )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                name = self._raised_name(node.exc)
                if name in FORBIDDEN_BUILTIN_RAISES:
                    findings.append(
                        ctx.finding(
                            self.id,
                            node,
                            f"raise of builtin {name}; raise a "
                            "repro.errors class instead (subclass the "
                            "builtin if callers rely on it)",
                        )
                    )
        return iter(findings)

    @staticmethod
    def _raised_name(exc: ast.expr) -> str:
        """The exception class name of ``raise X`` / ``raise X(...)``."""
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            return exc.id
        return ""
