"""Built-in ``sc-lint`` rules.

Importing this package registers every rule with the framework
registry; the catalogue (ids, scopes, rationale) is documented in
``docs/static-analysis.md``.
"""

from repro.lint.rules.sc001_blocking import NoBlockingCallsInAsync
from repro.lint.rules.sc002_wire import WireFormatByteOrder
from repro.lint.rules.sc003_metrics import MetricNameConventions
from repro.lint.rules.sc004_encapsulation import SummaryEncapsulation
from repro.lint.rules.sc005_exceptions import ExceptionHygiene
from repro.lint.rules.sc006_codec_sync import CodecDocSync
from repro.lint.rules.sc007_races import InterleavedReadModifyWrite
from repro.lint.rules.sc008_lifecycle import ResourceLifecycleLeaks
from repro.lint.rules.sc009_locks import LockDiscipline

__all__ = [
    "NoBlockingCallsInAsync",
    "WireFormatByteOrder",
    "MetricNameConventions",
    "SummaryEncapsulation",
    "ExceptionHygiene",
    "CodecDocSync",
    "InterleavedReadModifyWrite",
    "ResourceLifecycleLeaks",
    "LockDiscipline",
]
