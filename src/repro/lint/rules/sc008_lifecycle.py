"""SC008: spans, pooled connections, and writers must not leak.

A :class:`~repro.obs.spans.Span` that is started but never ended stays
"live" in the span ring forever (its duration reads ``None`` in every
scrape and the cluster aggregator counts it unfinished); a pooled
connection that is acquired but neither released nor closed strands a
socket.  The dangerous paths are rarely the happy ones -- they are the
**exceptional** exits, and under asyncio every ``await`` between
acquire and release is also a *cancellation* point: a client
disconnect cancels the handler task mid-await and unwinds through
whatever ``finally`` protection exists.  ``except Exception`` is not
protection (``CancelledError`` derives from ``BaseException``).

The rule tracks three acquisition shapes over the CFG::

    span = <ring>.start_span(...)          # span
    conn = await <pool>.acquire(...)       # pooled connection
    reader, writer = await asyncio.open_connection(...)  # writer

and reports when function exit (fall-through, ``return``, or an
escaping exception edge) is reachable without one of the release
shapes: ``name.end(...)`` / ``name.close()`` (chained forms too),
``<x>.release(name, ...)``, entering ``with name:`` (the context
manager owns cleanup from then on), or ownership escape (``return
name`` / passing ``name`` to a constructor).  Acquiring directly into
a ``with`` block (``with ring.start_span(...) as s:``) never trips the
rule -- that is the recommended fix.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.flow import (
    EXIT,
    Event,
    EventPos,
    FlowGraph,
    build_flow_graph,
    iter_async_functions,
)
from repro.lint.framework import FileContext, Finding, Rule, register

#: ``(resource kind, acquisition description)`` per detected pattern.
_SPAN, _CONN, _WRITER = "span", "pooled connection", "stream writer"

#: Release method names per kind (called on the tracked name).
_RELEASE_METHODS = {
    _SPAN: frozenset({"end"}),
    _CONN: frozenset({"close"}),
    _WRITER: frozenset({"close", "abort"}),
}


def _acquisition(event: Event) -> Optional[Tuple[str, str]]:
    """``(kind, name)`` when *event* is an ``assign`` of a tracked
    acquisition, else ``None``."""
    node = event.node
    if not isinstance(node, ast.Assign) or not event.targets:
        return None
    value = node.value
    call = value.value if isinstance(value, ast.Await) else value
    if not isinstance(call, ast.Call) or not isinstance(
        call.func, ast.Attribute
    ):
        return None
    method = call.func.attr
    if method == "start_span":
        return (_SPAN, event.targets[0])
    if not isinstance(value, ast.Await):
        return None
    if method == "acquire":
        owner = call.func.value
        chain_attr = (
            owner.attr if isinstance(owner, ast.Attribute) else (
                owner.id if isinstance(owner, ast.Name) else ""
            )
        )
        if "pool" in chain_attr.lower():
            return (_CONN, event.targets[0])
    if method == "open_connection" and len(event.targets) == 2:
        return (_WRITER, event.targets[1])
    return None


@register
class ResourceLifecycleLeaks(Rule):
    """Flag resource acquisitions with a leak path to function exit."""

    id = "SC008"
    title = "span/connection acquired on a path that can exit before release"
    rationale = (
        "A live span that never ends corrupts every duration the "
        "cluster aggregator reports, and a stranded upstream socket "
        "defeats the keep-alive pool the Section IV overhead numbers "
        "depend on; cancellation can land on any await, so only "
        "try/finally, a BaseException handler, or `with span:` "
        "actually covers the window."
    )
    scopes = ("repro/proxy", "repro/obs")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for _cls, func in iter_async_functions(ctx.tree):
            # Effects expansion is unnecessary here (and emitting
            # derived events would obscure release-call matching).
            graph = build_flow_graph(func)
            for pos, event in graph.events():
                acq = _acquisition(event)
                if acq is None:
                    continue
                kind, name = acq
                leak = self._leak_witness(graph, pos, kind, name)
                if leak is not None:
                    findings.append(
                        self._finding(ctx, event, kind, name, leak)
                    )
        return iter(findings)

    def _leak_witness(
        self, graph: FlowGraph, start: EventPos, kind: str, name: str
    ) -> Optional[Event]:
        """BFS from the acquisition; the event whose edge reaches EXIT
        with the resource still held, or ``None`` when every path
        releases first."""
        release_methods = _RELEASE_METHODS[kind]
        seen: Set[EventPos] = set()
        frontier: List[Tuple[EventPos, Event]] = [
            (succ, graph.blocks[start[0]].events[start[1]])
            for succ in graph.successors(start)
        ]
        while frontier:
            pos, via = frontier.pop()
            if pos in seen:
                continue
            seen.add(pos)
            if pos[0] == EXIT:
                return via
            event = graph.blocks[pos[0]].events[pos[1]]
            if self._releases(event, name, release_methods):
                continue
            if event.kind == "assign" and name in event.targets:
                continue  # rebound before release: treat as handed off
            for succ in graph.successors(pos):
                frontier.append((succ, event))
        return None

    @staticmethod
    def _releases(
        event: Event, name: str, release_methods: "frozenset[str]"
    ) -> bool:
        if event.kind == "return" and isinstance(event.node, ast.Return):
            value = event.node.value
            if isinstance(value, ast.Name) and value.id == name:
                return True  # ownership transferred to the caller
            if isinstance(value, ast.Call) and any(
                isinstance(a, ast.Name) and a.id == name
                for a in value.args
            ):
                return True  # wrapped and returned (constructor escape)
        if event.kind != "call":
            return False
        if event.call_root == name and (
            event.call_method in release_methods
            or event.call_method == "__exit__"
        ):
            return True
        # ``pool.release(conn, ...)`` style: released by another object.
        if event.call_method == "release" and name in event.call_args:
            return True
        # Constructor escape: ``PooledConnection(host, port, r, w)``.
        if (
            event.call_root[:1].isupper()
            and name in event.call_args
        ):
            return True
        return False

    def _finding(
        self,
        ctx: FileContext,
        event: Event,
        kind: str,
        name: str,
        leak: Event,
    ) -> Finding:
        leak_line = getattr(leak.node, "lineno", 0)
        leak_kind = (
            "a cancellation/exception at the await"
            if leak.kind == "await"
            else "an exit"
        )
        return ctx.finding(
            self.id,
            event.node,
            f"{kind} {name!r} can leak: {leak_kind} on line "
            f"{leak_line} reaches function exit before "
            f"{'.end()' if kind == _SPAN else 'release/close'}; "
            "acquire it with a with-statement (e.g. 'with "
            "ring.start_span(...) as span:') or protect the window "
            "with try/finally",
        )
