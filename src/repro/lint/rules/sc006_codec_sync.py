"""SC006: codec representation ids stay in sync with the wire doc.

``summaries/codec.py`` maps summary kinds to the wire representation
ids of ``protocol/wire.py``; ``docs/wire-protocol.md`` documents the
same table for implementers of other stacks.  The three must agree --
an id drift would make a proxy route a DIRUPDATE payload to the wrong
decoder, the exact failure class the Options-field tagging exists to
prevent.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.astutil import int_value, single_name_assign, string_value
from repro.lint.framework import FileContext, Finding, Rule, register

#: One doc table row: | 0 | `REPR_BLOOM` | ... |
_DOC_ROW_RE = re.compile(
    r"^\|\s*(?P<id>\d+)\s*\|\s*`(?P<name>REPR_[A-Z_]+)`\s*\|"
)


@register
class CodecDocSync(Rule):
    """Cross-check codec kinds, wire REPR constants, and the doc table."""

    id = "SC006"
    title = "codec representation ids match protocol/wire.py and the doc"
    rationale = (
        "The Options-field representation id routes DIRUPDATE payloads "
        "(Section VI-A extension); an id drift between codec, wire "
        "constants, and docs/wire-protocol.md mis-decodes peer updates."
    )
    scopes = ("repro/summaries/codec.py",)

    doc_name = "wire-protocol.md"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []

        mapping = self._kind_mapping(ctx.tree)
        if mapping is None:
            findings.append(
                ctx.finding(
                    self.id,
                    1,
                    "no KIND_TO_REPRESENTATION dict literal of "
                    "{kind: REPR_* constant} found",
                )
            )
            return iter(findings)
        mapping_node, entries = mapping

        constants = self._wire_constants(ctx)
        if constants:
            for kind, (repr_name, node) in sorted(entries.items()):
                if repr_name not in constants:
                    findings.append(
                        ctx.finding(
                            self.id,
                            node,
                            f"kind {kind!r} maps to {repr_name}, which "
                            "protocol/wire.py does not define",
                        )
                    )
            covered = {repr_name for repr_name, _ in entries.values()}
            for repr_name in sorted(set(constants) - covered):
                findings.append(
                    ctx.finding(
                        self.id,
                        mapping_node,
                        f"wire constant {repr_name} "
                        f"(id {constants[repr_name]}) has no "
                        "KIND_TO_REPRESENTATION entry",
                    )
                )

        doc = ctx.project.read_doc(self.doc_name)
        if doc is not None and constants:
            findings.extend(self._check_doc(ctx, doc, constants))
        return iter(findings)

    # ------------------------------------------------------------------

    def _kind_mapping(
        self, tree: ast.Module
    ) -> Optional[Tuple[ast.AST, Dict[str, Tuple[str, ast.AST]]]]:
        """The ``KIND_TO_REPRESENTATION`` literal: kind -> (REPR name, node)."""
        for node in tree.body:
            assign = single_name_assign(node)
            if assign is None:
                continue
            name, value_node = assign
            if name != "KIND_TO_REPRESENTATION" or not isinstance(
                value_node, ast.Dict
            ):
                continue
            entries: Dict[str, Tuple[str, ast.AST]] = {}
            for key, value in zip(value_node.keys, value_node.values):
                kind = string_value(key) if key is not None else None
                if kind is None or not isinstance(value, ast.Name):
                    return None
                entries[kind] = (value.id, value)
            return node, entries
        return None

    def _wire_constants(self, ctx: FileContext) -> Dict[str, int]:
        """``REPR_* -> id`` from protocol/wire.py (static parse first)."""
        wire_path = ctx.path.parent.parent / "protocol" / "wire.py"
        if wire_path.is_file():
            try:
                tree = ast.parse(
                    wire_path.read_text(encoding="utf-8"),
                    filename=str(wire_path),
                )
            except (OSError, SyntaxError):
                return {}
            out: Dict[str, int] = {}
            for node in tree.body:
                assign = single_name_assign(node)
                if assign is None or not assign[0].startswith("REPR_"):
                    continue
                value = int_value(assign[1])
                if value is not None:
                    out[assign[0]] = value
            return out
        # Outside a source tree (installed package): use the live module.
        try:
            from repro.protocol import wire
        except ImportError:  # pragma: no cover - repro always importable
            return {}
        return {
            name: value
            for name, value in vars(wire).items()
            if name.startswith("REPR_") and isinstance(value, int)
        }

    def _check_doc(
        self, ctx: FileContext, doc: str, constants: Dict[str, int]
    ) -> List[Finding]:
        findings: List[Finding] = []
        doc_path = ctx.project.doc_rel_path(self.doc_name)
        documented: Dict[str, Tuple[int, int]] = {}
        for lineno, line_text in enumerate(doc.splitlines(), start=1):
            match = _DOC_ROW_RE.match(line_text.strip())
            if match is not None:
                documented[match.group("name")] = (
                    int(match.group("id")),
                    lineno,
                )
        if not documented:
            findings.append(
                Finding(
                    path=doc_path,
                    line=1,
                    col=0,
                    rule=self.id,
                    message=(
                        "no representation-id table found (rows of the "
                        "form | 0 | `REPR_BLOOM` | ...)"
                    ),
                )
            )
            return findings
        for name, value in sorted(constants.items()):
            entry = documented.get(name)
            if entry is None:
                findings.append(
                    ctx.finding(
                        self.id,
                        1,
                        f"wire constant {name} (id {value}) is missing "
                        f"from {doc_path}'s representation table",
                    )
                )
            elif entry[0] != value:
                findings.append(
                    Finding(
                        path=doc_path,
                        line=entry[1],
                        col=0,
                        rule=self.id,
                        message=(
                            f"{name} documented as id {entry[0]} but "
                            f"protocol/wire.py defines {value}"
                        ),
                    )
                )
        for name, (value, lineno) in sorted(documented.items()):
            if name not in constants:
                findings.append(
                    Finding(
                        path=doc_path,
                        line=lineno,
                        col=0,
                        rule=self.id,
                        message=(
                            f"documented representation {name} "
                            f"(id {value}) is not defined in "
                            "protocol/wire.py"
                        ),
                    )
                )
        return findings
