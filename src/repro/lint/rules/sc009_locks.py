"""SC009: lock discipline for asyncio critical sections.

Three disciplines, all checkable on the flow graph's lock context:

1. **No double-acquire.**  ``asyncio.Lock`` is not reentrant: a task
   that re-enters ``async with self._lock:`` while already holding it
   deadlocks itself (and, because the loop keeps running, the deadlock
   presents as a silent stall, not a traceback).
2. **No await inside a ``no-await`` section.**  A lock annotated
   ``# sc-lint: no-await`` (on its defining assignment or on the
   ``async with`` line) promises its critical section never yields --
   the justification for treating the guarded state as atomic.  Any
   ``await`` inside such a section breaks the promise.
3. **Acquire with ``async with``, not bare ``.acquire()``.**  A bare
   ``await lock.acquire()`` needs a matching ``release()`` on *every*
   exit path including cancellation; the context-manager form gets
   that for free, so the rule nudges toward it.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Set, Tuple

from repro.lint.flow import (
    attribute_chain,
    build_flow_graph,
    iter_async_functions,
    no_await_lines,
    no_await_lock_chains,
)
from repro.lint.framework import FileContext, Finding, Rule, register


def _lockish(chain: str, no_await_chains: FrozenSet[str]) -> bool:
    last = chain.rsplit(".", 1)[-1].lower()
    return "lock" in last or "sem" in last or chain in no_await_chains


def _with_lock_chains(
    stmt: ast.AsyncWith, no_await_chains: FrozenSet[str]
) -> List[str]:
    out: List[str] = []
    for item in stmt.items:
        chain = attribute_chain(item.context_expr)
        if chain is not None and _lockish(chain, no_await_chains):
            out.append(chain)
    return out


@register
class LockDiscipline(Rule):
    """Flag re-entrant acquires, awaits in no-await sections, and bare
    ``.acquire()`` calls on asyncio locks."""

    id = "SC009"
    title = "asyncio lock misuse (double-acquire, await in no-await section)"
    rationale = (
        "asyncio.Lock is not reentrant, so a nested acquire deadlocks "
        "the task silently; and a lock annotated no-await is the "
        "atomicity argument for its guarded state -- an await inside "
        "its section reopens exactly the interleaving window SC007 "
        "exists to close."
    )
    scopes = ()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        na_lines = no_await_lines(ctx.source)
        na_chains: Set[str] = set(
            no_await_lock_chains(ctx.tree, na_lines)
        )
        # ``async with self._x:  # sc-lint: no-await`` marks the
        # section's lock no-await at the use site.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncWith) and node.lineno in na_lines:
                for item in node.items:
                    chain = attribute_chain(item.context_expr)
                    if chain is not None:
                        na_chains.add(chain)
        frozen_na = frozenset(na_chains)

        for _cls, func in iter_async_functions(ctx.tree):
            self._check_function(
                ctx, func, frozen_na, na_lines, findings
            )
        return iter(findings)

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        na_chains: FrozenSet[str],
        na_lines: FrozenSet[int],
        findings: List[Finding],
    ) -> None:
        graph = build_flow_graph(
            func, None, na_lines, na_chains
        )
        seen_double: Set[int] = set()
        seen_no_await: Set[Tuple[str, int]] = set()
        seen_bare: Set[int] = set()
        for _pos, event in graph.events():
            held = {chain for chain, _ in event.locks}

            if event.kind == "await" and isinstance(
                event.node, ast.AsyncWith
            ):
                inner = _with_lock_chains(event.node, na_chains)
                for chain in inner:
                    if chain in held and id(event.node) not in seen_double:
                        seen_double.add(id(event.node))
                        findings.append(
                            ctx.finding(
                                self.id,
                                event.node,
                                f"double-acquire of {chain}: this task "
                                "already holds the lock and "
                                "asyncio.Lock is not reentrant -- the "
                                "task deadlocks itself; restructure so "
                                "the outer critical section covers "
                                "the work",
                            )
                        )

            if event.kind == "await":
                for chain, _ in event.locks:
                    if chain not in na_chains:
                        continue
                    lineno = getattr(event.node, "lineno", 0)
                    key = (chain, lineno)
                    if key in seen_no_await:
                        continue
                    seen_no_await.add(key)
                    findings.append(
                        ctx.finding(
                            self.id,
                            event.node,
                            f"await while holding {chain}, which is "
                            "annotated '# sc-lint: no-await': the "
                            "section's atomicity argument assumes it "
                            "never yields the event loop; move the "
                            "await outside the critical section or "
                            "drop the annotation",
                        )
                    )

            if (
                event.kind == "call"
                and event.call_method == "acquire"
                and isinstance(event.node, ast.Call)
                and isinstance(event.node.func, ast.Attribute)
            ):
                owner = attribute_chain(event.node.func.value)
                if (
                    owner is not None
                    and _lockish(owner, na_chains)
                    and id(event.node) not in seen_bare
                ):
                    seen_bare.add(id(event.node))
                    findings.append(
                        ctx.finding(
                            self.id,
                            event.node,
                            f"bare {owner}.acquire(): a matching "
                            "release() is needed on every exit path "
                            "including cancellation -- use 'async "
                            f"with {owner}:' instead",
                        )
                    )
