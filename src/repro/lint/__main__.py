"""``python -m repro.lint`` runs the standalone lint CLI."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
