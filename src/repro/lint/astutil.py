"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted names they import.

    ``import time`` yields ``{"time": "time"}``; ``import numpy as np``
    yields ``{"np": "numpy"}``; ``from time import sleep as zz`` yields
    ``{"zz": "time.sleep"}``.  Star imports are ignored.
    """
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    root = alias.name.partition(".")[0]
                    out[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                # Relative imports never alias the stdlib modules the
                # rules watch for; skip them.
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = f"{node.module}.{alias.name}"
    return out


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_name(
    func: ast.AST, imports: Dict[str, str]
) -> Optional[str]:
    """The fully-qualified dotted name a call target resolves to.

    The chain's root name is looked up in *imports*, so both
    ``time.sleep(...)`` and ``from time import sleep; sleep(...)``
    resolve to ``"time.sleep"``.  Unresolvable targets (calls on call
    results, subscripts, ...) return ``None``.
    """
    name = dotted_name(func)
    if name is None:
        return None
    root, dot, rest = name.partition(".")
    resolved_root = imports.get(root, root)
    return resolved_root + dot + rest if dot else resolved_root


def single_name_assign(
    node: ast.stmt,
) -> Optional[Tuple[str, ast.expr]]:
    """``(name, value)`` for ``NAME = value`` or ``NAME: T = value``.

    Annotated assignments count: adding a type annotation to a constant
    must not make it invisible to the rules.  Tuple targets, attribute
    targets, and bare annotations (no value) return ``None``.
    """
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        if isinstance(target, ast.Name):
            return target.id, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        if isinstance(node.target, ast.Name):
            return node.target.id, node.value
    return None


def string_value(node: ast.AST) -> Optional[str]:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def int_value(node: ast.AST) -> Optional[int]:
    """The value of an int-literal node, else ``None``."""
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None
