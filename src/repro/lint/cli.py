"""The ``sc-lint`` command line: ``summary-cache lint`` and
``python -m repro.lint``.

Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import FrozenSet, List, Optional

from repro.errors import ConfigurationError
from repro.lint.framework import LintConfig, all_rules, run_lint
from repro.lint.reporters import render_json, render_sarif, render_text


def build_parser() -> argparse.ArgumentParser:
    """The ``sc-lint`` argument parser (also mounted under ``summary-cache``)."""
    parser = argparse.ArgumentParser(
        prog="sc-lint",
        description=(
            "Project-invariant static analysis for the summary cache "
            "reproduction (rules SC001..SC009; see "
            "docs/static-analysis.md)."
        ),
    )
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on *parser* (shared with the main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help=(
            "project root for relative paths and docs/ cross-checks "
            "(default: nearest ancestor with a pyproject.toml)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def _parse_ids(raw: Optional[str]) -> Optional[FrozenSet[str]]:
    if raw is None:
        return None
    ids = frozenset(part.strip() for part in raw.split(",") if part.strip())
    return ids or None


def list_rules() -> str:
    """One line per registered rule: ``SC001  title [scopes]``."""
    lines = []
    for rule_id, cls in all_rules().items():
        scope = ", ".join(cls.scopes) if cls.scopes else "all files"
        lines.append(f"{rule_id}  {cls.title}  [{scope}]")
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(list_rules())
        return 0
    config = LintConfig(
        select=_parse_ids(args.select),
        ignore=_parse_ids(args.ignore) or frozenset(),
        root=Path(args.root) if args.root else None,
    )
    try:
        result = run_lint(args.paths, config)
    except ConfigurationError as exc:
        print(f"sc-lint: error: {exc}")
        return 2
    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result)
    output = getattr(args, "output", None)
    if output:
        try:
            Path(output).write_text(report + "\n", encoding="utf-8")
        except OSError as exc:
            print(f"sc-lint: error: cannot write {output}: {exc}")
            return 2
    else:
        print(report)
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    args = build_parser().parse_args(argv)
    return run(args)
