"""Text and JSON rendering of a :class:`~repro.lint.framework.LintResult`."""

from __future__ import annotations

import json

from repro.lint.framework import LintResult

#: Version of the JSON report schema below.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per line.

    Ends with a one-line summary (findings, files, rules) so a clean run
    still produces evidence it looked at something.
    """
    lines = [finding.render() for finding in result.findings]
    counts = result.counts
    if counts:
        per_rule = ", ".join(f"{rule}: {n}" for rule, n in counts.items())
        summary = (
            f"{len(result.findings)} finding(s) in "
            f"{result.files_checked} file(s) ({per_rule})"
        )
    else:
        summary = (
            f"clean: {result.files_checked} file(s), "
            f"{len(result.rules_run)} rule(s)"
        )
    return "\n".join([*lines, summary])


def render_json(result: LintResult) -> str:
    """Machine-readable report.

    Schema (version 1)::

        {
          "version": 1,
          "files_checked": <int>,
          "rules_run": ["SC001", ...],
          "counts": {"SC001": <int>, ...},
          "findings": [
            {"rule": "SC001", "path": "src/...", "line": 1,
             "col": 0, "message": "..."},
            ...
          ]
        }
    """
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "counts": result.counts,
        "findings": [finding.as_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
