"""Text, JSON, and SARIF rendering of a
:class:`~repro.lint.framework.LintResult`."""

from __future__ import annotations

import json

from repro.lint.framework import LintResult, all_rules

#: Version of the JSON report schema below.
JSON_SCHEMA_VERSION = 1

#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per line.

    Ends with a one-line summary (findings, files, rules) so a clean run
    still produces evidence it looked at something.
    """
    lines = [finding.render() for finding in result.findings]
    counts = result.counts
    if counts:
        per_rule = ", ".join(f"{rule}: {n}" for rule, n in counts.items())
        summary = (
            f"{len(result.findings)} finding(s) in "
            f"{result.files_checked} file(s) ({per_rule})"
        )
    else:
        summary = (
            f"clean: {result.files_checked} file(s), "
            f"{len(result.rules_run)} rule(s)"
        )
    return "\n".join([*lines, summary])


def render_json(result: LintResult) -> str:
    """Machine-readable report.

    Schema (version 1)::

        {
          "version": 1,
          "files_checked": <int>,
          "rules_run": ["SC001", ...],
          "counts": {"SC001": <int>, ...},
          "findings": [
            {"rule": "SC001", "path": "src/...", "line": 1,
             "col": 0, "message": "..."},
            ...
          ]
        }
    """
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "counts": result.counts,
        "findings": [finding.as_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report (one run, tool ``sc-lint``).

    Every executed rule appears in ``tool.driver.rules`` (so a clean
    run still documents its coverage), every finding becomes a
    ``result`` with ``level: error`` — sc-lint findings are invariant
    violations, not style nits.  Columns are 0-based internally and
    1-based in SARIF, hence the ``col + 1``.
    """
    registry = all_rules()
    rules = []
    for rule_id in result.rules_run:
        cls = registry.get(rule_id)
        if cls is None:
            continue
        rules.append(
            {
                "id": rule_id,
                "name": cls.title,
                "shortDescription": {"text": cls.title},
                "fullDescription": {"text": cls.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/")
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sc-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
