"""Representation-tagged encode/decode between summaries and the wire.

The wire protocol tags every ``ICP_OP_DIRUPDATE`` with a representation
id (see :mod:`repro.protocol.wire`); this module is the single place
that maps between those ids, the summary classes, and their delta
payloads, so the proxy never dispatches on concrete summary types:

- :func:`delta_messages` -- turn a drained delta into MTU-sized
  datagrams for whatever representation the local summary uses;
- :func:`whole_summary_messages` -- the whole-summary resync transfer
  (Bloom only: ``ICP_OP_DIGEST`` chunks);
- :func:`apply_update` -- patch (or initialize) a peer's remote copy
  from a received DIRUPDATE, rejecting updates that do not match the
  copy's representation or geometry with
  :class:`~repro.errors.SummaryMismatchError`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.bloom import BloomFilter
from repro.core.hashing import MD5HashFamily
from repro.errors import ConfigurationError, SummaryMismatchError
from repro.protocol.update import (
    DEFAULT_MTU,
    apply_dir_update,
    build_digest_messages,
    build_dir_update_messages,
    build_set_update_messages,
)
from repro.protocol.wire import (
    REPR_BLOOM,
    REPR_EXACT,
    REPR_SERVER_NAME,
    DigestChunk,
    DirUpdate,
    SetDirUpdate,
)
from repro.summaries.backend import (
    BitFlipDelta,
    DigestDelta,
    DigestKey,
    LocalSummary,
    RemoteSummary,
    SummaryDelta,
)
from repro.summaries.bloom import BloomRemote, BloomSummary
from repro.summaries.exact import ExactDirectoryRemote, ExactDirectorySummary
from repro.summaries.servername import ServerNameRemote, ServerNameSummary

#: SummaryConfig.kind <-> wire representation id.
KIND_TO_REPRESENTATION: Dict[str, int] = {
    "bloom": REPR_BLOOM,
    "exact-directory": REPR_EXACT,
    "server-name": REPR_SERVER_NAME,
}
REPRESENTATION_TO_KIND = {v: k for k, v in KIND_TO_REPRESENTATION.items()}

UpdateMessage = Union[DirUpdate, SetDirUpdate]


def representation_id(kind: str) -> int:
    """The wire representation id for a ``SummaryConfig.kind``."""
    try:
        return KIND_TO_REPRESENTATION[kind]
    except KeyError:
        raise ConfigurationError(f"unknown summary kind {kind!r}") from None


def representation_kind(rep_id: int) -> str:
    """The ``SummaryConfig.kind`` for a wire representation id."""
    try:
        return REPRESENTATION_TO_KIND[rep_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown representation id {rep_id}"
        ) from None


def _encode_record(record: DigestKey) -> bytes:
    """One delta record as wire bytes (digests pass through, names UTF-8)."""
    if isinstance(record, bytes):
        return record
    return record.encode("utf-8")


def _decode_records(
    representation: int, records: Iterable[bytes]
) -> List[DigestKey]:
    """Wire records back to summary keys (names decode to ``str``)."""
    if representation == REPR_SERVER_NAME:
        return [record.decode("utf-8") for record in records]
    return list(records)


def delta_messages(
    summary: LocalSummary,
    delta: SummaryDelta,
    mtu: int = DEFAULT_MTU,
    request_number: int = 0,
    sender: int = 0,
) -> List[UpdateMessage]:
    """Batch a drained *delta* into DIRUPDATE datagrams for *summary*."""
    if isinstance(summary, BloomSummary):
        if not isinstance(delta, BitFlipDelta):
            raise ConfigurationError(
                f"Bloom summary cannot ship a {type(delta).__name__}"
            )
        return build_dir_update_messages(
            delta.flips,
            summary.hash_family,
            summary.num_bits,
            mtu=mtu,
            request_number=request_number,
            sender=sender,
        )
    if isinstance(summary, ExactDirectorySummary):
        representation = REPR_EXACT
    elif isinstance(summary, ServerNameSummary):
        representation = REPR_SERVER_NAME
    else:
        raise ConfigurationError(
            f"no codec for summary type {type(summary).__name__}"
        )
    if not isinstance(delta, DigestDelta):
        raise ConfigurationError(
            f"set summary cannot ship a {type(delta).__name__}"
        )
    return build_set_update_messages(
        representation,
        [_encode_record(r) for r in delta.added],
        [_encode_record(r) for r in delta.removed],
        mtu=mtu,
        request_number=request_number,
        sender=sender,
    )


def whole_summary_messages(
    summary: LocalSummary,
    mtu: int = DEFAULT_MTU,
    request_number: int = 0,
    sender: int = 0,
) -> List[DigestChunk]:
    """Whole-summary transfer (resync after a rebuild, or digest mode).

    Only Bloom summaries have a whole-summary wire form
    (``ICP_OP_DIGEST``); set representations resync through their
    pending-everything delta after :meth:`LocalSummary.rebuild`.
    """
    if isinstance(summary, BloomSummary):
        return build_digest_messages(
            summary.counting_filter,
            mtu=mtu,
            request_number=request_number,
            sender=sender,
        )
    raise ConfigurationError(
        "whole-summary digest transfers are defined for Bloom summaries "
        f"only, not {type(summary).__name__}"
    )


def empty_remote_for(update: UpdateMessage) -> RemoteSummary:
    """A fresh, empty remote copy matching an update's representation.

    Implements the paper's lazy initialization: "The structure is
    initialized when the first summary update message is received from
    the neighbor."
    """
    if isinstance(update, DirUpdate):
        return BloomRemote(
            BloomFilter(
                update.bit_array_size,
                hash_family=MD5HashFamily.from_spec(
                    update.function_num, update.function_bits
                ),
            )
        )
    if isinstance(update, SetDirUpdate):
        if update.representation == REPR_EXACT:
            return ExactDirectoryRemote(set())
        return ServerNameRemote(set())
    raise ConfigurationError(
        f"no remote summary for message type {type(update).__name__}"
    )


def apply_update(
    existing: Optional[RemoteSummary], update: UpdateMessage
) -> Tuple[RemoteSummary, int]:
    """Patch a peer's remote copy with *update*; return ``(copy, changed)``.

    ``existing`` is ``None`` before the first update from a peer; the
    copy is then initialized from the message itself.  An update whose
    representation (or, for Bloom, filter geometry and hash spec) does
    not match the existing copy raises
    :class:`~repro.errors.SummaryMismatchError` -- the copy is left
    untouched and the peer needs a whole-summary resynchronization.
    """
    if isinstance(update, DirUpdate):
        if existing is None:
            existing = empty_remote_for(update)
        elif not isinstance(existing, BloomRemote):
            raise SummaryMismatchError(
                "Bloom DIRUPDATE for a peer whose copy is "
                f"{type(existing).__name__}"
            )
        changed = apply_dir_update(existing.filter, update)
        return existing, changed
    if isinstance(update, SetDirUpdate):
        expected = (
            ExactDirectoryRemote
            if update.representation == REPR_EXACT
            else ServerNameRemote
        )
        if existing is None:
            existing = empty_remote_for(update)
        elif type(existing) is not expected:
            raise SummaryMismatchError(
                f"{representation_kind(update.representation)} DIRUPDATE "
                f"for a peer whose copy is {type(existing).__name__}"
            )
        delta = DigestDelta(
            added=_decode_records(update.representation, update.added),
            removed=_decode_records(update.representation, update.removed),
        )
        existing.apply_delta(delta)
        return existing, delta.change_count
    raise ConfigurationError(
        f"cannot apply message type {type(update).__name__}"
    )
