"""Update policies: when a proxy ships its pending summary changes.

The paper studies three triggers (Sections V-A and VI-B):

- :class:`ThresholdUpdatePolicy` -- ship when the fraction of cached
  documents not yet reflected in the shipped summary reaches a
  threshold (the paper's main design, studied at 0.1%..10% in Fig. 2);
- :class:`IntervalUpdatePolicy` -- ship every fixed interval (the
  alternative Section V-A mentions);
- :class:`PacketFillUpdatePolicy` -- ship once the pending change
  records fill one IP packet (the Squid prototype's behaviour).

A threshold of 0 means no update delay at all: the Section V simulator
treats it as "peers probe the live directory" (the top line of Fig. 2),
while the live proxy ships an update after every insert -- the closest
a real wire protocol can get to that ideal.

These classes lived in :mod:`repro.sharing.summary_sharing` before the
summary backend was unified; that module re-exports them for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThresholdUpdatePolicy:
    """Ship an update when new-document fraction reaches *threshold*.

    "the update can occur ... when a certain percentage of the cached
    documents are not reflected in the summary."  A threshold of 0
    disables delay entirely.
    """

    threshold: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )

    @property
    def live(self) -> bool:
        """True when the policy means "no update delay" (threshold 0)."""
        return self.threshold == 0.0

    def due(
        self,
        *,
        new_documents: int,
        cached_documents: int,
        pending_records: int,
        now: float,
        last_update: float,
    ) -> bool:
        if self.threshold == 0.0:
            return new_documents > 0
        return new_documents / max(1, cached_documents) >= self.threshold

    def label(self) -> str:
        return f"threshold={self.threshold:g}"


@dataclass(frozen=True)
class IntervalUpdatePolicy:
    """Ship an update every *interval* seconds."""

    interval: float = 300.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(
                f"interval must be > 0, got {self.interval}"
            )

    def due(
        self,
        *,
        new_documents: int,
        cached_documents: int,
        pending_records: int,
        now: float,
        last_update: float,
    ) -> bool:
        return now - last_update >= self.interval

    def label(self) -> str:
        return f"interval={self.interval:g}s"


@dataclass(frozen=True)
class PacketFillUpdatePolicy:
    """Ship an update once pending changes fill one IP packet.

    The Squid prototype's behaviour: "sends updates whenever there are
    enough changes to fill an IP packet" (Section VI-B).  The default
    of 342 records is an MTU-sized DIRUPDATE: (1400 - 32) / 4.
    """

    records: int = (1400 - 32) // 4

    def __post_init__(self) -> None:
        if self.records < 1:
            raise ConfigurationError(
                f"records must be >= 1, got {self.records}"
            )

    def due(
        self,
        *,
        new_documents: int,
        cached_documents: int,
        pending_records: int,
        now: float,
        last_update: float,
    ) -> bool:
        return pending_records >= self.records

    def label(self) -> str:
        return f"packet-fill={self.records}"


UpdatePolicy = Union[
    ThresholdUpdatePolicy, IntervalUpdatePolicy, PacketFillUpdatePolicy
]


def parse_update_policy(spec: str) -> UpdatePolicy:
    """Parse a CLI/config policy spec into a policy instance.

    Accepted forms: ``threshold:0.01``, ``interval:300``,
    ``packet-fill:342`` -- or the bare names for the defaults.
    """
    name, _sep, arg = spec.partition(":")
    name = name.strip().lower()
    arg = arg.strip()
    try:
        if name == "threshold":
            return (
                ThresholdUpdatePolicy(float(arg))
                if arg
                else ThresholdUpdatePolicy()
            )
        if name == "interval":
            return (
                IntervalUpdatePolicy(float(arg))
                if arg
                else IntervalUpdatePolicy()
            )
        if name == "packet-fill":
            return (
                PacketFillUpdatePolicy(int(arg))
                if arg
                else PacketFillUpdatePolicy()
            )
    except ValueError as exc:
        raise ConfigurationError(
            f"bad update-policy argument in {spec!r}: {exc}"
        ) from None
    raise ConfigurationError(
        f"unknown update policy {spec!r}; expected "
        "'threshold[:FRACTION]', 'interval[:SECONDS]', or "
        "'packet-fill[:RECORDS]'"
    )
