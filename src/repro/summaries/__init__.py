"""The unified summary backend layer.

One package owns everything about summaries -- the representations the
paper compares (Section V), the update policies that govern when changes
ship (Sections V-A, VI-B), and the codec that puts representation-tagged
deltas on the wire (Section VI-A) -- so the Section V simulator, the
wire protocol, and the live asyncio proxy all consume the same classes:

- :mod:`repro.summaries.backend` -- the :class:`LocalSummary` /
  :class:`RemoteSummary` ABCs, :class:`SummaryConfig`, delta types, the
  :func:`make_local_summary` factory, and :class:`SummaryNode` (shared
  update bookkeeping);
- :mod:`repro.summaries.exact`, :mod:`repro.summaries.servername`,
  :mod:`repro.summaries.bloom` -- one module per representation;
- :mod:`repro.summaries.policies` -- threshold / interval / packet-fill
  update policies;
- :mod:`repro.summaries.codec` -- representation-tagged delta and
  digest encode/decode against :mod:`repro.protocol`.

``repro.core.summary`` re-exports the representation classes for
compatibility with pre-refactor imports.
"""

from repro.summaries.backend import (
    AVERAGE_DOCUMENT_SIZE,
    BitFlipDelta,
    DigestDelta,
    DigestSetRemote,
    LocalSummary,
    RemoteSummary,
    SummaryConfig,
    SummaryNode,
    expected_documents_for_cache,
    make_local_summary,
)
from repro.summaries.bloom import BloomRemote, BloomSummary
from repro.summaries.exact import ExactDirectoryRemote, ExactDirectorySummary
from repro.summaries.policies import (
    IntervalUpdatePolicy,
    PacketFillUpdatePolicy,
    ThresholdUpdatePolicy,
    UpdatePolicy,
    parse_update_policy,
)
from repro.summaries.servername import ServerNameRemote, ServerNameSummary

__all__ = [
    "AVERAGE_DOCUMENT_SIZE",
    "BitFlipDelta",
    "BloomRemote",
    "BloomSummary",
    "DigestDelta",
    "DigestSetRemote",
    "ExactDirectoryRemote",
    "ExactDirectorySummary",
    "IntervalUpdatePolicy",
    "LocalSummary",
    "PacketFillUpdatePolicy",
    "RemoteSummary",
    "ServerNameRemote",
    "ServerNameSummary",
    "SummaryConfig",
    "SummaryNode",
    "ThresholdUpdatePolicy",
    "UpdatePolicy",
    "expected_documents_for_cache",
    "make_local_summary",
    "parse_update_policy",
]
