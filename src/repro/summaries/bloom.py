"""The Bloom-filter summary: counting filter locally, plain copy remotely."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Tuple

from repro.core.bloom import BloomFilter
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import MD5HashFamily
from repro.errors import ConfigurationError, SummaryMismatchError
from repro.summaries.backend import (
    BitFlipDelta,
    LocalSummary,
    RemoteSummary,
    SummaryConfig,
    SummaryDelta,
)


class BloomRemote(RemoteSummary):
    """Peer copy of a Bloom summary: a plain bit array plus hash spec."""

    __slots__ = ("filter",)

    def __init__(self, filt: BloomFilter) -> None:
        self.filter = filt

    @property
    def num_bits(self) -> int:
        """Bit array size of the copy (its wire geometry)."""
        return self.filter.num_bits

    def may_contain(self, url: str) -> bool:
        return self.filter.may_contain(url)

    def key_of(self, url: str) -> Tuple[int, ...]:
        return self.filter.positions(url)

    def contains_key(self, key: Any) -> bool:
        get = self.filter.bits.get
        for pos in key:
            if not get(pos):
                return False
        return True

    def apply_delta(self, delta: SummaryDelta) -> None:
        if not isinstance(delta, BitFlipDelta):
            raise SummaryMismatchError(
                f"bloom summary cannot apply {type(delta).__name__}"
            )
        self.filter.apply_flips(delta.flips)

    def size_bytes(self) -> int:
        return self.filter.size_bytes()


class BloomSummary(LocalSummary):
    """Local Bloom summary: a counting Bloom filter sized by load factor.

    Parameters
    ----------
    expected_documents:
        Sizing basis -- cache size / 8 KB in the paper's configurations
        (use :func:`~repro.summaries.backend.expected_documents_for_cache`
        for that calculation).
    config:
        Load factor, hash count, and counter width.
    """

    def __init__(
        self,
        expected_documents: int,
        config: Optional[SummaryConfig] = None,
    ) -> None:
        cfg = config or SummaryConfig()
        if cfg.kind != "bloom":
            raise ConfigurationError(
                f"BloomSummary requires kind='bloom', got {cfg.kind!r}"
            )
        family = MD5HashFamily(num_functions=cfg.num_hashes)
        self.config = cfg
        self._cbf = CountingBloomFilter.for_capacity(
            expected_documents,
            load_factor=cfg.load_factor,
            hash_family=family,
            counter_width=cfg.counter_width,
        )

    @property
    def num_bits(self) -> int:
        """Bit array size (``BitArray_Size_InBits`` on the wire)."""
        return self._cbf.num_bits

    @property
    def counting_filter(self) -> CountingBloomFilter:
        """The underlying counting filter (for protocol integration)."""
        return self._cbf

    @property
    def hash_family(self) -> MD5HashFamily:
        """The hash family announced in DIRUPDATE/DIGEST headers."""
        return self._cbf.hash_family

    def add(self, url: str) -> None:
        self._cbf.add(url)

    def remove(self, url: str) -> None:
        self._cbf.remove(url)

    def may_contain(self, url: str) -> bool:
        return self._cbf.may_contain(url)

    def key_of(self, url: str) -> Tuple[int, ...]:
        return self._cbf.filter.positions(url)

    def contains_key(self, key: Any) -> bool:
        get = self._cbf.filter.bits.get
        for pos in key:
            if not get(pos):
                return False
        return True

    def drain_delta(self) -> BitFlipDelta:
        return BitFlipDelta(flips=self._cbf.drain_flips())

    def pending_change_count(self) -> int:
        return self._cbf.pending_flip_count

    def export(self) -> BloomRemote:
        return BloomRemote(self._cbf.snapshot())

    def overloaded(self, num_documents: int, factor: float) -> bool:
        """Cache outran the geometry: documents exceed capacity x *factor*.

        The filter was sized for ``num_bits / load_factor`` documents;
        holding many more degrades the effective load factor -- and with
        it the false-hit rate at every peer.
        """
        expected = self._cbf.num_bits // self.config.load_factor
        return num_documents > expected * factor

    def rebuild(
        self,
        urls: Iterable[str],
        digests: Optional[Mapping[str, bytes]] = None,
    ) -> None:
        """Rebuild at double the bits from the live directory.

        Pending flips are discarded: a delta cannot describe a geometry
        change, so peers must resync from a whole-filter digest.  With
        *digests* (stored at cache-insert time) and a family needing at
        most 128 stream bits -- the paper's 4x32 default -- positions are
        sliced straight from the stored digests and no URL is re-hashed.
        """
        family = self._cbf.hash_family
        rebuilt = CountingBloomFilter(
            self._cbf.num_bits * 2,
            hash_family=family,
            counter_width=self.config.counter_width,
        )
        from_digest = (
            digests is not None
            and family.num_functions * family.function_bits <= 128
        )
        if from_digest:
            assert digests is not None
            table_size = rebuilt.num_bits
            get = digests.get
            for url in urls:
                stored = get(url)
                if stored is None:
                    rebuilt.add(url)
                else:
                    rebuilt.add_at(
                        family.hashes_from_digest(stored, table_size)
                    )
        else:
            rebuilt.add_many(urls)
        rebuilt.drain_flips()
        self._cbf = rebuilt

    def fill_ratio(self) -> float:
        return self._cbf.fill_ratio()

    def size_bytes(self) -> int:
        return self._cbf.size_bytes()

    def remote_size_bytes(self) -> int:
        return self._cbf.remote_size_bytes()

    def __len__(self) -> int:
        return self._cbf.keys_added
