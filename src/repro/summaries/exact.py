"""The exact-directory summary: every cached URL's 16-byte MD5 digest."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Set

from repro.core.hashing import md5_digest
from repro.errors import SummaryStateError
from repro.summaries.backend import DigestDelta, DigestSetRemote, LocalSummary


class ExactDirectoryRemote(DigestSetRemote):
    """Peer copy of an exact directory: a set of MD5 URL digests."""

    def __init__(self, digests: Set[bytes]) -> None:
        super().__init__(digests, bytes_per_entry=16)

    def _key(self, url: str) -> bytes:
        return md5_digest(url)


class ExactDirectorySummary(LocalSummary):
    """Local exact directory: every cached URL's 16-byte MD5 signature."""

    def __init__(self) -> None:
        self._digests: Set[bytes] = set()
        self._pending_added: Set[bytes] = set()
        self._pending_removed: Set[bytes] = set()

    def add(self, url: str) -> None:
        digest = md5_digest(url)
        if digest in self._digests:
            return
        self._digests.add(digest)
        if digest in self._pending_removed:
            self._pending_removed.discard(digest)
        else:
            self._pending_added.add(digest)

    def remove(self, url: str) -> None:
        digest = md5_digest(url)
        if digest not in self._digests:
            raise SummaryStateError(f"remove of URL not in directory: {url!r}")
        self._digests.discard(digest)
        if digest in self._pending_added:
            self._pending_added.discard(digest)
        else:
            self._pending_removed.add(digest)

    def may_contain(self, url: str) -> bool:
        return md5_digest(url) in self._digests

    def key_of(self, url: str) -> bytes:
        return md5_digest(url)

    def contains_key(self, key: Any) -> bool:
        return key in self._digests

    def drain_delta(self) -> DigestDelta:
        delta = DigestDelta(
            added=sorted(self._pending_added),
            removed=sorted(self._pending_removed),
        )
        self._pending_added = set()
        self._pending_removed = set()
        return delta

    def pending_change_count(self) -> int:
        return len(self._pending_added) + len(self._pending_removed)

    def export(self) -> ExactDirectoryRemote:
        return ExactDirectoryRemote(self._digests)

    def rebuild(
        self,
        urls: Iterable[str],
        digests: Optional[Mapping[str, bytes]] = None,
    ) -> None:
        if digests is None:
            self._digests = {md5_digest(url) for url in urls}
        else:
            # Digests stored at cache-insert time: no re-hashing.
            get = digests.get
            self._digests = {
                stored if (stored := get(url)) is not None else md5_digest(url)
                for url in urls
            }
        # Peers must receive the full directory next update.
        self._pending_added = set(self._digests)
        self._pending_removed = set()

    def size_bytes(self) -> int:
        return len(self._digests) * 16

    def remote_size_bytes(self) -> int:
        return len(self._digests) * 16

    def __len__(self) -> int:
        return len(self._digests)
