"""The server-name summary: host names of cached URLs, refcounted."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Set

from repro.errors import SummaryStateError
from repro.summaries.backend import DigestDelta, DigestSetRemote, LocalSummary
from repro.urlutil import server_of


class ServerNameRemote(DigestSetRemote):
    """Peer copy of a server-name summary: a set of host names.

    The paper sizes each entry at 16 bytes for the message-byte estimate;
    we use the same figure for the stored form so Table III is
    regenerated with the paper's own assumptions.
    """

    def __init__(self, names: Set[str]) -> None:
        super().__init__(names, bytes_per_entry=16)

    def _key(self, url: str) -> str:
        return server_of(url)


class ServerNameSummary(LocalSummary):
    """Local server-name summary: refcounted host names of cached URLs."""

    def __init__(self) -> None:
        self._refcounts: Dict[str, int] = {}
        self._pending_added: Set[str] = set()
        self._pending_removed: Set[str] = set()

    def add(self, url: str) -> None:
        name = server_of(url)
        count = self._refcounts.get(name, 0)
        self._refcounts[name] = count + 1
        if count == 0:
            if name in self._pending_removed:
                self._pending_removed.discard(name)
            else:
                self._pending_added.add(name)

    def remove(self, url: str) -> None:
        name = server_of(url)
        count = self._refcounts.get(name, 0)
        if count == 0:
            raise SummaryStateError(f"remove of URL with unknown server: {url!r}")
        if count == 1:
            del self._refcounts[name]
            if name in self._pending_added:
                self._pending_added.discard(name)
            else:
                self._pending_removed.add(name)
        else:
            self._refcounts[name] = count - 1

    def may_contain(self, url: str) -> bool:
        return server_of(url) in self._refcounts

    def key_of(self, url: str) -> str:
        return server_of(url)

    def contains_key(self, key: Any) -> bool:
        return key in self._refcounts

    def drain_delta(self) -> DigestDelta:
        delta = DigestDelta(
            added=sorted(self._pending_added),
            removed=sorted(self._pending_removed),
        )
        self._pending_added = set()
        self._pending_removed = set()
        return delta

    def pending_change_count(self) -> int:
        return len(self._pending_added) + len(self._pending_removed)

    def export(self) -> ServerNameRemote:
        return ServerNameRemote(set(self._refcounts))

    def rebuild(
        self,
        urls: Iterable[str],
        digests: Optional[Mapping[str, bytes]] = None,
    ) -> None:
        # *digests* is unused: server names derive from the URL text,
        # not its MD5 signature.
        self._refcounts = {}
        for url in urls:
            name = server_of(url)
            self._refcounts[name] = self._refcounts.get(name, 0) + 1
        # Peers must receive the full name set next update.
        self._pending_added = set(self._refcounts)
        self._pending_removed = set()

    def size_bytes(self) -> int:
        return len(self._refcounts) * 16

    def remote_size_bytes(self) -> int:
        return len(self._refcounts) * 16

    def __len__(self) -> int:
        return len(self._refcounts)
