"""The summary backend: ABCs, sizing, and shared update bookkeeping.

A *summary* is the compact stand-in for a peer's cache directory.  Each
representation comes in two halves:

- a **local summary** (:class:`LocalSummary`), maintained by the cache's
  owner as documents enter and leave, which can emit *deltas* (the
  changes since the last shipped update); and
- a **remote summary** (:class:`RemoteSummary`), the possibly stale copy
  a peer holds, which can be probed and patched with deltas.

Three representations are implemented, exactly the ones the paper
evaluates (Section V):

==========================================  =====================================  =============================
Representation                              Local state                            Shipped/remote state
==========================================  =====================================  =============================
:class:`~repro.summaries.exact.ExactDirectorySummary`       set of 16-byte MD5 URL digests        same set (frozen)
:class:`~repro.summaries.servername.ServerNameSummary`      refcounted set of server names        set of names (frozen)
:class:`~repro.summaries.bloom.BloomSummary`                counting Bloom filter                 plain Bloom filter
==========================================  =====================================  =============================

Every consumer -- the Section V simulator, the wire protocol codec, and
the live asyncio proxy -- works against these ABCs; representation is
selected purely by :class:`SummaryConfig`.  Delta sizes for the
simulator follow the paper's Fig. 8 accounting and are computed in
:mod:`repro.sharing.messages`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError, SummaryMismatchError
from repro.summaries.policies import UpdatePolicy

#: A digest-set change record: a 16-byte MD5 digest (exact directory)
#: or a server name (server-name summary).
DigestKey = Union[bytes, str]

#: Any delta a summary can emit: digest-set changes or bit flips.
SummaryDelta = Union["DigestDelta", "BitFlipDelta"]

#: The paper's average-document-size divisor: "The average number of
#: documents is calculated by dividing the cache size by 8 K (the average
#: document size)."
AVERAGE_DOCUMENT_SIZE = 8 * 1024


@dataclass(frozen=True)
class SummaryConfig:
    """Parameters selecting and sizing a summary representation.

    Attributes
    ----------
    kind:
        ``"exact-directory"``, ``"server-name"``, or ``"bloom"``.
    load_factor:
        Bits per expected document for Bloom summaries (8/16/32 in the
        paper).  Ignored by the other representations.
    num_hashes:
        Hash functions for Bloom summaries (the paper uses 4).
    counter_width:
        Counter bits for the local counting filter (the paper uses 4).
    """

    kind: str = "bloom"
    load_factor: int = 8
    num_hashes: int = 4
    counter_width: int = 4

    KINDS = ("exact-directory", "server-name", "bloom")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ConfigurationError(
                f"unknown summary kind {self.kind!r}; expected one of {self.KINDS}"
            )
        if self.load_factor < 1:
            raise ConfigurationError(
                f"load_factor must be >= 1, got {self.load_factor}"
            )
        if self.num_hashes < 1:
            raise ConfigurationError(
                f"num_hashes must be >= 1, got {self.num_hashes}"
            )

    def label(self) -> str:
        """Human-readable label matching the paper's figure legends."""
        if self.kind == "bloom":
            return f"bloom-{self.load_factor}"
        return self.kind


@dataclass
class DigestDelta:
    """Changes to a digest-set summary since the last shipped update."""

    added: Sequence[DigestKey] = field(default_factory=list)
    removed: Sequence[DigestKey] = field(default_factory=list)

    @property
    def change_count(self) -> int:
        """Number of 16-byte change records the update carries."""
        return len(self.added) + len(self.removed)

    def is_empty(self) -> bool:
        return not self.added and not self.removed


@dataclass
class BitFlipDelta:
    """Absolute bit set/clear records for a Bloom summary update."""

    flips: List[Tuple[int, bool]] = field(default_factory=list)

    @property
    def change_count(self) -> int:
        """Number of 32-bit flip records the update carries."""
        return len(self.flips)

    def is_empty(self) -> bool:
        return not self.flips


class RemoteSummary(ABC):
    """A peer's (possibly stale) view of another proxy's directory.

    Probing twice: :meth:`may_contain` is the convenient form;
    :meth:`key_of` + :meth:`contains_key` split the (potentially
    expensive) key derivation from the probe so a simulator checking
    one URL against many peer summaries hashes it once.
    """

    @abstractmethod
    def may_contain(self, url: str) -> bool:
        """Probe the summary; a ``False`` is authoritative for this copy."""

    @abstractmethod
    def key_of(self, url: str) -> Any:
        """Derive the probe key for *url* (digest, name, or positions).

        The key is opaque: valid only for :meth:`contains_key` of the
        same representation.
        """

    @abstractmethod
    def contains_key(self, key: Any) -> bool:
        """Probe with a key previously derived by :meth:`key_of`."""

    @abstractmethod
    def apply_delta(self, delta: SummaryDelta) -> None:
        """Patch the copy with a received delta update.

        Raises :class:`~repro.errors.SummaryMismatchError` when the
        delta's type does not match the representation.
        """

    @abstractmethod
    def size_bytes(self) -> int:
        """DRAM footprint of this copy at the peer."""


class LocalSummary(ABC):
    """The summary a proxy maintains for its own cache."""

    @abstractmethod
    def add(self, url: str) -> None:
        """Record that *url* entered the cache."""

    @abstractmethod
    def remove(self, url: str) -> None:
        """Record that *url* left the cache."""

    @abstractmethod
    def may_contain(self, url: str) -> bool:
        """Probe the up-to-date local summary."""

    @abstractmethod
    def key_of(self, url: str) -> Any:
        """Derive the probe key for *url* (digest, name, or positions).

        The key is opaque: valid only for :meth:`contains_key` of the
        same representation.
        """

    @abstractmethod
    def contains_key(self, key: Any) -> bool:
        """Probe with a key previously derived by :meth:`key_of`."""

    @abstractmethod
    def drain_delta(self) -> SummaryDelta:
        """Return changes since the last drain and mark them shipped."""

    @abstractmethod
    def pending_change_count(self) -> int:
        """How many change records the next delta would carry."""

    @abstractmethod
    def export(self) -> RemoteSummary:
        """Return a fresh remote copy reflecting the current directory."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Local DRAM footprint (including any counters)."""

    @abstractmethod
    def remote_size_bytes(self) -> int:
        """DRAM footprint of the shipped representation at one peer."""

    @abstractmethod
    def rebuild(
        self,
        urls: Iterable[str],
        digests: Optional[Mapping[str, bytes]] = None,
    ) -> None:
        """Reconstruct the summary from the live directory *urls*.

        For Bloom summaries this grows the filter geometry (the proxy's
        resize-and-redigest path); peers must resynchronize from a whole
        summary transfer afterwards, so implementations discard any
        pending delta and, for set representations, mark the full
        directory as pending so the next delta carries everything.

        *digests* optionally maps URLs to MD5 digests stored by the
        cache at insert time (:meth:`repro.cache.WebCache.digests`);
        digest-based representations then rebuild without re-hashing
        the directory.  URLs absent from the mapping are hashed.
        """

    def overloaded(self, num_documents: int, factor: float) -> bool:
        """Does holding *num_documents* degrade this summary's accuracy?

        Only fixed-geometry representations (Bloom filters sized for an
        expected document count) can be overloaded; set representations
        grow with the directory and always return ``False``.
        """
        return False

    def fill_ratio(self) -> float:
        """Fraction of summary capacity in use (0.0 when not meaningful)."""
        return 0.0


class DigestSetRemote(RemoteSummary):
    """Remote half shared by the exact-directory and server-name forms."""

    __slots__ = ("_digests", "_bytes_per_entry")

    def __init__(
        self, digests: Set[DigestKey], bytes_per_entry: int
    ) -> None:
        self._digests: Set[DigestKey] = set(digests)
        self._bytes_per_entry = bytes_per_entry

    def _key(self, url: str) -> DigestKey:
        raise NotImplementedError

    def may_contain(self, url: str) -> bool:
        return self._key(url) in self._digests

    def key_of(self, url: str) -> DigestKey:
        return self._key(url)

    def contains_key(self, key: Any) -> bool:
        return key in self._digests

    def apply_delta(self, delta: SummaryDelta) -> None:
        if not isinstance(delta, DigestDelta):
            raise SummaryMismatchError(
                f"digest-set summary cannot apply {type(delta).__name__}"
            )
        for digest in delta.removed:
            self._digests.discard(digest)
        for digest in delta.added:
            self._digests.add(digest)

    def size_bytes(self) -> int:
        return len(self._digests) * self._bytes_per_entry

    def __len__(self) -> int:
        return len(self._digests)


def expected_documents_for_cache(
    cache_size_bytes: int, doc_size: int = AVERAGE_DOCUMENT_SIZE
) -> int:
    """Expected document count for a cache: size / average document size.

    The paper's rule divides by 8 KB; pass a workload-derived *doc_size*
    (e.g. the trace's mean cacheable document size) when the workload's
    average differs, otherwise the filter is mis-sized and the false-hit
    ratio drifts from the nominal load factor's.
    """
    if cache_size_bytes < 1:
        raise ConfigurationError(
            f"cache_size_bytes must be >= 1, got {cache_size_bytes}"
        )
    if doc_size < 1:
        raise ConfigurationError(f"doc_size must be >= 1, got {doc_size}")
    return max(1, cache_size_bytes // doc_size)


def make_local_summary(
    config: SummaryConfig,
    cache_size_bytes: int,
    doc_size: int = AVERAGE_DOCUMENT_SIZE,
) -> LocalSummary:
    """Construct the local summary named by *config* for a cache of the given size."""
    # Imported here: the representation modules subclass the ABCs above.
    from repro.summaries.bloom import BloomSummary
    from repro.summaries.exact import ExactDirectorySummary
    from repro.summaries.servername import ServerNameSummary

    if config.kind == "exact-directory":
        return ExactDirectorySummary()
    if config.kind == "server-name":
        return ServerNameSummary()
    return BloomSummary(
        expected_documents_for_cache(cache_size_bytes, doc_size),
        config=config,
    )


class SummaryNode:
    """One proxy's summary state plus update-policy bookkeeping.

    Bundles the local summary, optionally the *shipped* copy peers
    currently hold (the Section V simulator's reliable-multicast
    assumption collapses the n-1 identical peer copies into one), and
    the counters the update policies consult.  Both the simulator and
    the live proxy drive their summaries through this class, so the
    "when is an update due" logic exists exactly once.
    """

    __slots__ = ("local", "shipped", "new_since_update", "last_update_time")

    def __init__(
        self,
        config: SummaryConfig,
        cache_capacity: int,
        doc_size: int = AVERAGE_DOCUMENT_SIZE,
        track_shipped: bool = True,
    ) -> None:
        self.local = make_local_summary(config, cache_capacity, doc_size=doc_size)
        self.shipped: Optional[RemoteSummary] = (
            self.local.export() if track_shipped else None
        )
        self.new_since_update = 0
        self.last_update_time = 0.0

    def on_insert(self, url: str) -> None:
        """Cache-insert hook: update the local summary and counters."""
        self.local.add(url)
        self.new_since_update += 1

    def on_evict(self, url: str) -> None:
        """Cache-evict hook: update the local summary."""
        self.local.remove(url)

    def due_for_update(
        self, policy: UpdatePolicy, now: float, cached_documents: int
    ) -> bool:
        """Check whether the shipped summary should be refreshed."""
        return policy.due(
            new_documents=self.new_since_update,
            cached_documents=cached_documents,
            pending_records=self.local.pending_change_count(),
            now=now,
            last_update=self.last_update_time,
        )

    def publish(self, now: float) -> SummaryDelta:
        """Drain the pending delta (into the shipped copy, if tracked).

        Returns the delta (for message building or size accounting).
        """
        delta = self.local.drain_delta()
        if self.shipped is not None:
            self.shipped.apply_delta(delta)
        self.new_since_update = 0
        self.last_update_time = now
        return delta

    def rebuild(
        self,
        urls: Iterable[str],
        now: float,
        digests: Optional[Mapping[str, bytes]] = None,
    ) -> None:
        """Rebuild the local summary from the live directory.

        Resets the update bookkeeping: after a rebuild, peers resync
        from a whole-summary transfer, not a delta.  Pass the cache's
        stored *digests* to skip re-hashing the directory.
        """
        self.local.rebuild(urls, digests=digests)
        if self.shipped is not None:
            self.shipped = self.local.export()
        self.new_since_update = 0
        self.last_update_time = now
