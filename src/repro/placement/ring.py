"""The rendezvous hash ring: deterministic owner/replica derivation.

CARP's related-work framing in the paper -- "divides URL-space among an
array of loosely coupled proxy servers" -- needs a membership-stable
assignment: adding or removing one proxy may move keys only to or from
that proxy, never between survivors.  Highest-random-weight (rendezvous)
hashing gives exactly that: every member scores every key independently
and the highest score owns the key, so a membership change only touches
the keys the changed member wins or loses.

Scores are derived from the URL's **interned MD5 digest** (the one
:mod:`repro.core.position_cache` already memoizes for the summaries and
the wire codec) rather than by re-hashing the URL string per member:
the digest is sliced into a 64-bit key value via
:meth:`~repro.core.hashing.MD5HashFamily.hashes_from_digest` -- the
Section VI-A primitive -- and combined with each member's precomputed
point by an integer mixer.  Deriving the owner of a URL therefore costs
one (usually cached) MD5 plus ``len(members)`` multiplications, and a
live proxy and the simulator agree bit-for-bit on every assignment.

Replication generalizes ownership: the **replica set** of a key is the
top-``replication`` members by score, so ``replicas[0]`` is the owner
and the remaining entries are the deterministic failover order.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Sequence, Tuple, Union

from repro.core.hashing import MD5HashFamily, md5_digest
from repro.errors import ConfigurationError

Key = Union[str, bytes]

_MASK64 = (1 << 64) - 1

#: One 64-bit hash function over the 128-bit digest stream: the key
#: value every member's score mixes in.  ``table_size=2**64`` makes the
#: modulus a no-op, so the value is exactly digest bits 0..63.
_KEY_FAMILY = MD5HashFamily(num_functions=1, function_bits=64)
_KEY_TABLE = 1 << 64


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58_476D_1CE4_E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D0_49BB_1331_11EB) & _MASK64
    return x ^ (x >> 31)


def member_point(name: str) -> int:
    """The fixed 64-bit point of one member identity.

    Derived from the member name's MD5 so that independently configured
    proxies agree on every point without exchanging any state.
    """
    digest = hashlib.md5(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def key_value(digest: bytes) -> int:
    """The 64-bit key value of an interned 16-byte MD5 *digest*."""
    return _KEY_FAMILY.hashes_from_digest(digest, _KEY_TABLE)[0]


def rendezvous_score(point: int, value: int) -> int:
    """Highest-random-weight score of one (member point, key value) pair."""
    return _mix64(point ^ _mix64(value))


class HashRing:
    """An immutable rendezvous ring over member identities.

    Parameters
    ----------
    members:
        Distinct member names (order is irrelevant: scores, not
        positions, decide ownership).
    replication:
        Size of each key's replica set, capped at ``len(members)``.

    The ring never mutates; membership changes go through
    :meth:`with_member` / :meth:`without_member`, which return new rings
    sharing the survivors' precomputed points.  The live mutation
    boundary is :class:`repro.placement.live.Placement` (sc-lint SC004
    keeps it that way).
    """

    __slots__ = ("_members", "_points", "_replication")

    def __init__(self, members: Sequence[str], replication: int = 1) -> None:
        names = tuple(members)
        if not names:
            raise ConfigurationError("a hash ring needs >= 1 member")
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"ring members must be distinct, got {names!r}"
            )
        if replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1, got {replication}"
            )
        self._members = names
        self._points: Dict[str, int] = {
            name: member_point(name) for name in names
        }
        self._replication = min(replication, len(names))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def members(self) -> Tuple[str, ...]:
        """The member names, in construction order."""
        return self._members

    @property
    def replication(self) -> int:
        """The effective replica-set size (capped at the member count)."""
        return self._replication

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: object) -> bool:
        return name in self._points

    def __repr__(self) -> str:
        return (
            f"HashRing(members={list(self._members)!r}, "
            f"replication={self._replication})"
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def owner(self, digest: bytes) -> str:
        """The member owning the key with MD5 *digest*."""
        value = _mix64(key_value(digest))
        best_score = -1
        best = self._members[0]
        for name in self._members:
            score = _mix64(self._points[name] ^ value)
            if score > best_score:
                best_score = score
                best = name
        return best

    def replicas(self, digest: bytes) -> Tuple[str, ...]:
        """The key's replica set: owner first, then failover order."""
        value = _mix64(key_value(digest))
        scored = sorted(
            self._members,
            key=lambda name: _mix64(self._points[name] ^ value),
            reverse=True,
        )
        return tuple(scored[: self._replication])

    def owner_of(self, key: Key) -> str:
        """Owner of *key*, via the interned digest of the position cache."""
        return self.owner(md5_digest(key))

    def replicas_of(self, key: Key) -> Tuple[str, ...]:
        """Replica set of *key*, via the interned digest."""
        return self.replicas(md5_digest(key))

    # ------------------------------------------------------------------
    # Membership (functional: new rings, never in-place mutation)
    # ------------------------------------------------------------------

    def with_member(self, name: str) -> "HashRing":
        """A ring with *name* added (error if already present)."""
        if name in self._points:
            raise ConfigurationError(f"member {name!r} already on the ring")
        return HashRing(self._members + (name,), self._replication)

    def without_member(self, name: str) -> "HashRing":
        """A ring with *name* removed (error if absent or last member)."""
        if name not in self._points:
            raise ConfigurationError(f"member {name!r} is not on the ring")
        survivors = tuple(m for m in self._members if m != name)
        if not survivors:
            raise ConfigurationError(
                "cannot remove the last member of a ring"
            )
        return HashRing(survivors, self._replication)


#: Memoized rings for the index-named arrays ``carp_owner`` routes over
#: (the simulator asks for the same ``num_proxies`` millions of times).
_INDEX_RINGS: Dict[int, HashRing] = {}


def _index_ring(num_proxies: int) -> HashRing:
    ring = _INDEX_RINGS.get(num_proxies)
    if ring is None:
        if num_proxies < 1:
            raise ConfigurationError(
                f"num_proxies must be >= 1, got {num_proxies}"
            )
        ring = HashRing([str(i) for i in range(num_proxies)])
        _INDEX_RINGS[num_proxies] = ring
    return ring


def carp_owner(url: Key, num_proxies: int) -> int:
    """Rendezvous owner of *url* in an array of *num_proxies* proxies.

    Routes on the interned MD5 digest of the URL (one hash per URL,
    shared with the summaries via the position cache) instead of
    re-hashing ``"{proxy}|{url}"`` per array member.  Member identities
    are the decimal indices ``"0" .. "N-1"``, so the same assignment is
    reproducible from any process that knows the array size.
    """
    return int(_index_ring(num_proxies).owner(md5_digest(url)))
