"""Live membership: the one place the ring is allowed to change.

A proxy holds one :class:`Placement` for its cluster view.  Membership
changes (peer join, peer leave, failure detection) rebuild the
immutable :class:`~repro.placement.ring.HashRing` and report which of
the holder's cached keys were **displaced** -- keys the holder was a
replica for under the old ring but is not under the new one -- so the
caller can migrate or invalidate them.  sc-lint SC004 confines ring
mutation to this module: everything outside ``repro.placement`` goes
through :class:`Placement`, never through ring internals.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.placement.policy import CooperationPolicy
from repro.placement.ring import HashRing


def displaced_keys(
    before: HashRing,
    after: HashRing,
    holder: str,
    items: Iterable[Tuple[str, bytes]],
) -> List[str]:
    """Keys *holder* stored under *before* but no longer replicates.

    *items* yields ``(url, digest)`` pairs for the holder's cached
    documents (the digests the cache stored at insert time -- no
    re-hashing).  By the rendezvous property a **leave** never displaces
    a survivor's keys (ownership only flows *from* the removed member),
    while a **join** displaces exactly the keys the newcomer wins.
    """
    displaced = []
    for url, digest in items:
        if holder in before.replicas(digest) and (
            holder not in after.replicas(digest)
        ):
            displaced.append(url)
    return displaced


class Placement:
    """One proxy's mutable view of cluster-wide object placement.

    Parameters
    ----------
    self_name:
        The holder's own member identity (always on the ring).
    peers:
        The other members' identities.
    policy:
        The cooperation policy; placement routing only applies when
        ``policy.routes_by_owner``.
    replication:
        Replica-set size handed to the ring.
    """

    __slots__ = (
        "_self_name", "_ring", "_policy", "_replication", "_version",
    )

    def __init__(
        self,
        self_name: str,
        peers: Iterable[str] = (),
        policy: CooperationPolicy = CooperationPolicy.SUMMARY,
        replication: int = 1,
    ) -> None:
        members = [self_name]
        members.extend(p for p in peers if p != self_name)
        self._self_name = self_name
        self._replication = replication
        self._ring = HashRing(members, replication)
        self._policy = policy
        self._version = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def self_name(self) -> str:
        """The holder's member identity."""
        return self._self_name

    @property
    def policy(self) -> CooperationPolicy:
        """The cooperation policy in force."""
        return self._policy

    @property
    def ring(self) -> HashRing:
        """The current (immutable) ring -- read-only use expected."""
        return self._ring

    @property
    def members(self) -> Tuple[str, ...]:
        """Current member identities."""
        return self._ring.members

    @property
    def version(self) -> int:
        """Monotonic membership-change counter.

        Bumped every time the ring actually changes.  Async callers
        that act on a routing decision *after* an ``await`` (e.g. the
        proxy's owner-forward path deciding to evict a peer because a
        forward failed) must re-check the version they routed under:
        a bump means the verdict may describe a member set that no
        longer exists.
        """
        return self._version

    def owner(self, digest: bytes) -> str:
        """Owner identity of the key with *digest*."""
        return self._ring.owner(digest)

    def replicas(self, digest: bytes) -> Tuple[str, ...]:
        """Replica set (owner first) of the key with *digest*."""
        return self._ring.replicas(digest)

    def is_local(self, digest: bytes) -> bool:
        """Whether the holder belongs to the key's replica set."""
        return self._self_name in self._ring.replicas(digest)

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------

    def add_member(
        self, name: str, items: Iterable[Tuple[str, bytes]] = ()
    ) -> List[str]:
        """Admit *name*; returns the holder's keys the newcomer displaced.

        No-op (empty list) when *name* is already a member.
        """
        if name in self._ring:
            return []
        before = self._ring
        after = before.with_member(name)
        displaced = displaced_keys(before, after, self._self_name, items)
        self._ring = after
        self._version += 1
        return displaced

    def remove_member(
        self, name: str, items: Iterable[Tuple[str, bytes]] = ()
    ) -> List[str]:
        """Retire *name*; returns the holder's keys displaced by the change.

        By the rendezvous property this is always an empty list for a
        genuine leave (survivors only *gain* keys); the scan is kept so
        the join and leave paths stay symmetric and provably so in
        tests.  No-op when *name* is not a member or is the holder.
        """
        if name == self._self_name or name not in self._ring:
            return []
        before = self._ring
        after = before.without_member(name)
        displaced = displaced_keys(before, after, self._self_name, items)
        self._ring = after
        self._version += 1
        return displaced
