"""Object placement shared by the simulator and the live proxy.

The paper's Fig. 1 frames cooperative caching's upper bound as the
"global cache": all proxies behaving as one logical cache.  This
package holds the placement math both halves of the reproduction
consume:

- :mod:`repro.placement.ring` -- the rendezvous (highest-random-weight)
  hash ring over peer identities.  Scores derive from the interned MD5
  digests of :mod:`repro.core.position_cache`, so the simulator's CARP
  scheme and a live proxy cluster route every URL to the *same* owner
  without ever re-hashing the URL string.
- :mod:`repro.placement.policy` -- the cooperation policy axis
  (``summary`` / ``carp`` / ``single-copy``): who stores a fetched
  document, and whether misses route to a deterministic owner or
  through summary-directed discovery.
- :mod:`repro.placement.live` -- :class:`Placement`, the mutable
  membership wrapper the live proxy holds.  All ring mutation happens
  here (enforced by sc-lint SC004): membership changes rebuild the
  immutable ring and report which locally held keys were displaced so
  the owner can migrate or invalidate them.

:mod:`repro.sharing.carp` re-exports :func:`carp_owner`, so simulator
results and placement decisions come from one implementation.
"""

from repro.placement.live import Placement, displaced_keys
from repro.placement.policy import CooperationPolicy
from repro.placement.ring import (
    HashRing,
    carp_owner,
    key_value,
    member_point,
    rendezvous_score,
)

__all__ = [
    "CooperationPolicy",
    "HashRing",
    "Placement",
    "carp_owner",
    "displaced_keys",
    "key_value",
    "member_point",
    "rendezvous_score",
]
