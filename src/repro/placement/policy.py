"""The cooperation-policy axis: who stores a fetched document, and how
misses find remote copies.

"Effects of Cooperation Policy and Network Topology" (PAPERS.md) shows
the cooperation policy must be a first-class, swappable axis rather
than baked into a proxy implementation.  The three policies here are
the live counterparts of the paper's Section III schemes:

``summary``
    The paper's own design: misses discover copies through peer
    summaries (SC-ICP), a remote hit is fetched from the peer **and
    cached locally** -- "once a proxy fetches a document from another
    proxy, it caches the document locally."  Duplicates are the price
    of local service.
``single-copy``
    Summary-directed discovery, but "a proxy does not cache documents
    fetched from another proxy.  Rather, the other proxy marks the
    document as most-recently-accessed" -- the serving peer's copy is
    touched, the requester keeps nothing.
``carp``
    Deterministic placement: every URL has a hash owner and only the
    owner (plus its replicas) stores it.  Misses skip discovery
    entirely and forward to the owner, which fetches from the origin
    on a cluster-wide miss.  No duplicates, but remote routing on
    every non-owned request.
"""

from __future__ import annotations

import enum
from typing import Tuple


class CooperationPolicy(str, enum.Enum):
    """How a cluster's proxies cooperate on placement and discovery."""

    SUMMARY = "summary"
    CARP = "carp"
    SINGLE_COPY = "single-copy"

    @property
    def routes_by_owner(self) -> bool:
        """Misses forward to the key's deterministic ring owner."""
        return self is CooperationPolicy.CARP

    @property
    def caches_remote_hits(self) -> bool:
        """A requester stores documents fetched from a peer.

        This is the exact storage rule the Section III simulators
        implement: ``simple sharing`` (and summary cache on top of it)
        caches remote fetches locally; ``single-copy sharing`` and CARP
        leave the single copy where it is.
        """
        return self is CooperationPolicy.SUMMARY

    @classmethod
    def parse(cls, value: "str | CooperationPolicy") -> "CooperationPolicy":
        """Coerce a CLI/config string into a policy (clean error on typo)."""
        if isinstance(value, CooperationPolicy):
            return value
        try:
            return cls(value)
        except ValueError:
            choices = ", ".join(sorted(p.value for p in cls))
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown cooperation policy {value!r}; expected one of "
                f"{choices}"
            ) from None

    @classmethod
    def choices(cls) -> Tuple[str, ...]:
        """The policy names, for argparse ``choices=``."""
        return tuple(sorted(p.value for p in cls))
