"""Discrete-event simulation of proxy clusters (Tables II, IV, V).

The paper measures ICP's overhead on real hardware: 4 Squid proxies on
SPARC-20s, 120 benchmark clients, origin servers that delay replies by
one second, with ``netstat`` counting UDP/TCP traffic and ``time``
counting CPU.  This subpackage rebuilds that testbed as a discrete-event
simulation:

- :mod:`repro.simulation.engine` -- a small process-based DES kernel
  (event heap, generator processes, FIFO resources, signals);
- :mod:`repro.simulation.network` -- message latency/bandwidth and
  netstat-style per-node packet counters;
- :mod:`repro.simulation.costs` -- the CPU cost model (per-request,
  per-ICP-message, per-MD5, per-byte service times);
- :mod:`repro.simulation.nodes` -- client, proxy, and origin processes
  implementing the no-ICP / ICP / SC-ICP protocols;
- :mod:`repro.simulation.experiment` -- harnesses producing the paper's
  table rows;
- :mod:`repro.simulation.parallel` -- fans independent experiment cells
  (trace x scheme x load factor x threshold) across worker processes;
- :mod:`repro.simulation.scale` -- the measured Section V-F run: the
  100-proxy cluster in the DES with a streamed trace feed and the
  summary dissemination policy as an experimental axis.
"""

from repro.simulation.costs import CostModel
from repro.simulation.engine import Engine, Resource, Signal
from repro.simulation.experiment import (
    ExperimentResult,
    run_overhead_experiment,
    run_replay_experiment,
)
from repro.simulation.network import NetworkModel, PacketCounters
from repro.simulation.parallel import (
    ExperimentCell,
    default_jobs,
    fig5_grid,
    pack_grid_traces,
    run_cell,
    run_cells,
)
from repro.simulation.scale import (
    DISSEMINATION_POLICIES,
    ScaleResult,
    peak_rss_bytes,
    run_scale_experiment,
)

__all__ = [
    "CostModel",
    "DISSEMINATION_POLICIES",
    "Engine",
    "ExperimentCell",
    "ExperimentResult",
    "NetworkModel",
    "PacketCounters",
    "Resource",
    "ScaleResult",
    "Signal",
    "default_jobs",
    "fig5_grid",
    "pack_grid_traces",
    "peak_rss_bytes",
    "run_cell",
    "run_cells",
    "run_overhead_experiment",
    "run_replay_experiment",
    "run_scale_experiment",
]
