"""Client, proxy, and origin processes of the simulated testbed.

The simulated proxy runs the same protocol decision logic as the
prototype (local cache -> peer summaries / queries -> origin) but in
simulated time: every activity charges the proxy's FIFO CPU resource
with the cost model's service time, every message crosses the network
model's latency, and every packet increments netstat-style counters.

Clients are closed-loop: each issues its next request as soon as the
previous response arrives ("client processes issue requests with no
thinking time in between").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cache import WebCache
from repro.errors import ConfigurationError
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import MD5HashFamily
from repro.core.summary import SummaryConfig, expected_documents_for_cache
from repro.proxy.config import ProxyMode
from repro.simulation.costs import CostModel, CpuAccount
from repro.simulation.engine import Engine, Resource
from repro.simulation.network import NetworkModel, PacketCounters
from repro.traces.model import Request

#: Wire size assumed for one ICP query/reply datagram (20-byte header
#: plus a 50-byte average URL, the paper's Fig. 8 assumption).
ICP_DATAGRAM_BYTES = 70

#: DIRUPDATE capacity at the default MTU: (1400 - 32) / 4 records.
DIRUPDATE_RECORDS_PER_MESSAGE = (1400 - 32) // 4

#: Approximate HTTP request head size on the wire.
HTTP_REQUEST_BYTES = 200

#: Approximate HTTP response head size (body added separately).
HTTP_RESPONSE_HEAD_BYTES = 160


@dataclass
class SimProxyConfig:
    """Parameters of one simulated proxy."""

    mode: ProxyMode = ProxyMode.NO_ICP
    cache_capacity: int = 75 * 1024 * 1024  # the benchmark's 75 MB
    max_object_size: Optional[int] = 250 * 1024
    summary: SummaryConfig = field(default_factory=SummaryConfig)
    expected_doc_size: int = 8 * 1024
    update_threshold: float = 0.01
    #: ``"packet-fill"`` ships an update once pending flips fill one
    #: MTU-sized DIRUPDATE (the Squid prototype's behaviour, Section
    #: VI-B); ``"threshold"`` uses the new-document fraction.
    update_policy: str = "packet-fill"
    #: How DIRUPDATEs reach the peers.  ``"unicast"`` is the paper's
    #: all-pairs pattern: the updater sends to every peer itself, O(n)
    #: sender CPU and sends per update.  ``"hierarchy"`` relays through
    #: a k-ary fan-out tree over the peers (the dissemination
    #: alternative the cooperative-caching surveys describe): the
    #: updater pays for ``dissemination_fanout`` sends, interior peers
    #: forward, and the update lands after O(log n) hops -- total
    #: messages unchanged, sender load constant, extra staleness from
    #: the tree depth.
    dissemination: str = "unicast"
    #: Children per node of the hierarchical dissemination tree.
    dissemination_fanout: int = 4

    def __post_init__(self) -> None:
        if self.dissemination not in ("unicast", "hierarchy"):
            raise ConfigurationError(
                f"dissemination must be 'unicast' or 'hierarchy', "
                f"got {self.dissemination!r}"
            )
        if self.dissemination_fanout < 1:
            raise ConfigurationError("dissemination_fanout must be >= 1")


class SimOrigin:
    """The origin-server pool: a fixed reply delay, no queueing.

    The benchmark runs 30 server processes; each forks per request, so
    server-side parallelism is effectively unbounded and the 1-second
    sleep dominates -- modelled as pure delay with +-10% deterministic
    per-URL jitter (a real testbed's scheduling/network noise; without
    it the closed-loop clients lock into thundering herds that never
    occur on hardware).
    """

    def __init__(self, engine: Engine, delay: float = 1.0) -> None:
        self.engine = engine
        self.delay = delay
        self.counters = PacketCounters()
        self.requests = 0

    def delay_for(self, url: str) -> float:
        """The reply delay for *url* (deterministic jitter around
        :attr:`delay`)."""
        if self.delay <= 0:
            return 0.0
        frac = (hash(url) & 0xFFFF) / 0xFFFF
        return self.delay * (0.9 + 0.2 * frac)


class SimProxy:
    """One simulated proxy node."""

    def __init__(
        self,
        engine: Engine,
        index: int,
        config: SimProxyConfig,
        costs: CostModel,
        network: NetworkModel,
        origin: SimOrigin,
    ) -> None:
        self.engine = engine
        self.index = index
        self.config = config
        self.costs = costs
        self.network = network
        self.origin = origin
        self.cpu: Resource = engine.resource(f"cpu{index}")
        self.cpu_account = CpuAccount()
        self.counters = PacketCounters()
        self.local_summary = CountingBloomFilter.for_capacity(
            expected_documents_for_cache(
                config.cache_capacity, config.expected_doc_size
            ),
            load_factor=config.summary.load_factor,
            hash_family=MD5HashFamily(
                num_functions=config.summary.num_hashes
            ),
            counter_width=config.summary.counter_width,
        )
        #: The summary copy peers currently hold (updates are applied
        #: here when DIRUPDATE dissemination completes).
        self.shipped_summary = self.local_summary.snapshot()
        self._new_since_update = 0
        self.cache = WebCache(
            config.cache_capacity,
            max_object_size=config.max_object_size,
            on_insert=self._on_insert,
            on_evict=self._on_evict,
        )
        self.peers: List["SimProxy"] = []
        # Outcome tallies.
        self.http_requests = 0
        self.local_hits = 0
        self.remote_hits = 0
        self.false_query_rounds = 0
        self.remote_stale_hits = 0
        self.icp_queries_sent = 0
        self.icp_replies_received = 0
        self.dirupdates_sent = 0
        self.bytes_served = 0

    # -- cache/summary bookkeeping ------------------------------------

    def _on_insert(self, url: str) -> None:
        self.local_summary.add(url)
        self._new_since_update += 1

    def _on_evict(self, url: str) -> None:
        self.local_summary.remove(url)

    def _charge(self, user: float = 0.0, system: float = 0.0):
        """Charge CPU and return the completion signal to yield on."""
        total = self.cpu_account.charge(user=user, system=system)
        return self.cpu.serve(total)

    # -- the request path ---------------------------------------------

    def handle_request(self, request: Request):
        """Generator process serving one client request end to end."""
        self.http_requests += 1
        costs = self.costs

        # Base HTTP handling cost plus per-byte copy cost for the body
        # this request will serve.
        yield self._charge(
            user=costs.http_user,
            system=costs.http_system + request.size * costs.byte_system,
        )

        entry = self.cache.get(
            request.url, version=request.version, size=request.size
        )
        if entry is not None:
            self.local_hits += 1
            self.bytes_served += entry.size
            return

        served = False
        if self.config.mode is not ProxyMode.NO_ICP and self.peers:
            served = yield from self._try_peers(request)
        if not served:
            yield from self._fetch_origin(request)

        self.cache.put(request.url, request.size, version=request.version)
        if (
            self.config.mode is ProxyMode.SC_ICP
            and self._update_due()
        ):
            yield from self._broadcast_update()

    def _candidates(self, request: Request) -> List["SimProxy"]:
        if self.config.mode is ProxyMode.ICP:
            return list(self.peers)
        # SC-ICP: probe the peers' shipped summaries (one MD5 per URL).
        self.cpu_account.charge(user=self.costs.md5_user)
        key = None
        candidates = []
        for peer in self.peers:
            if key is None:
                key = peer.shipped_summary.positions(request.url)
            bits = peer.shipped_summary.bits
            if all(bits.get(p) for p in key):
                candidates.append(peer)
        return candidates

    def _try_peers(self, request: Request):
        """Query candidate peers; fetch from the first fresh holder."""
        candidates = self._candidates(request)
        if not candidates:
            return False

        costs = self.costs
        # Send one query per candidate (cost at sender, UDP counters).
        yield self._charge(
            user=costs.icp_user * len(candidates),
            system=costs.icp_system * len(candidates),
        )
        self.icp_queries_sent += len(candidates)

        reply_signals = []
        outcomes: Dict[int, str] = {}
        for peer in candidates:
            self.counters.count_udp(peer.counters)
            outcomes[peer.index] = peer.cache.probe(
                request.url, request.version
            )
            # The peer processes the query and replies after the
            # network latency each way plus its own CPU queueing.
            done = self.engine.signal()
            self.engine.call_later(
                self.network.transfer_time(ICP_DATAGRAM_BYTES),
                self._peer_reply,
                peer,
                done,
            )
            reply_signals.append(done)

        # Wait for all replies (yielding signals sequentially still ends
        # at the latest completion, since each fires independently).
        for signal in reply_signals:
            yield signal
            self.icp_replies_received += 1
        # Receiving each reply costs CPU at the requester.
        yield self._charge(
            user=costs.icp_user * len(candidates),
            system=costs.icp_system * len(candidates),
        )

        holder = next(
            (p for p in candidates if outcomes[p.index] == "hit"), None
        )
        if holder is None:
            if any(o == "stale" for o in outcomes.values()):
                self.remote_stale_hits += 1
            elif self.config.mode is ProxyMode.SC_ICP:
                self.false_query_rounds += 1
            return False

        # Fetch the document from the holder over TCP.
        yield self.network_delay(HTTP_REQUEST_BYTES)
        yield holder._charge(
            user=self.costs.peer_fetch_user,
            system=self.costs.peer_fetch_system
            + request.size * self.costs.byte_system,
        )
        holder.cache.touch(request.url)
        holder.bytes_served += request.size
        self.counters.count_tcp_exchange(
            holder.counters,
            HTTP_REQUEST_BYTES,
            HTTP_RESPONSE_HEAD_BYTES + request.size,
        )
        yield self.network_delay(HTTP_RESPONSE_HEAD_BYTES + request.size)
        self.remote_hits += 1
        self.bytes_served += request.size
        return True

    def _peer_reply(self, peer: "SimProxy", done) -> None:
        """Run the peer-side share of one query/reply exchange.

        The peer processes the query on its (single-threaded, FIFO)
        CPU -- ICP work contends with HTTP work, which is where the
        paper's latency overhead comes from -- then sends the reply.
        """

        def process():
            yield peer._charge(
                user=peer.costs.icp_user * 2,
                system=peer.costs.icp_system * 2,
            )
            peer.counters.count_udp(self.counters)
            yield self.network_delay(ICP_DATAGRAM_BYTES)
            done.fire()

        self.engine.spawn(process())

    def _fetch_origin(self, request: Request):
        """Fetch from the origin pool: latency-dominated."""
        self.origin.requests += 1
        self.counters.count_tcp_exchange(
            self.origin.counters,
            HTTP_REQUEST_BYTES,
            HTTP_RESPONSE_HEAD_BYTES + request.size,
        )
        yield (
            self.network.transfer_time(HTTP_REQUEST_BYTES)
            + self.origin.delay_for(request.url)
            + self.network.transfer_time(
                HTTP_RESPONSE_HEAD_BYTES + request.size
            )
        )
        self.bytes_served += request.size

    # -- summary update dissemination -----------------------------------

    def _update_due(self) -> bool:
        if self.config.update_policy == "packet-fill":
            return (
                self.local_summary.pending_flip_count
                >= DIRUPDATE_RECORDS_PER_MESSAGE
            )
        docs = max(1, len(self.cache))
        return (
            self._new_since_update / docs >= self.config.update_threshold
        )

    def _broadcast_update(self):
        flips = self.local_summary.drain_flips()
        self._new_since_update = 0
        if not flips or not self.peers:
            return
        num_messages = -(-len(flips) // DIRUPDATE_RECORDS_PER_MESSAGE)
        message_bytes = 32 + 4 * min(
            len(flips), DIRUPDATE_RECORDS_PER_MESSAGE
        )
        if self.config.dissemination == "hierarchy":
            yield from self._hierarchy_update(
                list(flips), num_messages, message_bytes
            )
            return
        yield self._charge(
            user=self.costs.dirupdate_user * num_messages * len(self.peers),
            system=self.costs.dirupdate_system
            * num_messages
            * len(self.peers),
        )
        for peer in self.peers:
            for _ in range(num_messages):
                self.counters.count_udp(peer.counters)
                self.dirupdates_sent += 1
            peer.cpu_account.charge(
                user=peer.costs.dirupdate_user * num_messages,
                system=peer.costs.dirupdate_system * num_messages,
            )
        # Model delivery: after the LAN latency all peers hold the new
        # bits (applied to the single shared shipped copy).
        done = self.engine.signal()
        self.engine.call_later(
            self.network.transfer_time(message_bytes),
            self._apply_update,
            list(flips),
            done,
        )
        yield done

    def _apply_update(self, flips, done) -> None:
        self.shipped_summary.apply_flips(flips)
        done.fire()

    def _hierarchy_update(self, flips, num_messages, message_bytes):
        """Disseminate one update through a k-ary fan-out tree.

        The updater is the tree root; the peers occupy heap positions
        1..P in index order (deterministic across runs).  The root pays
        send CPU for its own children only; interior peers receive,
        then forward to theirs.  The flips land on the shared shipped
        copy when the last peer has received -- the conservative
        reading of "all peers hold the new bits" under staggered
        delivery, so the extra tree-depth staleness is fully charged to
        the false-hit tally rather than hidden.

        Unlike the unicast path the updater does not block on delivery:
        propagation continues in background engine callbacks while the
        triggering request completes.
        """
        # Rotate the peer order so each updater roots a *different*
        # tree: with a fixed order the low-index peers would relay every
        # updater's traffic and concentrate exactly the load the
        # hierarchy exists to spread.
        cluster = len(self.peers) + 1
        order = sorted(
            self.peers, key=lambda p: (p.index - self.index) % cluster
        )
        fanout = self.config.dissemination_fanout
        state = {"delivered": 0}
        root_children = range(1, min(fanout, len(order)) + 1)
        yield self._charge(
            user=self.costs.dirupdate_user
            * num_messages
            * len(root_children),
            system=self.costs.dirupdate_system
            * num_messages
            * len(root_children),
        )
        for position in root_children:
            self._hierarchy_send(
                self, order, position, flips, num_messages,
                message_bytes, state,
            )

    def _hierarchy_send(
        self, sender, order, position, flips, num_messages,
        message_bytes, state,
    ) -> None:
        """Count *sender*'s datagrams to heap slot *position* and
        schedule their delivery one network hop later."""
        receiver = order[position - 1]
        for _ in range(num_messages):
            sender.counters.count_udp(receiver.counters)
            sender.dirupdates_sent += 1
        self.engine.call_later(
            self.network.transfer_time(message_bytes),
            self._hierarchy_deliver,
            order, position, flips, num_messages, message_bytes, state,
        )

    def _hierarchy_deliver(
        self, order, position, flips, num_messages, message_bytes, state
    ) -> None:
        """One peer received the update: charge it, relay, maybe apply."""
        node = order[position - 1]
        fanout = self.config.dissemination_fanout
        # The updater is heap node 0 and peers occupy slots 1..P, so
        # slot j's children are k*j+1 .. k*j+k -- every peer has exactly
        # one parent and receives the update exactly once.
        children = [
            child
            for child in range(
                fanout * position + 1, fanout * position + fanout + 1
            )
            if child <= len(order)
        ]
        sends = len(children)
        node.cpu_account.charge(
            user=node.costs.dirupdate_user * num_messages * (1 + sends),
            system=node.costs.dirupdate_system * num_messages * (1 + sends),
        )
        for child in children:
            self._hierarchy_send(
                node, order, child, flips, num_messages,
                message_bytes, state,
            )
        state["delivered"] += 1
        if state["delivered"] == len(order):
            self.shipped_summary.apply_flips(flips)

    # -- helpers ---------------------------------------------------------

    def network_delay(self, num_bytes: int):
        """A signal firing after one-way delivery of *num_bytes*."""
        done = self.engine.signal()
        self.engine.call_later(
            self.network.transfer_time(num_bytes), done.fire
        )
        return done


class SimClient:
    """A closed-loop client bound to one proxy."""

    def __init__(
        self,
        engine: Engine,
        proxy: SimProxy,
        requests: Iterable[Request],
        network: NetworkModel,
    ) -> None:
        self.engine = engine
        self.proxy = proxy
        self.requests = requests
        self.network = network
        self.counters = PacketCounters()
        self.latencies: List[float] = []
        self.done = engine.signal()

    def run(self):
        """Generator process issuing requests back to back."""
        for request in self.requests:
            start = self.engine.now
            # Request travels to the proxy ...
            yield self.network.transfer_time(HTTP_REQUEST_BYTES)
            self.proxy.counters.count_tcp_exchange(
                self.counters,
                HTTP_RESPONSE_HEAD_BYTES + request.size,
                HTTP_REQUEST_BYTES,
            )
            yield from self.proxy.handle_request(request)
            # ... and the response travels back.
            yield self.network.transfer_time(
                HTTP_RESPONSE_HEAD_BYTES + request.size
            )
            self.latencies.append(self.engine.now - start)
        self.done.fire()

    def start(self) -> None:
        """Spawn this client's process on the engine."""
        self.engine.spawn(self.run())
