"""Fan independent simulation cells across worker processes.

A paper-style experiment sweep -- Figs. 5-8, Table III, the threshold
sweep of Fig. 2 -- is a grid of *cells*: one trace replayed under one
``(scheme, representation, load factor, threshold)`` configuration.
Cells never share mutable state (each builds its own caches, summaries,
and trace from a deterministic seed), so the grid is embarrassingly
parallel.

:class:`ExperimentCell` names one cell; :func:`run_cell` executes it;
:func:`run_cells` runs a batch either serially (``jobs <= 1``) or on a
``multiprocessing`` pool, streaming results back as workers finish
(``imap_unordered``) and reassembling them in input order.  Because
trace generation and replay are deterministic, a parallel run is
bit-exact with a serial run of the same cells -- the equivalence tests
assert exactly that.

Workers inherit the parent's interpreter state where the platform forks
(Linux); on spawn platforms each worker imports the package fresh.
Either way every worker holds its own process-wide
:class:`~repro.core.position_cache.HashPositionCache`, so cells sharing
a worker warm-start their hash derivations.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from pathlib import Path
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.registry import get_registry
from repro.sharing.results import SharingResult
from repro.sharing.summary_sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_icp,
    simulate_summary_sharing,
)
from repro.summaries import SummaryConfig
from repro.traces.binary import BinaryTraceReader
from repro.traces.stats import compute_stats, mean_cacheable_size
from repro.traces.workloads import make_workload, pack_workload

__all__ = [
    "ExperimentCell",
    "default_jobs",
    "fig5_grid",
    "pack_grid_traces",
    "run_cell",
    "run_cells",
]

#: Cells handed to a worker per pool dispatch.  One cell takes long
#: enough (hundreds of milliseconds and up) that fine-grained dispatch
#: overhead is negligible; 1 keeps the stream responsive and the load
#: balanced when cell durations vary.
DEFAULT_CHUNKSIZE = 1

#: Summary kinds a cell may name, plus the ICP baseline.
_CELL_KINDS = ("exact-directory", "server-name", "bloom", "icp")


@dataclass(frozen=True)
class ExperimentCell:
    """One independent simulation: a trace under one configuration.

    The cell is a frozen, picklable value object -- everything a worker
    process needs to reproduce the simulation from scratch.  Two equal
    cells produce identical :class:`~repro.sharing.results.SharingResult`
    objects in any process (deterministic trace generation + replay).

    Attributes
    ----------
    workload:
        A :data:`~repro.traces.workloads.WORKLOAD_PRESETS` name.
    kind:
        Summary representation (``"exact-directory"``, ``"server-name"``,
        ``"bloom"``) or ``"icp"`` for the message baseline.
    load_factor:
        Bloom bits per expected document (ignored by other kinds).
    threshold:
        Update-delay threshold (fraction of cached documents changed
        before peers are updated); ignored by ``"icp"``.
    scale:
        Workload scale factor (1.0 = the preset's laptop scale).
    cache_fraction:
        Per-proxy capacity as a fraction of the infinite cache size
        (the paper's headline setting is 10%).
    policy:
        Cache replacement policy name.
    seed:
        Overrides the workload preset's generator seed; ``None`` keeps
        the preset's fixed seed.  Deterministic either way.
    trace_path:
        Optional path to a packed binary trace (``.sctr``).  When set,
        the worker mmaps this file instead of regenerating the synthetic
        trace -- the pack-once/replay-many path for grids where many
        cells share one workload.  Replay is bit-exact with the
        generated trace (same request stream), so results are unchanged.
    """

    workload: str
    kind: str = "bloom"
    load_factor: int = 8
    threshold: float = 0.01
    scale: float = 1.0
    cache_fraction: float = 0.10
    policy: str = "lru"
    seed: Optional[int] = None
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _CELL_KINDS:
            raise ConfigurationError(
                f"unknown cell kind {self.kind!r}; expected one of "
                f"{_CELL_KINDS}"
            )

    def label(self) -> str:
        """Short human-readable cell name for logs and benchmark rows."""
        rep = (
            f"bloom-{self.load_factor}" if self.kind == "bloom" else self.kind
        )
        return f"{self.workload}/{rep}/t={self.threshold:g}"


def run_cell(cell: ExperimentCell) -> SharingResult:
    """Execute one cell from scratch and return its result.

    Top-level (hence picklable) and self-contained: builds the trace
    (or mmaps the cell's packed file), sizes the per-proxy capacity
    exactly as :func:`repro.experiments.representations` does, then
    replays.
    """
    reader = None
    try:
        if cell.trace_path is not None:
            from repro.traces.workloads import workload_config

            _, groups = workload_config(
                cell.workload, scale=cell.scale, seed=cell.seed
            )
            reader = BinaryTraceReader(cell.trace_path)
            trace = reader
        else:
            trace, groups = make_workload(
                cell.workload, scale=cell.scale, seed=cell.seed
            )
        stats = compute_stats(trace)
        capacity = max(
            1, int(stats.infinite_cache_bytes * cell.cache_fraction / groups)
        )
        if cell.kind == "icp":
            return simulate_icp(trace, groups, capacity, policy=cell.policy)
        summary = (
            SummaryConfig(kind="bloom", load_factor=cell.load_factor)
            if cell.kind == "bloom"
            else SummaryConfig(kind=cell.kind)
        )
        cfg = SummarySharingConfig(
            summary=summary,
            update_policy=ThresholdUpdatePolicy(cell.threshold),
            policy=cell.policy,
            expected_doc_size=mean_cacheable_size(trace),
        )
        return simulate_summary_sharing(trace, groups, capacity, cfg)
    finally:
        if reader is not None:
            reader.close()


def pack_grid_traces(
    cells: Sequence[ExperimentCell], directory
) -> List[ExperimentCell]:
    """Pack each distinct workload of *cells* once; point cells at it.

    ``fig5_grid`` produces many cells per workload, and every worker
    regenerated the identical synthetic trace from its seed.  This packs
    one ``.sctr`` per distinct ``(workload, scale, seed)`` into
    *directory* and returns the cells with ``trace_path`` set, so the
    whole grid shares one on-disk trace per workload via the page cache.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: Dict[Tuple[str, float, Optional[int]], str] = {}
    packed: List[ExperimentCell] = []
    for cell in cells:
        key = (cell.workload.lower(), cell.scale, cell.seed)
        path = paths.get(key)
        if path is None:
            stem = f"{key[0]}-s{cell.scale:g}"
            if cell.seed is not None:
                stem += f"-seed{cell.seed}"
            path = str(directory / f"{stem}.sctr")
            pack_workload(
                cell.workload, path, scale=cell.scale, seed=cell.seed
            )
            paths[key] = path
        packed.append(replace(cell, trace_path=path))
    return packed


def _run_indexed(
    indexed: Tuple[int, ExperimentCell],
) -> Tuple[int, SharingResult, float]:
    """Pool task: run one cell, reporting its index and wall time."""
    index, cell = indexed
    start = perf_counter()
    result = run_cell(cell)
    return index, result, perf_counter() - start


def default_jobs() -> int:
    """Worker count matching the CPUs this process may use."""
    return multiprocessing.cpu_count()


class _RunnerInstruments:
    """Registry handles for the experiment runner (parent process)."""

    __slots__ = ("cells", "cell_seconds")

    def __init__(self, registry) -> None:
        self.cells = registry.counter(
            "parallel_cells_total",
            "experiment cells completed by the runner",
        )
        self.cell_seconds = registry.histogram(
            "parallel_cell_seconds",
            "wall time of one experiment cell",
            buckets=(0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0),
        )


def run_cells(
    cells: Sequence[ExperimentCell],
    jobs: int = 1,
    chunksize: int = DEFAULT_CHUNKSIZE,
) -> List[SharingResult]:
    """Run *cells*, serially or on *jobs* worker processes.

    Results come back in the order of *cells* regardless of completion
    order.  ``jobs <= 1`` runs in-process with no pool (the exact code
    path a worker executes, so serial and parallel runs differ only in
    scheduling); ``jobs`` above the cell count is clamped.  Per-cell
    wall times feed the ``parallel_cell_seconds`` histogram in the
    parent's registry -- worker processes have their own registries,
    which die with them.
    """
    cells = list(cells)
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    registry = get_registry()
    obs = _RunnerInstruments(registry) if registry.enabled else None
    results: List[Optional[SharingResult]] = [None] * len(cells)
    if not cells:
        return []
    jobs = min(jobs, len(cells))
    if jobs <= 1:
        for index, cell in enumerate(cells):
            start = perf_counter()
            results[index] = run_cell(cell)
            if obs is not None:
                obs.cells.inc()
                obs.cell_seconds.observe(perf_counter() - start)
        return results  # type: ignore[return-value]
    with multiprocessing.Pool(processes=jobs) as pool:
        # imap_unordered streams each cell's result back the moment its
        # worker finishes -- no barrier at the end of the grid.
        for index, result, seconds in pool.imap_unordered(
            _run_indexed, enumerate(cells), chunksize=chunksize
        ):
            results[index] = result
            if obs is not None:
                obs.cells.inc()
                obs.cell_seconds.observe(seconds)
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        raise ConfigurationError(
            f"pool returned no result for cells {missing}"
        )
    return results  # type: ignore[return-value]


def fig5_grid(
    workloads: Iterable[str],
    load_factors: Iterable[int] = (8, 16, 32),
    thresholds: Iterable[float] = (0.01,),
    include_exact: bool = True,
    include_server_name: bool = True,
    include_icp: bool = True,
    scale: float = 1.0,
    cache_fraction: float = 0.10,
) -> List[ExperimentCell]:
    """The Fig. 5-8 style grid: representations x workloads x thresholds.

    One cell per (workload, representation, threshold), plus one ICP
    baseline cell per workload when *include_icp*.
    """
    grid: List[ExperimentCell] = []
    for workload in workloads:
        for threshold in thresholds:
            if include_exact:
                grid.append(
                    ExperimentCell(
                        workload=workload,
                        kind="exact-directory",
                        threshold=threshold,
                        scale=scale,
                        cache_fraction=cache_fraction,
                    )
                )
            if include_server_name:
                grid.append(
                    ExperimentCell(
                        workload=workload,
                        kind="server-name",
                        threshold=threshold,
                        scale=scale,
                        cache_fraction=cache_fraction,
                    )
                )
            for load_factor in load_factors:
                grid.append(
                    ExperimentCell(
                        workload=workload,
                        kind="bloom",
                        load_factor=load_factor,
                        threshold=threshold,
                        scale=scale,
                        cache_fraction=cache_fraction,
                    )
                )
        if include_icp:
            grid.append(
                ExperimentCell(
                    workload=workload, kind="icp", scale=scale,
                    cache_fraction=cache_fraction,
                )
            )
    return grid
