"""A small process-based discrete-event simulation kernel.

Three primitives are enough for the proxy experiments:

- :class:`Engine` -- the event heap and clock.  Processes are plain
  generators driven by the engine; a process may ``yield`` either a
  float (sleep that many simulated seconds) or a :class:`Signal`
  (park until the signal fires; the fired value is returned by the
  ``yield``).
- :class:`Signal` -- a one-shot wakeup channel, the DES analogue of a
  future.
- :class:`Resource` -- a non-preemptive FIFO server (we use one per
  proxy CPU).  ``resource.serve(t)`` returns a signal that fires when
  the resource has dedicated *t* seconds to the job; total busy time is
  tracked for utilization/CPU accounting.

The kernel is deterministic: ties in time are broken by scheduling
order.
"""

from __future__ import annotations

import heapq
import logging
from collections import deque
from time import perf_counter
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.registry import get_registry

logger = logging.getLogger(__name__)

Process = Generator[Any, Any, None]


class _EngineInstruments:
    """Registry handles bound by engines built while metrics are enabled."""

    __slots__ = ("events", "queue_depth", "run_seconds")

    def __init__(self, registry) -> None:
        self.events = registry.counter(
            "sim_events_total", "DES events dispatched"
        )
        self.queue_depth = registry.gauge(
            "sim_queue_depth", "pending events on the DES heap"
        )
        self.run_seconds = registry.histogram(
            "sim_run_seconds", "wall time of one Engine.run call"
        )


class Signal:
    """A one-shot wakeup channel.

    A process that ``yield``\\ s an unfired signal parks until
    :meth:`fire` is called; the value passed to ``fire`` becomes the
    result of the ``yield``.  Firing an already-fired signal raises
    :class:`~repro.errors.SimulationError`; yielding an already-fired
    signal resumes immediately with the stored value.
    """

    __slots__ = ("_engine", "_fired", "_value", "_waiters")

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        self._fired = False
        self._value: Any = None
        self._waiters: List[Process] = []

    @property
    def fired(self) -> bool:
        """Whether :meth:`fire` has been called."""
        return self._fired

    @property
    def value(self) -> Any:
        """The fired value (``None`` before firing)."""
        return self._value

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking every parked process at the current time."""
        if self._fired:
            raise SimulationError("signal fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._engine._resume(process, value)

    def _park(self, process: Process) -> bool:
        """Park *process* on this signal; returns False if already fired."""
        if self._fired:
            return False
        self._waiters.append(process)
        return True


class Resource:
    """A non-preemptive FIFO server with busy-time accounting."""

    __slots__ = ("_engine", "name", "_busy", "_queue", "busy_time", "jobs")

    def __init__(self, engine: "Engine", name: str = "resource") -> None:
        self._engine = engine
        self.name = name
        self._busy = False
        self._queue: Deque[Tuple[float, Signal]] = deque()
        #: Total seconds this resource has spent serving jobs.
        self.busy_time = 0.0
        #: Total jobs served (or started).
        self.jobs = 0

    def serve(self, service_time: float) -> Signal:
        """Enqueue a job needing *service_time* seconds; returns its
        completion signal."""
        if service_time < 0:
            raise SimulationError(
                f"negative service time {service_time} on {self.name}"
            )
        done = Signal(self._engine)
        self._queue.append((service_time, done))
        if not self._busy:
            self._start_next()
        return done

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        service_time, done = self._queue.popleft()
        self.busy_time += service_time
        self.jobs += 1
        self._engine.call_later(service_time, self._finish, done)

    def _finish(self, done: Signal) -> None:
        done.fire()
        self._start_next()

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not including the one in service)."""
        return len(self._queue)


class Engine:
    """The event heap, clock, and process driver."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._now = 0.0
        self._seq = 0
        registry = get_registry()
        self._obs = (
            _EngineInstruments(registry) if registry.enabled else None
        )

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def call_later(self, delay: float, callback: Callable, *args) -> None:
        """Schedule *callback* to run after *delay* simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(
            self._heap, (self._now + delay, self._seq, callback, args)
        )

    def signal(self) -> Signal:
        """Create a fresh signal bound to this engine."""
        return Signal(self)

    def resource(self, name: str = "resource") -> Resource:
        """Create a FIFO resource bound to this engine."""
        return Resource(self, name)

    def spawn(self, process: Process) -> None:
        """Start driving a generator process at the current time."""
        self.call_later(0.0, self._resume, process, None)

    def _resume(self, process: Process, value: Any) -> None:
        try:
            yielded = process.send(value)
        except StopIteration:
            return
        if isinstance(yielded, Signal):
            if not yielded._park(process):
                # Already fired: resume immediately with its value.
                self.call_later(0.0, self._resume, process, yielded.value)
        elif isinstance(yielded, (int, float)):
            self.call_later(float(yielded), self._resume, process, None)
        else:
            raise SimulationError(
                f"process yielded {type(yielded).__name__}; expected a "
                "Signal or a number of seconds"
            )

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the heap drains or the clock passes *until*.

        Returns the final simulated time.
        """
        obs = self._obs
        if obs is None:
            while self._heap:
                time, _seq, callback, args = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._heap)
                self._now = time
                callback(*args)
            return self._now

        start = perf_counter()
        events = 0
        try:
            while self._heap:
                time, _seq, callback, args = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._heap)
                self._now = time
                callback(*args)
                events += 1
                obs.queue_depth.set(len(self._heap))
            return self._now
        finally:
            obs.events.inc(events)
            obs.run_seconds.observe(perf_counter() - start)
            logger.debug(
                "engine.run finished events=%d sim_time=%.6f", events, self._now
            )
