"""Network model and netstat-style counters for the simulated cluster.

The testbed is a 100 Mb/s Ethernet LAN: messages between cluster nodes
see a small fixed latency plus serialization delay.  Origin servers add
their own reply delay at the node level (the 1-second sleep), not here.

Packet counting mirrors what the paper collected with ``netstat``: "the
number of UDP datagrams sent and received, the TCP packets sent and
received, and the total number of IP packets handled by the Ethernet
network interface.  The third number is roughly the sum of the first
two."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Ethernet MSS used to convert byte counts into TCP packet estimates.
TCP_MSS = 1460

#: TCP handshake/teardown packets per connection (SYN, SYN-ACK, ACK,
#: FIN+ACK exchanges approximated).
TCP_SETUP_PACKETS = 4


@dataclass
class PacketCounters:
    """Per-node interface counters (the netstat rows of Table II)."""

    udp_sent: int = 0
    udp_received: int = 0
    tcp_sent: int = 0
    tcp_received: int = 0

    @property
    def total_packets(self) -> int:
        """Total IP packets handled by the interface."""
        return (
            self.udp_sent
            + self.udp_received
            + self.tcp_sent
            + self.tcp_received
        )

    def count_udp(self, other: "PacketCounters") -> None:
        """Record one UDP datagram from ``self`` to ``other``."""
        self.udp_sent += 1
        other.udp_received += 1

    def count_tcp_exchange(
        self,
        other: "PacketCounters",
        bytes_to_other: int,
        bytes_from_other: int,
    ) -> None:
        """Record one TCP connection exchanging the given byte volumes."""
        to_packets = _segments(bytes_to_other) + TCP_SETUP_PACKETS // 2
        from_packets = _segments(bytes_from_other) + TCP_SETUP_PACKETS // 2
        # Data segments one way are ACKed the other way; approximate one
        # ACK per two segments, matching TCP's delayed-ACK behaviour.
        self.tcp_sent += to_packets + from_packets // 2
        self.tcp_received += from_packets + to_packets // 2
        other.tcp_sent += from_packets + to_packets // 2
        other.tcp_received += to_packets + from_packets // 2


def _segments(byte_count: int) -> int:
    """TCP data segments needed for *byte_count* bytes (at least one)."""
    if byte_count <= 0:
        return 1
    return (byte_count + TCP_MSS - 1) // TCP_MSS


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters of the experiment LAN."""

    #: One-way fixed latency between any two cluster nodes, seconds.
    lan_latency: float = 0.0002
    #: Link bandwidth in bytes/second (100 Mb/s Ethernet).
    bandwidth: float = 100e6 / 8

    def __post_init__(self) -> None:
        if self.lan_latency < 0:
            raise ConfigurationError("lan_latency must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be > 0")

    def transfer_time(self, num_bytes: int) -> float:
        """One-way delivery time for a message of *num_bytes*."""
        return self.lan_latency + max(0, num_bytes) / self.bandwidth
