"""Experiment harnesses producing the paper's overhead tables.

:func:`run_overhead_experiment` reproduces the Table II setup: four
proxies, 30 benchmark clients each, a tunable inherent hit ratio, no
request overlap between clients (hence no remote hits -- ICP's worst
case), origin replies delayed one second.

:func:`run_replay_experiment` reproduces the Table IV/V setup: replay a
trace (the paper uses the first 24,000 UPisa requests) through the
cluster under either client-bound or round-robin assignment; here remote
hits do occur, so the experiment also shows SC-ICP's latency benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.proxy.config import ProxyMode
from repro.benchmarkkit.wisconsin import WisconsinConfig, generate_client_streams
from repro.simulation.costs import CostModel
from repro.simulation.engine import Engine
from repro.simulation.network import NetworkModel
from repro.simulation.nodes import SimClient, SimOrigin, SimProxy, SimProxyConfig
from repro.traces.model import Request, Trace
from repro.traces.partition import group_of


@dataclass
class ExperimentResult:
    """One table row: what the paper measures for one protocol config."""

    mode: str
    hit_ratio: float
    remote_hit_ratio: float
    mean_latency: float
    user_cpu: float
    system_cpu: float
    udp_sent: int
    udp_received: int
    tcp_sent: int
    tcp_received: int
    duration: float
    requests: int
    false_query_rounds: int = 0
    dirupdates_sent: int = 0

    @property
    def total_cpu(self) -> float:
        """User plus system CPU seconds across all proxies."""
        return self.user_cpu + self.system_cpu

    @property
    def total_packets(self) -> int:
        """Total IP packets handled by the proxies' interfaces."""
        return (
            self.udp_sent + self.udp_received + self.tcp_sent + self.tcp_received
        )

    def overhead_vs(self, baseline: "ExperimentResult") -> dict:
        """Percentage increases over *baseline* (the paper's Overhead row)."""

        def pct(ours: float, theirs: float) -> float:
            if theirs == 0:
                return float("inf") if ours else 0.0
            return 100.0 * (ours - theirs) / theirs

        return {
            "udp": pct(
                self.udp_sent + self.udp_received,
                baseline.udp_sent + baseline.udp_received,
            ),
            "packets": pct(self.total_packets, baseline.total_packets),
            "user_cpu": pct(self.user_cpu, baseline.user_cpu),
            "system_cpu": pct(self.system_cpu, baseline.system_cpu),
            "latency": pct(self.mean_latency, baseline.mean_latency),
        }


def _build_cluster(
    engine: Engine,
    num_proxies: int,
    proxy_config: SimProxyConfig,
    costs: CostModel,
    network: NetworkModel,
    origin_delay: float,
):
    origin = SimOrigin(engine, delay=origin_delay)
    proxies = [
        SimProxy(engine, i, proxy_config, costs, network, origin)
        for i in range(num_proxies)
    ]
    for proxy in proxies:
        proxy.peers = [p for p in proxies if p is not proxy]
    return origin, proxies


#: Interval between neighbour keep-alive datagrams.  The paper's
#: baseline interproxy traffic "with no ICP is keep-alive messages";
#: this constant sets their rate in every mode.  It is calibrated so
#: the full-size Table II experiment shows ICP's UDP traffic at the
#: paper's 73x-90x over the keep-alive baseline.
KEEPALIVE_INTERVAL = 1.5


def _collect(
    mode: ProxyMode,
    proxies: Sequence[SimProxy],
    clients: Sequence[SimClient],
    duration: float,
    keepalive_interval: float = KEEPALIVE_INTERVAL,
) -> ExperimentResult:
    requests = sum(p.http_requests for p in proxies)
    hits = sum(p.local_hits + p.remote_hits for p in proxies)
    remote = sum(p.remote_hits for p in proxies)
    latencies = [lat for c in clients for lat in c.latencies]
    # Keep-alive accounting: each proxy pings every neighbour once per
    # interval for the whole run, in every mode (counted analytically
    # rather than as events -- they never interact with anything).
    keepalives_per_proxy = (
        (len(proxies) - 1) * int(duration / keepalive_interval)
        if keepalive_interval > 0
        else 0
    )
    keepalive_total = keepalives_per_proxy * len(proxies)
    return ExperimentResult(
        mode=mode.value,
        hit_ratio=hits / requests if requests else 0.0,
        remote_hit_ratio=remote / requests if requests else 0.0,
        mean_latency=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        user_cpu=sum(p.cpu_account.user for p in proxies),
        system_cpu=sum(p.cpu_account.system for p in proxies),
        udp_sent=sum(p.counters.udp_sent for p in proxies)
        + keepalive_total,
        udp_received=sum(p.counters.udp_received for p in proxies)
        + keepalive_total,
        tcp_sent=sum(p.counters.tcp_sent for p in proxies),
        tcp_received=sum(p.counters.tcp_received for p in proxies),
        duration=duration,
        requests=requests,
        false_query_rounds=sum(p.false_query_rounds for p in proxies),
        dirupdates_sent=sum(p.dirupdates_sent for p in proxies),
    )


def run_overhead_experiment(
    mode: ProxyMode,
    num_proxies: int = 4,
    clients_per_proxy: int = 30,
    requests_per_client: int = 200,
    target_hit_ratio: float = 0.25,
    origin_delay: float = 1.0,
    costs: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    proxy_config: Optional[SimProxyConfig] = None,
    seed: int = 1,
) -> ExperimentResult:
    """The Table II experiment for one protocol *mode*.

    Returns the aggregated row; run once per mode and compare with
    :meth:`ExperimentResult.overhead_vs`.
    """
    engine = Engine()
    costs = costs or CostModel()
    network = network or NetworkModel()
    config = proxy_config or SimProxyConfig()
    config.mode = mode
    origin, proxies = _build_cluster(
        engine, num_proxies, config, costs, network, origin_delay
    )

    streams = generate_client_streams(
        WisconsinConfig(
            num_clients=num_proxies * clients_per_proxy,
            requests_per_client=requests_per_client,
            target_hit_ratio=target_hit_ratio,
            seed=seed,
        )
    )
    clients = []
    for client_index, stream in enumerate(streams):
        proxy = proxies[client_index % num_proxies]
        client = SimClient(engine, proxy, stream, network)
        clients.append(client)
        client.start()

    duration = engine.run()
    return _collect(mode, proxies, clients, duration)


def run_replay_experiment(
    trace: Trace,
    mode: ProxyMode,
    num_proxies: int = 4,
    clients_per_proxy: int = 20,
    assignment: str = "client-bound",
    origin_delay: float = 1.0,
    costs: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    proxy_config: Optional[SimProxyConfig] = None,
) -> ExperimentResult:
    """The Table IV/V experiment: replay *trace* under *assignment*.

    ``assignment="client-bound"`` preserves each trace client's binding
    to a proxy (experiment 3); ``"round-robin"`` deals requests to
    proxies in global order (experiment 4).
    """
    engine = Engine()
    costs = costs or CostModel()
    network = network or NetworkModel()
    config = proxy_config or SimProxyConfig()
    config.mode = mode
    origin, proxies = _build_cluster(
        engine, num_proxies, config, costs, network, origin_delay
    )

    per_proxy: List[List[Request]] = [[] for _ in range(num_proxies)]
    if assignment == "client-bound":
        for req in trace:
            per_proxy[group_of(req.client_id, num_proxies)].append(req)
    elif assignment == "round-robin":
        for i, req in enumerate(trace):
            per_proxy[i % num_proxies].append(req)
    else:
        raise ConfigurationError(
            f"unknown assignment {assignment!r}; expected "
            "'client-bound' or 'round-robin'"
        )

    clients = []
    for proxy_index, requests in enumerate(per_proxy):
        shares: List[List[Request]] = [[] for _ in range(clients_per_proxy)]
        for i, req in enumerate(requests):
            shares[i % clients_per_proxy].append(req)
        for share in shares:
            if share:
                client = SimClient(
                    engine, proxies[proxy_index], share, network
                )
                clients.append(client)
                client.start()

    duration = engine.run()
    return _collect(mode, proxies, clients, duration)
