"""The measured Section V-F run: 100 proxies in the DES, streamed feed.

Section V-F's 100-proxy numbers are a back-of-the-envelope
(:mod:`repro.analysis.scalability`); this harness runs the actual
configuration in the discrete-event simulator and reports the measured
update traffic, false-hit ratio, and protocol overhead next to the
extrapolation's predictions.

Two things make the run tractable:

- **streamed feeds** -- every simulated client consumes a lazy filtered
  scan of a re-iterable trace (a :class:`~repro.traces.model.Trace` or
  an mmap-backed :class:`~repro.traces.binary.BinaryTraceReader`), so
  the request stream is never materialized per proxy;
- **dissemination as an axis** -- DIRUPDATEs propagate either all-pairs
  (``unicast``, the paper's pattern) or through a k-ary relay tree
  (``hierarchy``), the alternative that keeps the updater's send load
  constant as the cluster grows (see
  :class:`~repro.simulation.nodes.SimProxyConfig`).
"""

from __future__ import annotations

import resource
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Iterator, List, Optional

from repro.analysis.scalability import extrapolate
from repro.errors import ConfigurationError
from repro.proxy.config import ProxyMode
from repro.simulation.costs import CostModel
from repro.simulation.engine import Engine
from repro.simulation.network import NetworkModel
from repro.simulation.nodes import (
    SimClient,
    SimOrigin,
    SimProxy,
    SimProxyConfig,
)
from repro.traces.model import Request
from repro.traces.partition import group_of

#: Dissemination policies :func:`run_scale_experiment` accepts.
DISSEMINATION_POLICIES = ("unicast", "hierarchy")


def peak_rss_bytes() -> int:
    """This process's peak resident set size in bytes (high-water)."""
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.  The repo targets Linux.
    return maxrss * 1024


@dataclass
class ScaleResult:
    """Measured vs predicted quantities of one Section V-F cell."""

    num_proxies: int
    dissemination: str
    fanout: int
    requests: int
    hit_ratio: float
    remote_hit_ratio: float
    miss_ratio: float
    false_hit_ratio: float
    update_messages: int
    update_messages_per_request: float
    query_messages_per_request: float
    protocol_messages_per_request: float
    udp_sent: int
    udp_received: int
    sender_max_dirupdates: int
    summary_memory_bytes: int
    counter_memory_bytes: int
    mean_latency: float
    sim_duration: float
    wall_seconds: float
    peak_rss_bytes: int
    predicted: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def _client_feed(
    trace: Iterable[Request],
    num_proxies: int,
    group: int,
    clients_per_proxy: int,
    slot: int,
) -> Iterator[Request]:
    """Lazily yield group *group*'s requests dealt to client *slot*.

    One full scan of *trace* per client; with an mmap reader a scan is a
    sequential page-cache walk, so N proxies never hold N copies.
    """
    position = 0
    for req in trace:
        if group_of(req.client_id, num_proxies) != group:
            continue
        if position % clients_per_proxy == slot:
            yield req
        position += 1


def run_scale_experiment(
    trace: Iterable[Request],
    num_proxies: int = 100,
    dissemination: str = "unicast",
    fanout: int = 4,
    clients_per_proxy: int = 1,
    cache_capacity: int = 8 * 1024 * 1024,
    expected_doc_size: int = 8 * 1024,
    update_threshold: float = 0.01,
    origin_delay: float = 1.0,
    costs: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
) -> ScaleResult:
    """Run the DES at *num_proxies* with the given dissemination policy.

    *trace* must be re-iterable (each simulated client opens its own
    scan): a materialized trace or a binary reader, not a bare
    generator.  Uses the ``threshold`` update policy so the measured
    update traffic is comparable with Section V-F's threshold
    calculation; the extrapolation is evaluated at this run's actual
    geometry (cache size, page size, load factor, measured miss ratio)
    and attached as ``predicted``.
    """
    if dissemination not in DISSEMINATION_POLICIES:
        raise ConfigurationError(
            f"dissemination must be one of {DISSEMINATION_POLICIES}, "
            f"got {dissemination!r}"
        )
    if iter(trace) is iter(trace):
        raise ConfigurationError(
            "run_scale_experiment needs a re-iterable trace (a Trace or "
            "BinaryTraceReader), not a one-shot generator"
        )
    config = SimProxyConfig(
        mode=ProxyMode.SC_ICP,
        cache_capacity=cache_capacity,
        expected_doc_size=expected_doc_size,
        update_threshold=update_threshold,
        update_policy="threshold",
        dissemination=dissemination,
        dissemination_fanout=fanout,
    )
    engine = Engine()
    costs = costs or CostModel()
    network = network or NetworkModel()
    origin = SimOrigin(engine, delay=origin_delay)
    proxies = [
        SimProxy(engine, i, config, costs, network, origin)
        for i in range(num_proxies)
    ]
    for proxy in proxies:
        proxy.peers = [p for p in proxies if p is not proxy]

    clients: List[SimClient] = []
    for group in range(num_proxies):
        for slot in range(clients_per_proxy):
            client = SimClient(
                engine,
                proxies[group],
                _client_feed(
                    trace, num_proxies, group, clients_per_proxy, slot
                ),
                network,
            )
            clients.append(client)
            client.start()

    wall_start = perf_counter()
    sim_duration = engine.run()
    wall_seconds = perf_counter() - wall_start

    requests = sum(p.http_requests for p in proxies)
    local_hits = sum(p.local_hits for p in proxies)
    remote_hits = sum(p.remote_hits for p in proxies)
    false_rounds = sum(p.false_query_rounds for p in proxies)
    queries = sum(p.icp_queries_sent for p in proxies)
    updates = sum(p.dirupdates_sent for p in proxies)
    latencies = [lat for c in clients for lat in c.latencies]
    miss_ratio = (
        1.0 - (local_hits + remote_hits) / requests if requests else 1.0
    )

    predicted = {}
    if num_proxies >= 2 and requests:
        estimate = extrapolate(
            num_proxies=num_proxies,
            cache_bytes=cache_capacity,
            page_size=expected_doc_size,
            load_factor=config.summary.load_factor,
            num_hashes=config.summary.num_hashes,
            update_threshold=update_threshold,
            counter_bits=config.summary.counter_width,
            miss_ratio=max(1e-9, min(1.0, miss_ratio)),
        )
        predicted = {
            "summary_memory_bytes": estimate.summary_memory_bytes,
            "counter_memory_bytes": estimate.counter_memory_bytes,
            "requests_between_updates": estimate.requests_between_updates,
            "update_messages_per_request": (
                estimate.update_messages_per_request
            ),
            "false_hit_queries_per_request": (
                estimate.false_hit_queries_per_request
            ),
            "protocol_messages_per_request": (
                estimate.protocol_messages_per_request
            ),
        }

    sample = proxies[0]
    summary_memory = (
        sample.local_summary.remote_size_bytes() * (num_proxies - 1)
        if num_proxies > 1
        else 0
    )
    counter_memory = (
        sample.local_summary.size_bytes()
        - sample.local_summary.remote_size_bytes()
    )
    return ScaleResult(
        num_proxies=num_proxies,
        dissemination=dissemination,
        fanout=fanout,
        requests=requests,
        hit_ratio=(
            (local_hits + remote_hits) / requests if requests else 0.0
        ),
        remote_hit_ratio=remote_hits / requests if requests else 0.0,
        miss_ratio=miss_ratio,
        false_hit_ratio=false_rounds / requests if requests else 0.0,
        update_messages=updates,
        update_messages_per_request=(
            updates / requests if requests else 0.0
        ),
        query_messages_per_request=(
            queries / requests if requests else 0.0
        ),
        protocol_messages_per_request=(
            (queries + updates) / requests if requests else 0.0
        ),
        udp_sent=sum(p.counters.udp_sent for p in proxies),
        udp_received=sum(p.counters.udp_received for p in proxies),
        sender_max_dirupdates=max(
            (p.dirupdates_sent for p in proxies), default=0
        ),
        summary_memory_bytes=summary_memory,
        counter_memory_bytes=counter_memory,
        mean_latency=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        sim_duration=sim_duration,
        wall_seconds=wall_seconds,
        peak_rss_bytes=peak_rss_bytes(),
        predicted=predicted,
    )
