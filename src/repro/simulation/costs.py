"""The CPU cost model of the simulated proxies.

The paper attributes overhead to distinct activities: "Protocol
processing increases the user CPU time by 20% to 24%, and UDP processing
increases the system CPU time by 7% to 10%"; "most of the CPU time
increase is due to servicing remote hits, and the CPU time increase due
to MD5 calculation is less than 5%."

The constants below are calibration parameters, not measurements -- they
are chosen so a mid-1990s-workstation-class proxy shows the paper's
*relative* overheads, and every experiment prints them next to its
results.  Each activity carries separate user and system components so
the Table II/IV/V CPU rows can be attributed the way ``time`` reports
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostModel:
    """Per-activity CPU service times, in seconds.

    Attributes
    ----------
    http_user / http_system:
        Handling one client HTTP request end to end (parse, cache
        lookup, response assembly / socket and disk work).
    byte_system:
        Per-byte copy cost (system time) for bytes served.
    icp_user / icp_system:
        Processing one ICP message, sent or received (the paper's
        per-inquiry overhead; UDP work lands mostly in system time).
    md5_user:
        One MD5 summary calculation (SC-ICP only).
    dirupdate_user / dirupdate_system:
        Processing one DIRUPDATE message, sent or received.
    peer_fetch_user / peer_fetch_system:
        Serving one proxy-to-proxy fetch (the remote-hit service cost
        the paper identifies as SC-ICP's main CPU increase).
    """

    http_user: float = 0.004
    http_system: float = 0.006
    byte_system: float = 0.1e-6
    icp_user: float = 0.00012
    icp_system: float = 0.0001
    md5_user: float = 0.00005
    dirupdate_user: float = 0.0003
    dirupdate_system: float = 0.0003
    peer_fetch_user: float = 0.002
    peer_fetch_system: float = 0.003

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ConfigurationError(f"cost {name} must be >= 0")


@dataclass
class CpuAccount:
    """Accumulated user/system CPU seconds for one proxy."""

    user: float = 0.0
    system: float = 0.0

    @property
    def total(self) -> float:
        """User plus system seconds."""
        return self.user + self.system

    def charge(self, user: float = 0.0, system: float = 0.0) -> float:
        """Record an activity; returns its total service time."""
        self.user += user
        self.system += system
        return user + system
