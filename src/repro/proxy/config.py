"""Configuration records for the proxy prototype."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.placement import CooperationPolicy
from repro.summaries import (
    SummaryConfig,
    ThresholdUpdatePolicy,
    UpdatePolicy,
)


class ProxyMode(str, enum.Enum):
    """Cooperation mode of a proxy (the three columns of Table II)."""

    #: No cooperation: misses go straight to the origin server.
    NO_ICP = "no-icp"
    #: Classic ICP: multicast a query to every peer on every miss.
    ICP = "icp"
    #: Summary cache enhanced ICP: query only peers whose Bloom summary
    #: predicts a hit; disseminate DIRUPDATE messages.
    SC_ICP = "sc-icp"


@dataclass(frozen=True)
class PeerAddress:
    """How to reach one neighbour proxy."""

    name: str
    host: str
    http_port: int
    icp_port: int

    @property
    def icp_addr(self) -> Tuple[str, int]:
        """The UDP ``(host, port)`` this peer's ICP endpoint listens on."""
        return (self.host, self.icp_port)


@dataclass(frozen=True)
class ProxyConfig:
    """Parameters of one prototype proxy instance.

    ``icp_timeout`` bounds how long a miss waits for peer replies; the
    classic Squid default is 2 s, but on loopback a few hundred ms is
    plenty and keeps experiment wall-clock low.
    """

    name: str = "proxy"
    host: str = "127.0.0.1"
    http_port: int = 0  # 0 = let the OS pick
    icp_port: int = 0
    mode: ProxyMode = ProxyMode.SC_ICP
    cache_capacity: int = 16 * 1024 * 1024
    max_object_size: Optional[int] = 250 * 1024
    summary: SummaryConfig = field(default_factory=SummaryConfig)
    #: Average document size used to size the Bloom filter.
    expected_doc_size: int = 8 * 1024
    #: Ship a summary update when this fraction of cached documents is
    #: new (the paper's recommended 1%-10% range).  0 means no delay:
    #: an update ships after every insert (the live line of Fig. 2).
    update_threshold: float = 0.01
    #: Full update policy; overrides ``update_threshold`` when set
    #: (interval and packet-fill policies have no threshold shorthand).
    update_policy: Optional[UpdatePolicy] = None
    #: Seconds to wait for ICP replies before falling back to the origin.
    icp_timeout: float = 0.5
    #: UDP payload budget for DIRUPDATE batching.
    mtu: int = 1400
    #: How summary updates are shipped: ``"delta"`` sends
    #: ICP_OP_DIRUPDATE bit-flip batches (the paper's SC-ICP design);
    #: ``"digest"`` sends the whole bit array in ICP_OP_DIGEST chunks
    #: (the Squid cache-digest variant, "more economical" when the
    #: delay threshold is large).
    update_encoding: str = "delta"
    #: Rebuild the filter at double the bits once the cache holds this
    #: many times the expected document count ("proxies can lower or
    #: raise it depending on their memory and network traffic
    #: concerns").  0 disables auto-resizing.
    resize_threshold: float = 2.0
    #: Seconds a keep-alive client connection may sit idle between
    #: requests before the proxy closes it.  0 disables the timeout.
    idle_timeout: float = 30.0
    #: Requests served on one client connection before the proxy forces
    #: ``Connection: close`` (bounded pipelining).  0 means unlimited.
    max_requests_per_connection: int = 0
    #: In-flight write-buffer ceiling per connection: the streaming
    #: body path awaits ``drain()`` once the transport buffers more
    #: than this many unsent bytes.
    max_inflight_bytes: int = 256 * 1024
    #: Chunk size for streamed body reads/writes.
    stream_chunk_bytes: int = 64 * 1024
    #: Idle pooled connections kept per (host, port) for origin and
    #: peer fetches.  0 disables pooling (a fresh connection per fetch,
    #: the pre-keep-alive behaviour).
    pool_size: int = 8
    #: Seconds an idle pooled connection stays eligible for reuse.
    pool_idle_timeout: float = 10.0
    #: Spans retained in the per-proxy trace ring served at ``/trace``
    #: (oldest spans drop first; drops are counted by the
    #: ``trace_ring_dropped_total`` metric).
    trace_capacity: int = 2048
    #: Whether request-scoped tracing is on.  When off the proxy uses
    #: the shared null span ring: no spans are retained and no trace
    #: context is put on any wire (HTTP header or ICP Options field).
    trace_enabled: bool = True
    #: Cooperation policy of the cluster this proxy belongs to:
    #: ``"summary"`` (summary-directed discovery, remote hits cached
    #: locally), ``"single-copy"`` (discovery, remote hits left at the
    #: serving peer) or ``"carp"`` (misses forward to the URL's
    #: deterministic placement owner; no discovery).  Accepts the
    #: string or the enum.
    cooperation: CooperationPolicy = CooperationPolicy.SUMMARY
    #: Replica-set size of the placement ring (``carp`` cooperation):
    #: each URL lives at its owner plus ``replication - 1`` failover
    #: replicas.
    replication: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cooperation", CooperationPolicy.parse(self.cooperation)
        )
        if self.replication < 1:
            raise ConfigurationError("replication must be >= 1")
        if self.cache_capacity < 1:
            raise ConfigurationError("cache_capacity must be >= 1")
        if not 0.0 <= self.update_threshold <= 1.0:
            raise ConfigurationError(
                "update_threshold must be in [0, 1]"
            )
        if self.icp_timeout <= 0:
            raise ConfigurationError("icp_timeout must be > 0")
        if self.resize_threshold < 0:
            raise ConfigurationError("resize_threshold must be >= 0")
        if self.update_encoding not in ("delta", "digest"):
            raise ConfigurationError(
                f"update_encoding must be 'delta' or 'digest', "
                f"got {self.update_encoding!r}"
            )
        if self.idle_timeout < 0:
            raise ConfigurationError("idle_timeout must be >= 0")
        if self.max_requests_per_connection < 0:
            raise ConfigurationError(
                "max_requests_per_connection must be >= 0"
            )
        if self.max_inflight_bytes < 1:
            raise ConfigurationError("max_inflight_bytes must be >= 1")
        if self.stream_chunk_bytes < 1:
            raise ConfigurationError("stream_chunk_bytes must be >= 1")
        if self.pool_size < 0:
            raise ConfigurationError("pool_size must be >= 0")
        if self.pool_idle_timeout < 0:
            raise ConfigurationError("pool_idle_timeout must be >= 0")
        if self.trace_capacity < 1:
            raise ConfigurationError("trace_capacity must be >= 1")
        if self.update_encoding == "digest" and self.summary.kind != "bloom":
            raise ConfigurationError(
                "update_encoding='digest' ships whole bit arrays "
                "(ICP_OP_DIGEST) and requires a Bloom summary; "
                f"summary kind is {self.summary.kind!r}"
            )

    def effective_update_policy(self) -> UpdatePolicy:
        """The policy governing update shipping for this proxy."""
        if self.update_policy is not None:
            return self.update_policy
        return ThresholdUpdatePolicy(self.update_threshold)
