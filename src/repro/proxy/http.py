"""The minimal HTTP/1.0 subset the prototype speaks.

One GET per connection, ``Content-Length``-framed bodies, a handful of
extension headers:

- ``X-Size`` on requests -- the trace-replay drivers carry the desired
  body size in the request (the paper's replay experiments do exactly
  this: "each request's URL carries the size of the request in the
  trace file, and the server replies with the specified number of
  bytes");
- ``X-Only-If-Cached`` on proxy-to-proxy fetches -- the serving peer
  must answer from cache or return 504, never recurse into its own
  cooperation logic;
- ``X-Cache`` on responses -- ``HIT``, ``REMOTE-HIT`` or ``MISS``, for
  the drivers' accounting.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.errors import ProtocolError

#: Upper bound on a request/response head, to bound memory per connection.
MAX_HEAD_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    502: "Bad Gateway",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """A parsed GET request."""

    url: str
    headers: Dict[str, str] = field(default_factory=dict)

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


@dataclass
class HttpResponse:
    """A parsed response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


async def _read_head(reader: asyncio.StreamReader) -> bytes:
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError("HTTP head exceeds size limit")
    return head


def _parse_headers(lines: Iterable[str]) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def read_request(reader: asyncio.StreamReader) -> HttpRequest:
    """Read and parse one GET request."""
    try:
        head = await _read_head(reader)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("HTTP head exceeds stream limit") from exc
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or parts[0] != "GET":
        raise ProtocolError(f"unsupported request line {lines[0]!r}")
    return HttpRequest(url=parts[1], headers=_parse_headers(lines[1:]))


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Read and parse one Content-Length-framed response."""
    try:
        head = await _read_head(reader)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-response") from exc
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError(f"malformed status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise ProtocolError(f"malformed status code {parts[1]!r}") from exc
    headers = _parse_headers(lines[1:])
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ProtocolError(
            f"malformed Content-Length {length_text!r}"
        ) from exc
    body = await reader.readexactly(length) if length else b""
    return HttpResponse(status=status, headers=headers, body=body)


def write_request(
    writer: asyncio.StreamWriter,
    url: str,
    headers: Optional[Dict[str, str]] = None,
) -> None:
    """Serialize one GET request onto *writer* (caller drains)."""
    head = [f"GET {url} HTTP/1.0"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    head.append("\r\n")
    writer.write("\r\n".join(head).encode("latin-1"))


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes = b"",
    headers: Optional[Dict[str, str]] = None,
) -> None:
    """Serialize one response onto *writer* (caller drains)."""
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.0 {status} {reason}", f"Content-Length: {len(body)}"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    head.append("\r\n")
    writer.write("\r\n".join(head).encode("latin-1") + body)


def synth_body(url: str, size: int) -> bytes:
    """Deterministic body bytes for *url* of exactly *size* bytes.

    Origin servers in the experiments serve synthetic content; making it
    a pure function of the URL lets tests verify end-to-end integrity of
    proxy-cached copies.
    """
    if size <= 0:
        return b""
    seed = (url.encode("utf-8") + b"|") * (size // (len(url) + 1) + 1)
    return seed[:size]
