"""The HTTP/1.1-subset data plane the prototype speaks.

The proxies, the origin server, and the client drivers share this
module.  It implements the keep-alive streaming subset the benchmark
data plane needs (GETs only, ``Content-Length``-framed bodies):

- **Persistent connections.**  Requests and responses carry explicit
  ``Connection`` headers; a connection serves a request loop until one
  side sends ``Connection: close``, the idle timeout fires, or the
  stream ends.  Pipelined requests are answered strictly in order --
  the reader consumes one head at a time, so a client may write several
  requests back to back and the kernel/stream buffers bound the
  read-ahead.
- **Streamed, bounded body I/O.**  Bodies are written as
  :class:`memoryview` slices over the cached ``bytes`` object
  (:func:`stream_body`), draining only when the transport's write
  buffer exceeds the caller's in-flight ceiling; bodies are read in
  bounded chunks into a preallocated buffer (:func:`read_body`), never
  through an unbounded ``reader.read()``/``readexactly()`` (lint rule
  SC001 enforces this for the whole proxy package).
- **Strict framing validation.**  Negative, non-numeric, or oversized
  ``Content-Length`` values and oversized heads raise
  :class:`~repro.errors.ProtocolError`, which the servers answer with
  a clean ``400`` -- never a traceback.

Extension headers (unchanged from the HTTP/1.0 prototype):

- ``X-Size`` on requests -- the trace-replay drivers carry the desired
  body size in the request (the paper's replay experiments do exactly
  this: "each request's URL carries the size of the request in the
  trace file, and the server replies with the specified number of
  bytes");
- ``X-Only-If-Cached`` on proxy-to-proxy fetches -- the serving peer
  must answer from cache or return 504, never recurse into its own
  cooperation logic;
- ``X-Cache`` on responses -- ``HIT``, ``REMOTE-HIT`` or ``MISS``, for
  the drivers' accounting;
- ``X-SC-Trace`` on requests and responses -- the distributed-tracing
  context (``<trace:08x>-<span:08x>``, see :mod:`repro.obs.spans`)
  propagated client -> proxy -> peer/origin; proxies echo it on
  responses so callers learn the trace their request joined.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.errors import ProtocolError

#: Upper bound on a request/response head, to bound memory per connection.
MAX_HEAD_BYTES = 16 * 1024

#: Upper bound on a ``Content-Length`` a proxy will accept from a peer
#: or origin (well above ``max_object_size``; a hard sanity ceiling so a
#: corrupt header cannot make ``read_body`` allocate gigabytes).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Default chunk for streamed body reads and writes.
DEFAULT_CHUNK_BYTES = 64 * 1024

#: Default in-flight write ceiling before ``stream_body`` awaits
#: ``drain()`` (mirrors ``ProxyConfig.max_inflight_bytes``).
DEFAULT_MAX_INFLIGHT = 256 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    502: "Bad Gateway",
    504: "Gateway Timeout",
}


def _wants_keep_alive(version: str, headers: Dict[str, str]) -> bool:
    """HTTP/1.1 keep-alive semantics: persistent unless ``close``;
    HTTP/1.0 only with an explicit ``Connection: keep-alive``."""
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        return connection != "close"
    return connection == "keep-alive"


@dataclass
class HttpRequest:
    """A parsed GET request."""

    url: str
    headers: Dict[str, str] = field(default_factory=dict)
    version: str = "HTTP/1.1"

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked for a persistent connection."""
        return _wants_keep_alive(self.version, self.headers)


@dataclass
class HttpResponse:
    """A parsed response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        """Whether the server will keep the connection open."""
        return _wants_keep_alive(self.version, self.headers)


async def _read_head(reader: asyncio.StreamReader) -> bytes:
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("HTTP head exceeds stream limit") from exc
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError("HTTP head exceeds size limit")
    return head


def _parse_headers(lines: Iterable[str]) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


def parse_content_length(
    headers: Dict[str, str], limit: int = MAX_BODY_BYTES
) -> int:
    """Validated body length from *headers* (0 when absent).

    Rejects non-numeric, negative, and absurdly large values with a
    :class:`ProtocolError` so servers answer ``400`` instead of letting
    ``int()``/``readexactly`` raise through the connection handler.
    """
    text = headers.get("content-length", "0")
    try:
        length = int(text)
    except ValueError as exc:
        raise ProtocolError(f"malformed Content-Length {text!r}") from exc
    if length < 0:
        raise ProtocolError(f"negative Content-Length {text!r}")
    if length > limit:
        raise ProtocolError(
            f"Content-Length {length} exceeds limit {limit}"
        )
    return length


async def read_body(
    reader: asyncio.StreamReader,
    length: int,
    chunk_size: int = DEFAULT_CHUNK_BYTES,
) -> bytes:
    """Read exactly *length* body bytes in bounded chunks.

    Fills a preallocated buffer through a memoryview so no chunk is
    copied twice, and never asks the reader for more than *chunk_size*
    bytes at a time.
    """
    if length <= 0:
        return b""
    buf = bytearray(length)
    view = memoryview(buf)
    offset = 0
    while offset < length:
        chunk = await reader.read(min(chunk_size, length - offset))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-body ({offset}/{length} bytes)"
            )
        view[offset : offset + len(chunk)] = chunk
        offset += len(chunk)
    return bytes(buf)


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Read and parse one GET request.

    Returns ``None`` on a clean end of stream before any request bytes
    (the peer finished its keep-alive conversation); raises
    :class:`ProtocolError` on truncation mid-request or malformed data.
    """
    try:
        head = await _read_head(reader)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from exc
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or parts[0] != "GET":
        raise ProtocolError(f"unsupported request line {lines[0]!r}")
    return HttpRequest(
        url=parts[1], headers=_parse_headers(lines[1:]), version=parts[2]
    )


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Read and parse one Content-Length-framed response."""
    try:
        head = await _read_head(reader)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-response") from exc
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError(f"malformed status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise ProtocolError(f"malformed status code {parts[1]!r}") from exc
    headers = _parse_headers(lines[1:])
    length = parse_content_length(headers)
    body = await read_body(reader, length)
    return HttpResponse(
        status=status, headers=headers, body=body, version=parts[0]
    )


def write_request(
    writer: asyncio.StreamWriter,
    url: str,
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = False,
) -> None:
    """Serialize one GET request onto *writer* (caller drains).

    Always emits an explicit ``Connection`` header so HTTP/1.0-era
    readers and the connection pool agree on the connection's fate.
    """
    head = [
        f"GET {url} HTTP/1.1",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    head.append("\r\n")
    writer.write("\r\n".join(head).encode("latin-1"))


def response_head(
    status: int,
    body_length: int,
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = False,
) -> bytes:
    """Serialized head for a *status* response framing *body_length*."""
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Length: {body_length}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    head.append("\r\n")
    return "\r\n".join(head).encode("latin-1")


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes = b"",
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = False,
) -> None:
    """Serialize one whole response onto *writer* (caller drains).

    For large bodies prefer :func:`stream_body` after writing
    :func:`response_head`, which bounds the write buffer.
    """
    writer.write(response_head(status, len(body), headers, keep_alive) + body)


async def stream_body(
    writer: asyncio.StreamWriter,
    body: bytes,
    chunk_size: int = DEFAULT_CHUNK_BYTES,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
) -> int:
    """Stream *body* as zero-copy memoryview slices with backpressure.

    Writes *chunk_size* slices of the cached ``bytes`` object (no
    copies on the Python side) and awaits ``drain()`` whenever the
    transport reports more than *max_inflight* unsent bytes, so one
    slow client cannot balloon the proxy's write buffers.  Returns the
    number of backpressure waits taken (the
    ``proxy_backpressure_waits_total`` increment).
    """
    waits = 0
    view = memoryview(body)
    transport = writer.transport
    for offset in range(0, len(view), chunk_size):
        writer.write(view[offset : offset + chunk_size])
        if transport.get_write_buffer_size() > max_inflight:
            waits += 1
            await writer.drain()
    return waits


def synth_body(url: str, size: int) -> bytes:
    """Deterministic body bytes for *url* of exactly *size* bytes.

    Origin servers in the experiments serve synthetic content; making it
    a pure function of the URL lets tests verify end-to-end integrity of
    proxy-cached copies.
    """
    if size <= 0:
        return b""
    seed = (url.encode("utf-8") + b"|") * (size // (len(url) + 1) + 1)
    return seed[:size]
