"""The origin HTTP server of the benchmark experiments.

The paper's benchmark servers delay every reply: "the process waits for
one second before sending the reply to simulate the network latency."
:class:`OriginServer` reproduces that with a configurable delay, and
serves synthetic bodies whose size comes from the request's ``X-Size``
header (trace replay) or from a deterministic URL hash (benchmark mode).
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ProtocolError
from repro.obs.spans import TRACE_HEADER
from repro.proxy.http import (
    read_request,
    response_head,
    stream_body,
    synth_body,
    write_response,
)


@dataclass
class OriginStats:
    """Counters an origin server accumulates."""

    requests: int = 0
    bytes_served: int = 0
    errors: int = 0


class OriginServer:
    """A latency-injecting origin server for proxy experiments.

    Parameters
    ----------
    host / port:
        Bind address; port 0 lets the OS choose (read :attr:`port` after
        :meth:`start`).
    delay:
        Seconds to sleep before replying (the paper uses 1.0; tests use
        much smaller values).
    default_size:
        Body size when the request carries no ``X-Size`` header; if
        ``None``, a deterministic pseudo-size in [256, 16384) derived
        from the URL is used.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        delay: float = 0.0,
        default_size: Optional[int] = None,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.delay = delay
        self.default_size = default_size
        self.stats = OriginStats()
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise ProtocolError("origin server is not running")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` of the running server."""
        return (self.host, self.port)

    async def start(self) -> None:
        """Bind and start serving."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def stop(self) -> None:
        """Stop serving and release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _body_size(self, url: str, header_size: str) -> int:
        if header_size:
            try:
                return max(0, int(header_size))
            except ValueError:
                return 0
        if self.default_size is not None:
            return self.default_size
        digest = hashlib.md5(url.encode("utf-8")).digest()
        return 256 + int.from_bytes(digest[:2], "big") % (16384 - 256)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve a keep-alive request loop on one connection.

        Proxies pool their origin connections, so the origin honors
        keep-alive and streams bodies with backpressure just like the
        proxies' client-facing loop.
        """
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError:
                    self.stats.errors += 1
                    write_response(writer, 400, keep_alive=False)
                    await writer.drain()
                    break
                if request is None:
                    break  # client done with the connection
                if self.delay > 0:
                    await asyncio.sleep(self.delay)
                size = self._body_size(request.url, request.header("x-size"))
                body = synth_body(request.url, size)
                self.stats.requests += 1
                self.stats.bytes_served += len(body)
                keep_alive = request.keep_alive
                headers = {"X-Origin": "1"}
                trace = request.header(TRACE_HEADER)
                if trace:
                    # Echo the proxy's trace context so the fetch span
                    # can be matched to this served request.
                    headers[TRACE_HEADER] = trace
                writer.write(
                    response_head(200, len(body), headers, keep_alive)
                )
                await stream_body(writer, body)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
