"""One-call construction of a prototype experiment cluster.

A cluster is one origin server plus N proxies (all on localhost,
OS-assigned ports) wired as full-mesh neighbours, plus client drivers.
This is the harness behind the prototype benchmarks and the
``proxy_cluster`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # circular at runtime: obs.cluster drives the client
    from repro.obs.cluster import ClusterSnapshot

from repro.errors import ConfigurationError
from repro.placement import CooperationPolicy
from repro.proxy.client import ClientDriver, ReplayReport, replay_concurrently
from repro.proxy.config import ProxyConfig, ProxyMode
from repro.proxy.origin import OriginServer
from repro.proxy.server import ProxyStats, SummaryCacheProxy
from repro.summaries import SummaryConfig, UpdatePolicy
from repro.traces.model import Request, Trace
from repro.traces.partition import group_of


@dataclass
class ClusterResult:
    """Merged outcome of one cluster replay."""

    client_report: ReplayReport
    proxy_stats: List[ProxyStats]
    origin_requests: int
    #: Response-body bytes the origin served during the replay -- the
    #: cluster-level "bytes from origin" the placement benchmark ranks
    #: cooperation policies by.
    origin_bytes: int = 0

    @property
    def total_hit_ratio(self) -> float:
        """Local + remote hits over all client requests."""
        requests = sum(s.http_requests for s in self.proxy_stats)
        hits = sum(s.local_hits + s.remote_hits for s in self.proxy_stats)
        return hits / requests if requests else 0.0

    @property
    def udp_total(self) -> int:
        """UDP datagrams sent by all proxies (the paper's headline
        ICP-overhead number)."""
        return sum(s.udp_sent for s in self.proxy_stats)


class ProxyCluster:
    """An origin + N cooperating proxies on localhost.

    Use as an async context manager::

        async with ProxyCluster(num_proxies=4, mode=ProxyMode.SC_ICP) as cluster:
            result = await cluster.replay(trace)
    """

    def __init__(
        self,
        num_proxies: int = 4,
        mode: ProxyMode = ProxyMode.SC_ICP,
        cache_capacity: int = 4 * 1024 * 1024,
        origin_delay: float = 0.0,
        base_config: Optional[ProxyConfig] = None,
        summary: Optional[SummaryConfig] = None,
        update_policy: Optional[UpdatePolicy] = None,
        cooperation: Optional[CooperationPolicy] = None,
        replication: Optional[int] = None,
    ) -> None:
        if num_proxies < 1:
            raise ConfigurationError("num_proxies must be >= 1")
        self.num_proxies = num_proxies
        self.mode = mode
        template = base_config or ProxyConfig()
        overrides: dict = {}
        if summary is not None:
            overrides["summary"] = summary
        if update_policy is not None:
            overrides["update_policy"] = update_policy
        if cooperation is not None:
            overrides["cooperation"] = CooperationPolicy.parse(cooperation)
        if replication is not None:
            overrides["replication"] = replication
        self._template = replace(
            template,
            mode=mode,
            cache_capacity=cache_capacity,
            http_port=0,
            icp_port=0,
            **overrides,
        )
        self._configs = [
            replace(self._template, name=f"proxy{i}")
            for i in range(num_proxies)
        ]
        self.origin = OriginServer(delay=origin_delay)
        self.proxies: List[SummaryCacheProxy] = []

    async def __aenter__(self) -> "ProxyCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def start(self) -> None:
        """Start the origin, the proxies, and wire the full mesh."""
        await self.origin.start()
        self.proxies = [
            SummaryCacheProxy(cfg, self.origin.address)
            for cfg in self._configs
        ]
        for proxy in self.proxies:
            await proxy.start()
        addresses = [proxy.address() for proxy in self.proxies]
        for i, proxy in enumerate(self.proxies):
            proxy.set_peers(
                [addr for j, addr in enumerate(addresses) if j != i]
            )

    async def stop(self) -> None:
        """Stop every proxy and the origin."""
        for proxy in self.proxies:
            await proxy.stop()
        self.proxies = []
        await self.origin.stop()

    async def add_proxy(self) -> SummaryCacheProxy:
        """Start one more proxy and join it to the running cluster.

        The newcomer learns the full mesh via :meth:`~SummaryCacheProxy.
        set_peers`; every existing proxy admits it through
        :meth:`~SummaryCacheProxy.add_peer`, which rebalances each
        placement view and invalidates the entries the newcomer now
        owns.
        """
        config = replace(self._template, name=f"proxy{len(self.proxies)}")
        proxy = SummaryCacheProxy(config, self.origin.address)
        await proxy.start()
        address = proxy.address()
        proxy.set_peers([peer.address() for peer in self.proxies])
        for existing in self.proxies:
            existing.add_peer(address)
        self.proxies.append(proxy)
        self._configs.append(config)
        self.num_proxies = len(self.proxies)
        return proxy

    async def remove_proxy(self, index: int) -> None:
        """Stop the proxy at *index* and retire it from every peer view."""
        departed = self.proxies.pop(index)
        self._configs.pop(index)
        self.num_proxies = len(self.proxies)
        await departed.stop()
        for survivor in self.proxies:
            survivor.remove_peer(departed.config.name)

    def driver_for(self, proxy_index: int) -> ClientDriver:
        """A client driver bound to proxy *proxy_index*."""
        proxy = self.proxies[proxy_index]
        return ClientDriver(proxy.config.host, proxy.http_port)

    def targets(self) -> List[Tuple[str, int]]:
        """``(host, http_port)`` scrape targets for the aggregator."""
        return [
            (proxy.config.host, proxy.http_port) for proxy in self.proxies
        ]

    async def snapshot(self) -> "ClusterSnapshot":
        """Scrape every proxy and fuse the result
        (:func:`repro.obs.cluster.scrape_cluster`)."""
        from repro.obs.cluster import scrape_cluster

        return await scrape_cluster(self.targets())

    async def replay(
        self,
        trace: Trace,
        assignment: str = "client-bound",
        clients_per_proxy: int = 4,
    ) -> ClusterResult:
        """Replay *trace* through the cluster.

        ``assignment`` selects the paper's two replay modes:

        - ``"client-bound"`` (experiment 3): a trace client's requests
          all go to the proxy its id maps to, preserving the
          client/proxy binding but not cross-client order;
        - ``"round-robin"`` (experiment 4): requests are dealt to
          proxies in trace order, preserving global order but not the
          binding.

        Each proxy's share is further dealt to ``clients_per_proxy``
        serial drivers that run concurrently (the benchmark's
        no-think-time client processes).
        """
        per_proxy: List[List[Request]] = [[] for _ in range(self.num_proxies)]
        if assignment == "client-bound":
            for req in trace:
                per_proxy[group_of(req.client_id, self.num_proxies)].append(
                    req
                )
        elif assignment == "round-robin":
            for i, req in enumerate(trace):
                per_proxy[i % self.num_proxies].append(req)
        else:
            raise ConfigurationError(
                f"unknown assignment {assignment!r}; expected "
                "'client-bound' or 'round-robin'"
            )

        assignments = []
        for proxy_index, requests in enumerate(per_proxy):
            if not requests:
                continue
            # Deal the proxy's stream to serial drivers round-robin so
            # each driver preserves its own request order.
            shares: List[List[Request]] = [
                [] for _ in range(clients_per_proxy)
            ]
            for i, req in enumerate(requests):
                shares[i % clients_per_proxy].append(req)
            for share in shares:
                if share:
                    assignments.append((self.driver_for(proxy_index), share))

        report = await replay_concurrently(assignments)
        return ClusterResult(
            client_report=report,
            proxy_stats=[proxy.stats for proxy in self.proxies],
            origin_requests=self.origin.stats.requests,
            origin_bytes=self.origin.stats.bytes_served,
        )
