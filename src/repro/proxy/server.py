"""The summary-cache proxy prototype.

Each proxy runs two endpoints on localhost:

- a **TCP HTTP front end** serving clients (and peer proxies fetching
  remote hits), backed by an in-memory :class:`~repro.cache.WebCache`
  of document bodies;
- a **UDP ICP endpoint** answering ``ICP_OP_QUERY`` and absorbing
  ``ICP_OP_DIRUPDATE`` messages from peers.

Cooperation modes (:class:`~repro.proxy.config.ProxyMode`):

``no-icp``
    misses go straight to the origin server.
``icp``
    every miss multicasts an ``ICP_OP_QUERY`` to all peers and waits for
    the first HIT (or all MISSes / timeout) -- the overhead pattern
    measured in Section IV.
``sc-icp``
    the paper's protocol: the proxy keeps a local summary of its own
    directory and a remote-summary copy per peer (initialized by the
    first DIRUPDATE received, per Section VI-B), probes the copies on a
    miss, and queries only promising peers.  When the update policy
    fires, the pending delta is drained into MTU-sized,
    representation-tagged DIRUPDATE messages and sent to every peer.
    With ``update_encoding="digest"`` the whole bit array is shipped in
    ICP_OP_DIGEST chunks instead (the Squid cache-digest variant,
    Bloom summaries only).

The summary representation -- Bloom filter, exact MD5 directory, or
server-name list -- is selected purely by ``ProxyConfig.summary``; all
summary state flows through :mod:`repro.summaries`, and the wire
encode/decode dispatch lives in :mod:`repro.summaries.codec`.
"""

from __future__ import annotations

import asyncio
import json
import logging
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple, Union, cast

from repro.cache import WebCache
from repro.core.bfmath import false_positive_probability_exact
from repro.core.hashing import md5_digest
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    render_json,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    NULL_SPAN,
    NULL_SPAN_RING,
    TRACE_HEADER,
    Span,
    SpanRing,
    TraceContext,
    format_id,
)
from repro.errors import ProtocolError, ProxyError, SummaryMismatchError
from repro.protocol.update import DigestAssembler
from repro.protocol.wire import (
    DigestChunk,
    DirUpdate,
    IcpHit,
    IcpMiss,
    IcpQuery,
    SetDirUpdate,
    decode_message,
)
from repro.placement import Placement
from repro.proxy.config import PeerAddress, ProxyConfig, ProxyMode
from repro.summaries import LocalSummary, RemoteSummary, SummaryNode
from repro.summaries import codec
from repro.summaries.bloom import BloomRemote, BloomSummary
from repro.proxy.http import (
    HttpRequest,
    HttpResponse,
    read_request,
    read_response,
    response_head,
    stream_body,
    write_request,
    write_response,
)
from repro.proxy.pool import ConnectionPool, PooledConnection
from repro.sanitizer import (
    GuardedConnectionPool,
    GuardedPlacement,
    GuardedSummaryNode,
    Sanitizer,
    default_sanitizer,
)

logger = logging.getLogger(__name__)

#: Request header marking a placement-routed peer fetch: the value is
#: the requesting proxy's name.  The owner serves from cache or fetches
#: the origin itself -- it never re-forwards a marked request, so a
#: transient membership-view disagreement cannot loop a request around
#: the ring.
FORWARD_HEADER = "X-SC-Forward"

#: Response header naming the proxy that answered a forwarded fetch.
OWNER_HEADER = "X-SC-Owner"

#: Histogram bounds for request-phase timings (0.1 ms .. 10 s; ICP
#: timeouts sit around 2 s and origin delays around 1 s).
_PHASE_BUCKETS = (
    1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0,
)


class _ProxyMetrics:
    """Registry instruments mirroring (and extending) :class:`ProxyStats`.

    Counter names follow Prometheus conventions (``*_total`` suffixes);
    the counters matching :class:`ProxyStats` fields increment at the
    exact same sites, so ``GET /metrics`` and ``GET /__stats__`` always
    agree.  Scrape-time gauges (cache occupancy, summary fill) read the
    live structures via callbacks and cost nothing between scrapes.
    """

    __slots__ = (
        "http_requests", "local_hits", "remote_hits",
        "remote_fetch_failures", "false_hits", "origin_fetches",
        "bytes_served", "icp_queries_sent", "icp_queries_received",
        "icp_replies_sent", "icp_replies_received", "icp_timeouts",
        "dirupdates_sent", "dirupdates_received", "dirupdate_rejects",
        "summary_resizes", "udp_sent", "udp_received", "peer_served",
        "phase_seconds", "connections_open", "connections_reused",
        "backpressure_waits", "peer_forwards", "peer_forward_failures",
        "rebalances", "entries_invalidated",
    )

    def __init__(self, registry: MetricsRegistry, representation: str) -> None:
        c = registry.counter
        # Summary-traffic counters carry the representation so a scrape
        # of a mixed cluster shows which wire encoding each proxy runs.
        rep = {"representation": representation}
        self.http_requests = c(
            "proxy_http_requests_total", "client HTTP requests"
        )
        self.local_hits = c(
            "proxy_local_hits_total", "requests served from the local cache"
        )
        self.remote_hits = c(
            "proxy_remote_hits_total", "requests served from a peer cache"
        )
        self.remote_fetch_failures = c(
            "proxy_remote_fetch_failures_total",
            "peer fetches that no longer held the document",
        )
        self.false_hits = c(
            "proxy_icp_false_hits_total",
            "query rounds where no queried peer held the document",
        )
        self.origin_fetches = c(
            "proxy_origin_fetches_total", "documents fetched from the origin"
        )
        self.bytes_served = c(
            "proxy_bytes_served_total", "response body bytes to clients"
        )
        self.icp_queries_sent = c(
            "proxy_icp_queries_sent_total", "ICP_OP_QUERY datagrams sent"
        )
        self.icp_queries_received = c(
            "proxy_icp_queries_received_total",
            "ICP_OP_QUERY datagrams received",
        )
        self.icp_replies_sent = c(
            "proxy_icp_replies_sent_total", "ICP HIT/MISS replies sent"
        )
        self.icp_replies_received = c(
            "proxy_icp_replies_received_total", "ICP HIT/MISS replies received"
        )
        self.icp_timeouts = c(
            "proxy_icp_timeouts_total", "query rounds ended by timeout"
        )
        self.dirupdates_sent = c(
            "proxy_dirupdates_sent_total",
            "DIRUPDATE/DIGEST datagrams sent to peers",
            labels=rep,
        )
        self.dirupdates_received = c(
            "proxy_dirupdates_received_total",
            "DIRUPDATE/DIGEST datagrams received from peers",
            labels=rep,
        )
        self.dirupdate_rejects = c(
            "proxy_dirupdate_rejects_total",
            "DIRUPDATEs rejected for representation/geometry mismatch",
            labels=rep,
        )
        self.summary_resizes = c(
            "proxy_summary_resizes_total", "summary rebuilds",
            labels=rep,
        )
        self.udp_sent = c("proxy_udp_sent_total", "UDP datagrams sent")
        self.udp_received = c(
            "proxy_udp_received_total", "UDP datagrams received"
        )
        self.peer_served = c(
            "proxy_peer_served_total", "proxy-to-proxy fetches served"
        )
        # Placement family (carp cooperation: owner routing and
        # membership rebalancing).
        self.peer_forwards = c(
            "proxy_peer_forwards_total",
            "misses forwarded to the object's placement owner",
        )
        self.peer_forward_failures = c(
            "proxy_peer_forward_failures_total",
            "owner forwards that failed and fell over to the next "
            "replica or the origin",
        )
        self.rebalances = c(
            "placement_rebalances_total",
            "membership changes applied to the placement ring",
        )
        self.entries_invalidated = c(
            "placement_entries_invalidated_total",
            "cached entries invalidated because a membership change "
            "moved their placement elsewhere",
        )
        # Connection-lifecycle family (keep-alive data plane).
        self.connections_open = registry.gauge(
            "proxy_connections_open", "client connections currently open"
        )
        self.connections_reused = c(
            "proxy_connections_reused_total",
            "origin/peer fetches served over a pooled connection",
        )
        self.backpressure_waits = c(
            "proxy_backpressure_waits_total",
            "drain() waits taken because a client write buffer exceeded "
            "the in-flight ceiling",
        )
        self.phase_seconds = {
            phase: registry.histogram(
                "proxy_request_phase_seconds",
                "wall time of one request phase",
                labels={"phase": phase},
                buckets=_PHASE_BUCKETS,
            )
            for phase in ("total", "icp_round", "peer_fetch", "origin_fetch")
        }


@dataclass
class ProxyStats:
    """Counters mirroring what the paper measures per proxy.

    UDP counters correspond to the paper's ``netstat`` UDP datagram
    counts; ``false_query_rounds`` are SC-ICP query rounds in which no
    queried peer actually held the document (false hits).
    """

    http_requests: int = 0
    local_hits: int = 0
    remote_hits: int = 0
    remote_fetch_failures: int = 0
    false_query_rounds: int = 0
    origin_fetches: int = 0
    bytes_served: int = 0
    icp_queries_sent: int = 0
    icp_queries_received: int = 0
    icp_replies_sent: int = 0
    icp_replies_received: int = 0
    dirupdates_sent: int = 0
    dirupdates_received: int = 0
    dirupdate_rejects: int = 0
    summary_resizes: int = 0
    udp_sent: int = 0
    udp_received: int = 0
    peer_served_requests: int = 0
    peer_forwards: int = 0
    peer_forward_failures: int = 0
    placement_rebalances: int = 0
    placement_entries_invalidated: int = 0

    @property
    def hit_ratio(self) -> float:
        """Local + remote hits over client requests."""
        if not self.http_requests:
            return 0.0
        return (self.local_hits + self.remote_hits) / self.http_requests


class _PeerState:
    """What a proxy knows about one neighbour."""

    __slots__ = ("address", "summary", "alive", "assembler")

    def __init__(self, address: PeerAddress) -> None:
        self.address = address
        #: Remote summary copy (representation-tagged by the wire);
        #: ``None`` until the first DIRUPDATE arrives ("The structure is
        #: initialized when the first summary update message is received
        #: from the neighbor").
        self.summary: Optional[RemoteSummary] = None
        self.alive = True
        #: Reassembles whole-filter transfers in digest mode.
        self.assembler = DigestAssembler()


class _IcpProtocol(asyncio.DatagramProtocol):
    """Datagram glue delivering packets to the owning proxy."""

    def __init__(self, proxy: "SummaryCacheProxy") -> None:
        self._proxy = proxy
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = cast(asyncio.DatagramTransport, transport)

    def datagram_received(
        self, data: bytes, addr: Tuple[str, int]
    ) -> None:
        self._proxy._on_datagram(data, addr)


class _PendingQuery:
    """Bookkeeping for one outstanding ICP query round."""

    __slots__ = ("future", "outstanding", "span")

    def __init__(
        self, outstanding: Set[Tuple[str, int]], span: Span
    ) -> None:
        self.future: "asyncio.Future[Optional[Tuple[str, int]]]" = (
            asyncio.get_event_loop().create_future()
        )
        self.outstanding = outstanding
        #: The round's ``icp.round`` span; replies land as its events.
        self.span = span


class SummaryCacheProxy:
    """One prototype proxy instance.

    Parameters
    ----------
    config:
        Ports, mode, cache size, summary geometry, update threshold.
    origin_address:
        ``(host, port)`` of the origin server all misses go to.  (The
        experiments use a single origin; a resolver callable could
        replace this without touching the protocol paths.)
    """

    def __init__(
        self,
        config: ProxyConfig,
        origin_address: Tuple[str, int],
        registry: Optional[MetricsRegistry] = None,
        span_ring: Optional[SpanRing] = None,
        sanitizer: Optional[Sanitizer] = None,
    ) -> None:
        self.config = config
        self.origin_address = origin_address
        self.stats = ProxyStats()
        #: Interleaving sanitizer: explicit instance, the process-wide
        #: one when ``SC_SANITIZE=1``, else None (zero overhead).
        self._san = (
            sanitizer if sanitizer is not None else default_sanitizer()
        )
        #: Per-proxy metrics registry backing ``GET /metrics``.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m = _ProxyMetrics(self.registry, config.summary.kind)
        #: Span ring backing ``GET /trace`` and the cluster aggregator;
        #: the shared null ring when tracing is disabled (no spans
        #: retained, no trace context on any wire).
        if span_ring is not None:
            self.spans = span_ring
        elif config.trace_enabled:
            dropped = self.registry.counter(
                "trace_ring_dropped_total",
                "spans dropped from a full trace ring",
            )
            self.spans = SpanRing(
                capacity=config.trace_capacity, on_drop=dropped.inc
            )
        else:
            self.spans = NULL_SPAN_RING
        self._bodies: Dict[str, bytes] = {}
        #: The local summary plus its update bookkeeping.  The proxy
        #: never tracks a shipped copy (peers hold the remote copies),
        #: so ``track_shipped=False``.
        self._node = SummaryNode(
            config.summary,
            config.cache_capacity,
            doc_size=config.expected_doc_size,
            track_shipped=False,
        )
        self._update_policy = config.effective_update_policy()
        self._cache = WebCache(
            config.cache_capacity,
            max_object_size=config.max_object_size,
            on_insert=self._on_cache_insert,
            on_evict=self._on_cache_evict,
            # The live proxy resizes and resyncs its summary, so digests
            # stored at insert time spare a full directory re-hash then.
            store_digests=True,
        )
        #: Keep-alive connections to origins and peers, reused across
        #: sequential misses (created/reused counts feed the
        #: connection-lifecycle metric family).
        self._pool = ConnectionPool(
            max_idle_per_host=config.pool_size,
            idle_timeout=config.pool_idle_timeout,
            on_reuse=self._m.connections_reused.inc,
        )
        self._peers: Dict[Tuple[str, int], _PeerState] = {}
        self._peers_by_name: Dict[str, _PeerState] = {}
        #: This proxy's view of cluster-wide object placement.  Always
        #: maintained (membership tracking is cheap); misses route by
        #: owner only when the cooperation policy says so.
        self._placement = Placement(
            config.name,
            policy=config.cooperation,
            replication=config.replication,
        )
        if self._san is not None:
            # Wrap the shared mutable state in interleaving-check
            # guards.  The guards are structural stand-ins (full method
            # surface, extra recording), hence the casts.
            self._node = cast(
                SummaryNode,
                GuardedSummaryNode(self._node, self._san, config.name),
            )
            self._pool = cast(
                ConnectionPool,
                GuardedConnectionPool(self._pool, self._san, config.name),
            )
            self._placement = cast(
                Placement,
                GuardedPlacement(self._placement, self._san, config.name),
            )
            violations = self.registry.counter(
                "sanitizer_violations_total",
                "interleaving violations the runtime sanitizer detected",
            )
            # The process-wide sanitizer is shared by every proxy in
            # the process; count only violations on *this* proxy's
            # guarded objects (keys are "<proxy name>.<object>").
            self._san.add_listener(
                lambda v: (
                    violations.inc()
                    if v.key.startswith(config.name + ".")
                    else None
                )
            )
        self._pending: Dict[int, _PendingQuery] = {}
        self._request_counter = 0
        #: Open client-side connections, aborted on :meth:`stop` so a
        #: stopped proxy actually disappears (keep-alive handler loops
        #: would otherwise keep serving peers that pooled a connection
        #: before the listening socket closed).
        self._client_writers: Set[asyncio.StreamWriter] = set()
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._icp: Optional[_IcpProtocol] = None
        # Scrape-time gauges: evaluated when /metrics renders, free
        # between scrapes.  cache_hits/requests mirror CacheStats so a
        # scrape can be cross-checked against the in-process counters.
        g = self.registry.gauge
        g("proxy_cache_entries", "documents cached").set_function(
            lambda: len(self._cache)
        )
        g("proxy_cache_used_bytes", "bytes cached").set_function(
            lambda: self._cache.used_bytes
        )
        g("proxy_cache_capacity_bytes", "cache capacity").set_function(
            lambda: self._cache.capacity_bytes
        )
        g("proxy_cache_hits", "CacheStats fresh hits").set_function(
            lambda: self._cache.stats.hits
        )
        g("proxy_cache_requests", "CacheStats lookups").set_function(
            lambda: self._cache.stats.requests
        )
        g("proxy_cache_evictions", "CacheStats evictions").set_function(
            lambda: self._cache.stats.evictions
        )
        g("proxy_summary_fill_ratio", "own summary fill ratio").set_function(
            lambda: self._node.local.fill_ratio()
        )
        g("proxy_peers", "configured peers").set_function(
            lambda: len(self._peers)
        )
        g(
            "placement_members",
            "ring members in this proxy's placement view",
        ).set_function(lambda: len(self._placement.members))
        g("proxy_pending_queries", "outstanding ICP query rounds").set_function(
            lambda: len(self._pending)
        )
        g("proxy_pool_idle_connections", "idle pooled upstream connections").set_function(
            lambda: self._pool.total_idle
        )
        g(
            "proxy_summary_predicted_fp_rate",
            "Fig. 4 predicted false-positive rate of the local summary "
            "at its current occupancy",
        ).set_function(self._predicted_fp_rate)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the HTTP and ICP endpoints."""
        loop = asyncio.get_event_loop()
        self._http_server = await asyncio.start_server(
            self._handle_http, self.config.host, self.config.http_port
        )
        _transport, protocol = await loop.create_datagram_endpoint(
            lambda: _IcpProtocol(self),
            local_addr=(self.config.host, self.config.icp_port),
        )
        self._icp = protocol
        logger.info(
            "proxy=%s started mode=%s http_port=%d icp_port=%d",
            self.config.name,
            self.config.mode.value,
            self.http_port,
            self.icp_port,
        )

    async def stop(self) -> None:
        """Shut both endpoints down."""
        if self._http_server is not None:
            self._http_server.close()
            for writer in list(self._client_writers):
                writer.transport.abort()
            self._client_writers.clear()
            await self._http_server.wait_closed()
            self._http_server = None
        if self._icp is not None and self._icp.transport is not None:
            self._icp.transport.close()
            self._icp = None
        await self._pool.close()
        for pending in self._pending.values():
            if not pending.future.done():
                pending.future.cancel()
        self._pending.clear()
        logger.info("proxy=%s stopped", self.config.name)

    @property
    def http_port(self) -> int:
        """Bound HTTP port (valid after :meth:`start`)."""
        if self._http_server is None:
            raise ProxyError(f"{self.config.name}: proxy is not running")
        return self._http_server.sockets[0].getsockname()[1]

    @property
    def icp_port(self) -> int:
        """Bound ICP/UDP port (valid after :meth:`start`)."""
        if self._icp is None or self._icp.transport is None:
            raise ProxyError(f"{self.config.name}: proxy is not running")
        return self._icp.transport.get_extra_info("sockname")[1]

    def address(self) -> PeerAddress:
        """This proxy's address record, for handing to its peers."""
        return PeerAddress(
            name=self.config.name,
            host=self.config.host,
            http_port=self.http_port,
            icp_port=self.icp_port,
        )

    def set_peers(self, peers: List[PeerAddress]) -> None:
        """Install the neighbour set (call after all proxies started)."""
        self._peers = {peer.icp_addr: _PeerState(peer) for peer in peers}
        self._peers_by_name = {
            state.address.name: state for state in self._peers.values()
        }
        placement = Placement(
            self.config.name,
            [peer.name for peer in peers],
            policy=self.config.cooperation,
            replication=self.config.replication,
        )
        if self._san is not None:
            placement = cast(
                Placement,
                GuardedPlacement(placement, self._san, self.config.name),
            )
        self._placement = placement

    def add_peer(self, peer: PeerAddress) -> None:
        """Admit one peer at runtime (membership join).

        The placement ring is re-derived and every locally cached entry
        the newcomer now owns is invalidated (the HTTP subset has no
        push verb to migrate bodies, so displaced entries are dropped
        and re-placed by demand).  No-op for an already-known peer.
        """
        if peer.name in self._peers_by_name:
            return
        state = _PeerState(peer)
        self._peers[peer.icp_addr] = state
        self._peers_by_name[peer.name] = state
        self._rebalance("join", peer.name)

    def remove_peer(self, name: str, reason: str = "leave") -> None:
        """Retire the peer called *name* (membership leave or failure).

        By the rendezvous property a leave never displaces a survivor's
        entries; the rebalance is still recorded (span + metrics) so a
        cluster trace shows every membership transition.
        """
        state = self._peers_by_name.pop(name, None)
        if state is None:
            return
        self._peers.pop(state.address.icp_addr, None)
        self._rebalance(reason, name)

    def _rebalance(self, reason: str, member: str) -> None:
        """Apply one membership change to the placement ring.

        Emits the ``placement.rebalance`` span and increments the
        rebalance/invalidation counters; displaced cache entries are
        removed (which also clears their summary bits and bodies via
        the eviction callback).
        """
        span = self.spans.start_span(
            "placement.rebalance",
            proxy=self.config.name,
            member=member,
            reason=reason,
        )
        items = list(self._cache.digests().items())
        if reason == "join":
            displaced = self._placement.add_member(member, items)
        else:
            displaced = self._placement.remove_member(member, items)
        for url in displaced:
            self._cache.remove(url)
        self.stats.placement_rebalances += 1
        self.stats.placement_entries_invalidated += len(displaced)
        self._m.rebalances.inc()
        if displaced:
            self._m.entries_invalidated.inc(len(displaced))
        span.set(
            members=len(self._placement.members),
            invalidated=len(displaced),
        ).end()
        logger.info(
            "proxy=%s placement rebalance reason=%s member=%s "
            "members=%d invalidated=%d",
            self.config.name,
            reason,
            member,
            len(self._placement.members),
            len(displaced),
        )

    def reset_peer(self, icp_addr: Tuple[str, int]) -> None:
        """Forget a peer's summary (Squid-style failure/recovery reinit)."""
        state = self._peers.get(icp_addr)
        if state is not None:
            state.summary = None

    # ------------------------------------------------------------------
    # Summary attribution
    # ------------------------------------------------------------------

    def _predicted_fp_rate(self) -> float:
        """Fig. 4's predicted false-positive rate for the local summary.

        For a Bloom summary this is the exact ``(1-(1-1/m)^(kn))^k``
        at the summary's live geometry and the cache's current document
        count -- the number the measured false-hit ratio is compared
        against in the cluster aggregator's attribution report.  Exact
        and server-name directories have no false positives by
        construction (server-name summaries trade them for *aliasing*,
        which the measured ratio still captures), so they report 0.
        """
        local = self._node.local
        if not isinstance(local, BloomSummary):
            return 0.0
        return false_positive_probability_exact(
            local.num_bits, len(self._cache), local.config.num_hashes
        )

    def _summary_attributes(self) -> Dict[str, object]:
        """The summary representation/geometry a lookup decision used.

        Recorded on every completed ``summary.lookup`` span so a false
        hit in a fused cluster trace is attributable to the exact
        filter configuration that produced it.
        """
        attrs: Dict[str, object] = {
            "representation": self.config.summary.kind,
            "predicted_fp_rate": self._predicted_fp_rate(),
        }
        local = self._node.local
        if isinstance(local, BloomSummary):
            attrs["num_bits"] = local.num_bits
            attrs["num_hashes"] = local.config.num_hashes
            attrs["load_factor"] = self.config.summary.load_factor
        return attrs

    # ------------------------------------------------------------------
    # Cache bookkeeping
    # ------------------------------------------------------------------

    def _on_cache_insert(self, url: str) -> None:
        self._node.on_insert(url)

    def _on_cache_evict(self, url: str) -> None:
        self._node.on_evict(url)
        self._bodies.pop(url, None)

    def _store(self, url: str, body: bytes) -> None:
        """Admit a fetched document and maybe broadcast an update."""
        self._bodies[url] = body
        self._cache.put(url, len(body))
        if url not in self._cache:
            self._bodies.pop(url, None)  # rejected (too large)
        if self.config.mode is ProxyMode.SC_ICP:
            self._maybe_resize_summary()
            self._maybe_broadcast_update()

    def _maybe_resize_summary(self) -> None:
        """Rebuild the summary when the cache outruns its expected size.

        A Bloom summary was sized for ``cache_capacity /
        expected_doc_size`` documents; if the cache holds far more
        (documents smaller than anticipated), the effective load factor
        -- and with it the false-hit rate at every peer -- degrades.
        Rebuilding at double the bits from the live directory restores
        it; peers resync via a whole-filter digest (a delta cannot
        describe a geometry change).  Set representations never report
        themselves overloaded, so this is a no-op for them.
        """
        threshold = self.config.resize_threshold
        if threshold <= 0:
            return
        if not self._node.local.overloaded(len(self._cache), threshold):
            return
        self._node.rebuild(
            self._cache.urls(), perf_counter(), digests=self._cache.digests()
        )
        self.stats.summary_resizes += 1
        self._m.summary_resizes.inc()
        logger.info(
            "proxy=%s summary resized to %d bits (%d cached documents)",
            self.config.name,
            getattr(self._node.local, "num_bits", 0),
            len(self._cache),
        )
        self._broadcast_digest()

    def _broadcast_digest(self) -> None:
        """Ship the whole summary to every peer (resync after a resize)."""
        if not self._peers or self._icp is None:
            return
        transport = self._icp.transport
        messages = codec.whole_summary_messages(
            self._node.local, mtu=self.config.mtu
        )
        for peer_addr, state in self._peers.items():
            if not state.alive:
                continue
            for message in messages:
                transport.sendto(message.encode(), peer_addr)
                self.stats.dirupdates_sent += 1
                self.stats.udp_sent += 1
                self._m.dirupdates_sent.inc()
                self._m.udp_sent.inc()

    def _maybe_broadcast_update(self) -> None:
        now = perf_counter()
        if not self._node.due_for_update(
            self._update_policy, now, len(self._cache)
        ):
            return
        delta = self._node.publish(now)
        if delta.is_empty() or not self._peers or self._icp is None:
            return
        drain_span = self.spans.start_span(
            "dirupdate.drain",
            proxy=self.config.name,
            records=delta.change_count,
            representation=self.config.summary.kind,
            encoding=self.config.update_encoding,
            peers=sum(1 for s in self._peers.values() if s.alive),
        )
        if self.config.update_encoding == "digest":
            # Squid cache-digest style: ship the whole bit array.
            messages = codec.whole_summary_messages(
                self._node.local, mtu=self.config.mtu
            )
        else:
            messages = codec.delta_messages(
                self._node.local, delta, mtu=self.config.mtu
            )
        transport = self._icp.transport
        for peer_addr, state in self._peers.items():
            if not state.alive:
                continue
            for message in messages:
                transport.sendto(message.encode(), peer_addr)
                self.stats.dirupdates_sent += 1
                self.stats.udp_sent += 1
                self._m.dirupdates_sent.inc()
                self._m.udp_sent.inc()
        drain_span.set(messages=len(messages)).end()
        logger.debug(
            "proxy=%s dirupdate drained records=%d messages=%d",
            self.config.name,
            delta.change_count,
            len(messages),
        )

    # ------------------------------------------------------------------
    # ICP datagram path
    # ------------------------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.stats.udp_received += 1
        self._m.udp_received.inc()
        try:
            message = decode_message(data)
        except ProtocolError:
            return  # garbage on the wire is dropped, never fatal
        if isinstance(message, IcpQuery):
            self._handle_query(message, addr)
        elif isinstance(message, (IcpHit, IcpMiss)):
            self._handle_reply(message, addr)
        elif isinstance(message, (DirUpdate, SetDirUpdate)):
            self._handle_dir_update(message, addr)
        elif isinstance(message, DigestChunk):
            self._handle_digest_chunk(message, addr)

    def _handle_query(
        self, query: IcpQuery, addr: Tuple[str, int]
    ) -> None:
        self.stats.icp_queries_received += 1
        self._m.icp_queries_received.inc()
        if self._icp is None or self._icp.transport is None:
            return
        hit = query.url in self._cache
        if query.trace_id:
            # The datagram carried trace context (Options/Option Data),
            # so this peer's verdict joins the originating request's
            # trace -- the cross-process link the cluster aggregator
            # reassembles.
            self.spans.start_span(
                "icp.query",
                trace_id=query.trace_id,
                parent_id=query.parent_span,
                proxy=self.config.name,
                url=query.url,
                hit=hit,
            ).end()
        reply: Union[IcpHit, IcpMiss]
        if hit:
            reply = IcpHit(
                url=query.url, request_number=query.request_number
            )
        else:
            reply = IcpMiss(
                url=query.url, request_number=query.request_number
            )
        self._icp.transport.sendto(reply.encode(), addr)
        self.stats.icp_replies_sent += 1
        self.stats.udp_sent += 1
        self._m.icp_replies_sent.inc()
        self._m.udp_sent.inc()

    def _handle_reply(
        self, reply: Union[IcpHit, IcpMiss], addr: Tuple[str, int]
    ) -> None:
        self.stats.icp_replies_received += 1
        self._m.icp_replies_received.inc()
        pending = self._pending.get(reply.request_number)
        if pending is None or pending.future.done():
            return
        pending.span.add_event(
            "icp.reply",
            peer=f"{addr[0]}:{addr[1]}",
            hit=isinstance(reply, IcpHit),
        )
        if isinstance(reply, IcpHit):
            pending.future.set_result(addr)
            return
        pending.outstanding.discard(addr)
        if not pending.outstanding:
            pending.future.set_result(None)

    def _handle_dir_update(
        self,
        update: Union[DirUpdate, SetDirUpdate],
        addr: Tuple[str, int],
    ) -> None:
        """Patch the sender's remote copy from a (Set)DirUpdate.

        A mismatched update -- wrong representation, or a Bloom delta
        whose geometry disagrees with the copy (the peer resized and
        this datagram predates the digest resync) -- is rejected
        cleanly: the copy is left untouched and the peer's digest (or
        pending-everything delta after a set rebuild) resynchronizes it.
        """
        self.stats.dirupdates_received += 1
        self._m.dirupdates_received.inc()
        state = self._peers.get(addr)
        if state is None:
            return  # update from an unconfigured peer
        try:
            state.summary, changed = codec.apply_update(
                state.summary, update
            )
        except SummaryMismatchError as exc:
            self.stats.dirupdate_rejects += 1
            self._m.dirupdate_rejects.inc()
            self.spans.start_span(
                "dirupdate.reject",
                proxy=self.config.name,
                peer=state.address.name,
                reason=str(exc),
            ).end(status="error")
            logger.debug(
                "proxy=%s rejected dirupdate from peer=%s: %s",
                self.config.name,
                state.address.name,
                exc,
            )
            return
        self.spans.start_span(
            "dirupdate.apply",
            proxy=self.config.name,
            peer=state.address.name,
            records=update.change_count,
            changed=changed,
        ).end()

    def _handle_digest_chunk(
        self, chunk: DigestChunk, addr: Tuple[str, int]
    ) -> None:
        """Feed a whole-filter chunk to the peer's reassembler."""
        self.stats.dirupdates_received += 1
        self._m.dirupdates_received.inc()
        state = self._peers.get(addr)
        if state is None:
            return
        completed = state.assembler.add(chunk)
        if completed is not None:
            state.summary = BloomRemote(completed)
            self.spans.start_span(
                "digest.apply",
                proxy=self.config.name,
                peer=state.address.name,
                bits=completed.num_bits,
            ).end()

    # ------------------------------------------------------------------
    # HTTP path
    # ------------------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection's request loop (keep-alive).

        Requests are read and answered strictly in order, so a
        pipelining client gets its responses in request order; the
        read-ahead is bounded by the stream buffers, and
        ``max_requests_per_connection`` (when set) forces a
        ``Connection: close`` after that many responses.  The loop ends
        on ``Connection: close``, clean client EOF, the idle timeout,
        or a framing error (answered with a final 400).
        """
        self._m.connections_open.inc()
        self._client_writers.add(writer)
        writer.transport.set_write_buffer_limits(
            high=self.config.max_inflight_bytes
        )
        served = 0
        try:
            while True:
                try:
                    if self.config.idle_timeout > 0:
                        request = await asyncio.wait_for(
                            read_request(reader),
                            timeout=self.config.idle_timeout,
                        )
                    else:
                        request = await read_request(reader)
                except asyncio.TimeoutError:
                    break  # idle (or glacially slow) connection reaped
                except ProtocolError:
                    write_response(writer, 400, keep_alive=False)
                    await writer.drain()
                    break
                if request is None:
                    break  # client finished its keep-alive conversation
                served += 1
                keep_alive = request.keep_alive
                if (
                    self.config.max_requests_per_connection > 0
                    and served >= self.config.max_requests_per_connection
                ):
                    keep_alive = False
                # SC007 pairs reads in one dispatched handler with
                # writes in the *next* iteration's handler; each
                # iteration is an independent request that is supposed
                # to see the then-current state, so the cross-request
                # "window" is serial request handling, not a race.
                if request.url == "/__stats__":
                    await self._serve_stats(writer, keep_alive)
                elif request.url.partition("?")[0] == "/metrics":
                    await self._serve_metrics(request, writer, keep_alive)
                elif request.url.partition("?")[0] == "/trace":
                    await self._serve_trace(request, writer, keep_alive)
                elif request.header("x-only-if-cached"):
                    await self._serve_peer(  # sc-lint: disable=SC007
                        request, writer, keep_alive
                    )
                elif request.header("x-sc-forward"):
                    await self._serve_forward(  # sc-lint: disable=SC007
                        request, writer, keep_alive
                    )
                else:
                    await self._serve_client(  # sc-lint: disable=SC007
                        request, writer, keep_alive
                    )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._m.connections_open.dec()
            self._client_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_stats(
        self, writer: asyncio.StreamWriter, keep_alive: bool = False
    ) -> None:
        """Serve the admin endpoint: counters and cache state as JSON."""
        payload = dict(asdict(self.stats))
        payload.update(
            {
                "name": self.config.name,
                "mode": self.config.mode.value,
                "cache_entries": len(self._cache),
                "cache_used_bytes": self._cache.used_bytes,
                "cache_capacity_bytes": self._cache.capacity_bytes,
                "summary_fill_ratio": self._node.local.fill_ratio(),
                "summary_representation": self.config.summary.kind,
                "peers": len(self._peers),
                "cooperation": self.config.cooperation.value,
                "placement_members": list(self._placement.members),
            }
        )
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        write_response(
            writer,
            200,
            body,
            headers={"Content-Type": "application/json"},
            keep_alive=keep_alive,
        )
        await writer.drain()

    async def _serve_metrics(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        keep_alive: bool = False,
    ) -> None:
        """Serve the registry: Prometheus text, or JSON on request.

        ``GET /metrics`` returns the text exposition format;
        ``GET /metrics?format=json`` (or an ``Accept: application/json``
        header) returns the JSON snapshot with the proxy's identity and
        the most recent trace events attached.
        """
        query = request.url.partition("?")[2]
        wants_json = (
            "format=json" in query
            or "json" in request.header("accept")
        )
        if wants_json:
            body = render_json(
                self.registry,
                name=self.config.name,
                mode=self.config.mode.value,
                spans=self.spans.as_dicts()[-64:],
                trace_ring_dropped=self.spans.dropped,
            ).encode("utf-8")
            content_type = "application/json"
        else:
            body = render_prometheus(self.registry).encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        write_response(
            writer,
            200,
            body,
            headers={"Content-Type": content_type},
            keep_alive=keep_alive,
        )
        await writer.drain()

    async def _serve_trace(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        keep_alive: bool = False,
    ) -> None:
        """Serve the span ring as JSON (the cluster aggregator's feed).

        ``GET /trace`` returns every retained span, oldest first;
        ``GET /trace?trace=<8-hex-id>`` filters to one trace.
        """
        query = request.url.partition("?")[2]
        spans = self.spans.as_dicts()
        for part in query.split("&"):
            key, sep, value = part.partition("=")
            if key == "trace" and sep:
                wanted = value.lower()
                spans = [s for s in spans if s["trace_id"] == wanted]
        payload = {
            "name": self.config.name,
            "enabled": self.spans.enabled,
            "capacity": self.spans.capacity,
            "dropped": self.spans.dropped,
            "spans": spans,
        }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        write_response(
            writer,
            200,
            body,
            headers={"Content-Type": "application/json"},
            keep_alive=keep_alive,
        )
        await writer.drain()

    async def _serve_peer(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        keep_alive: bool = False,
    ) -> None:
        """Serve a proxy-to-proxy fetch: cache or 504, never recurse."""
        body = self._lookup_local(request.url)
        ctx = TraceContext.parse(request.header(TRACE_HEADER))
        if ctx is not None:
            # The fetching proxy put its peer.fetch context on the
            # request, so this side's verdict joins the same trace.
            self.spans.start_span(
                "peer.serve",
                trace_id=ctx.trace_id,
                parent_id=ctx.span_id,
                proxy=self.config.name,
                url=request.url,
                hit=body is not None,
            ).end()
        if body is None:
            write_response(
                writer, 504, headers={"X-Cache": "MISS"},
                keep_alive=keep_alive,
            )
        else:
            self.stats.peer_served_requests += 1
            self._m.peer_served.inc()
            await self._stream_response(
                writer, body, {"X-Cache": "HIT"}, keep_alive
            )
        await writer.drain()

    async def _serve_forward(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        keep_alive: bool = False,
    ) -> None:
        """Serve a placement-routed peer fetch (the owner side).

        The requester marked the request with ``X-SC-Forward``, so this
        proxy is (in the requester's view) the URL's owner: serve from
        cache, or fetch the origin and store -- but **never re-forward**,
        so a membership-view disagreement between proxies cannot loop a
        request around the ring.  An origin failure answers 502 to the
        *peer* (which falls back to its own origin path); clients never
        see it.
        """
        url = request.url
        requester = request.header("x-sc-forward")
        ctx = TraceContext.parse(request.header(TRACE_HEADER))
        # The with-statement ends the span on *every* exit -- including
        # a client disconnect cancelling this handler mid-await -- so a
        # dropped peer request never strands a live span in the ring.
        with self.spans.start_span(
            "peer.serve",
            trace_id=ctx.trace_id if ctx is not None else None,
            parent_id=ctx.span_id if ctx is not None else 0,
            proxy=self.config.name,
            url=url,
            requester=requester,
            forwarded=True,
        ) as span:
            if self._san is not None:
                self._san.begin_request(
                    format_id(span.trace_id) if span.trace_id else ""
                )
            body = self._lookup_local(url)
            source = "HIT"
            if body is None:
                source = "MISS"
                try:
                    body = await self._fetch_from_origin(
                        url, request.header("x-size"), span
                    )
                except (
                    ProxyError, ConnectionError, ProtocolError, OSError
                ):
                    span.set(source=source).end(status="error")
                    write_response(
                        writer,
                        502,
                        headers={OWNER_HEADER: self.config.name},
                        keep_alive=keep_alive,
                    )
                    await writer.drain()
                    return
                # Concurrent misses for the same URL each fetch and
                # store; the store is idempotent over identical origin
                # bodies, so the lost-update SC007 sees is benign
                # (collapsing duplicate fetches is a deliberate
                # non-goal for idempotent GETs).
                self._store(url, body)  # sc-lint: disable=SC007
            self.stats.peer_served_requests += 1
            self._m.peer_served.inc()
            span.set(source=source, bytes=len(body)).end()
        await self._stream_response(
            writer,
            body,
            {"X-Cache": source, OWNER_HEADER: self.config.name},
            keep_alive,
        )
        await writer.drain()

    async def _serve_client(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        keep_alive: bool = False,
    ) -> None:
        self.stats.http_requests += 1
        self._m.http_requests.inc()
        url = request.url
        size_hint = request.header("x-size")
        # The root span of this request's trace: continue the client's
        # context when the request carried an X-SC-Trace header, start a
        # fresh trace otherwise.  (With tracing disabled this is the
        # null span, whose zero trace id suppresses every propagation
        # site below.)
        ctx = TraceContext.parse(request.header(TRACE_HEADER))
        with self.spans.start_span(
            "http.request",
            trace_id=ctx.trace_id if ctx is not None else None,
            parent_id=ctx.span_id if ctx is not None else 0,
            proxy=self.config.name,
            url=url,
        ) as root:
            if self._san is not None:
                # New logical scope (read markers from the previous
                # request on this keep-alive task are not ours), plus
                # trace attribution for any violation we cause.
                self._san.begin_request(
                    format_id(root.trace_id) if root.trace_id else ""
                )
            start = perf_counter()

            body = self._lookup_local(url)
            source = "HIT"
            if body is None:
                # Two tasks missing on the same URL race to fetch and
                # store; the duplicate store of an identical body is
                # benign for idempotent GETs (see _serve_forward), so
                # the miss is deliberately not single-flighted.
                body, source = await self._miss_path(  # sc-lint: disable=SC007
                    url, size_hint, root
                )
            else:
                self.stats.local_hits += 1
                self._m.local_hits.inc()

            self.stats.bytes_served += len(body)
            self._m.bytes_served.inc(len(body))
            self._m.phase_seconds["total"].observe(perf_counter() - start)
            root.add_event("http.served", source=source, bytes=len(body))
            root.set(source=source, bytes=len(body)).end()
        headers = {"X-Cache": source}
        if root.trace_id:
            # Echo the trace context so the client learns which trace
            # its request joined (the load driver records it).
            headers[TRACE_HEADER] = root.context().header_value()
        await self._stream_response(writer, body, headers, keep_alive)
        await writer.drain()

    async def _stream_response(
        self,
        writer: asyncio.StreamWriter,
        body: bytes,
        headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        """Write a 200 head, then stream *body* with backpressure.

        The body bytes travel as memoryview slices over the cached
        object -- no per-response copy -- and ``drain()`` is awaited
        whenever more than ``max_inflight_bytes`` sit unsent, so a slow
        client bounds its own buffer instead of the proxy's heap.
        """
        writer.write(response_head(200, len(body), headers, keep_alive))
        waits = await stream_body(
            writer,
            body,
            chunk_size=self.config.stream_chunk_bytes,
            max_inflight=self.config.max_inflight_bytes,
        )
        if waits:
            self._m.backpressure_waits.inc(waits)

    def _lookup_local(self, url: str) -> Optional[bytes]:
        entry = self._cache.get(url)
        if entry is None:
            return None
        body = self._bodies.get(url)
        if body is None:  # cache/body desync would be a bug
            self._cache.remove(url)
            return None
        return body

    async def _miss_path(
        self, url: str, size_hint: str, parent: Span = NULL_SPAN
    ) -> Tuple[bytes, str]:
        """Resolve a local miss via peers (per mode) then the origin.

        The ``summary.lookup`` span records the attribution trail: which
        summary representation and geometry produced the peer-candidate
        decision, and how the round resolved (``remote_hit``,
        ``false_hit``, ``fetch_failed``, or ``no_candidates``).

        Under owner-routing cooperation (``carp``) there is no
        discovery at all: the miss forwards deterministically to the
        URL's placement owner instead.
        """
        if self._placement.policy.routes_by_owner:
            # _owner_path re-validates Placement.version after every
            # awaited forward before acting on its routing verdict, so
            # the membership writes SC007 sees here are freshness-
            # checked inside the callee.
            return await self._owner_path(  # sc-lint: disable=SC007
                url, size_hint, parent
            )
        candidates = self._candidate_peers(url)
        attrs = self._summary_attributes() if self.spans.enabled else {}
        with self.spans.start_span(
            "summary.lookup",
            trace_id=parent.trace_id or None,
            parent_id=parent.span_id,
            proxy=self.config.name,
            url=url,
            candidates=len(candidates),
            **attrs,
        ) as lookup:
            outcome = "no_candidates"
            if candidates:
                holder = await self._query_peers(url, candidates, lookup)
                if holder is not None:
                    fetch_start = perf_counter()
                    body = await self._fetch_from_peer(
                        holder, url, size_hint, lookup
                    )
                    self._m.phase_seconds["peer_fetch"].observe(
                        perf_counter() - fetch_start
                    )
                    if body is not None:
                        self.stats.remote_hits += 1
                        self._m.remote_hits.inc()
                        lookup.set(
                            outcome="remote_hit", peer=holder.address.name
                        ).end()
                        # Single-copy cooperation leaves the document at
                        # the serving peer (whose copy the fetch just
                        # touched); summary cooperation caches it
                        # locally.
                        if self._placement.policy.caches_remote_hits:
                            # Duplicate store of an identical body by
                            # concurrent misses is benign (idempotent
                            # GETs, no single-flight by design).
                            self._store(url, body)  # sc-lint: disable=SC007
                        return body, "REMOTE-HIT"
                    self.stats.remote_fetch_failures += 1
                    self._m.remote_fetch_failures.inc()
                    outcome = "fetch_failed"
                    lookup.set(peer=holder.address.name)
                else:
                    # False-hit resolution: the summaries (or the query
                    # round) promised a copy nobody actually held.
                    self.stats.false_query_rounds += 1
                    self._m.false_hits.inc()
                    outcome = "false_hit"
            lookup.set(outcome=outcome).end()

        fetch_start = perf_counter()
        body = await self._fetch_from_origin(url, size_hint, parent)
        self._m.phase_seconds["origin_fetch"].observe(
            perf_counter() - fetch_start
        )
        # Benign duplicate store under concurrent same-URL misses (see
        # the remote-hit branch above).
        self._store(url, body)  # sc-lint: disable=SC007
        return body, "MISS"

    async def _owner_path(
        self, url: str, size_hint: str, parent: Span = NULL_SPAN
    ) -> Tuple[bytes, str]:
        """Resolve a miss by forwarding to the URL's placement owner.

        The replica set (owner first, then deterministic failover
        order) comes from the rendezvous ring over the URL's interned
        digest.  When this proxy is in the set, the document is ours:
        fetch the origin and store.  Otherwise forward to the first
        reachable replica with the ``X-SC-Forward`` marker; a replica
        that cannot be reached is treated as departed -- the ring is
        rebalanced (span + metrics) and the next replica under the
        *new* ring is tried.  The loop strictly shrinks the membership,
        so it terminates at this proxy alone in the worst case; the
        origin is the final fallback either way, and the client never
        sees a 5xx for a peer failure.
        """
        digest = md5_digest(url)
        while True:
            replicas = self._placement.replicas(digest)
            routed_version = self._placement.version
            if self.config.name in replicas:
                break  # ours: fall through to the origin fetch + store
            verdict, body, owner_source = await self._forward_to_owner(
                replicas[0], url, size_hint, parent
            )
            if verdict == "ok":
                source = (
                    "REMOTE-HIT" if owner_source == "HIT" else "MISS"
                )
                if source == "REMOTE-HIT":
                    self.stats.remote_hits += 1
                    self._m.remote_hits.inc()
                if self._placement.policy.caches_remote_hits:
                    self._store(url, body)
                return body, source
            self.stats.peer_forward_failures += 1
            self._m.peer_forward_failures.inc()
            if verdict == "error":
                break  # owner is up but erroring: go to the origin
            # The owner is gone (connection refused/reset): rebalance
            # and retry under the shrunken ring.  The "gone" verdict
            # describes the membership we routed under; if the ring
            # changed during the awaited forward (the peer rejoined, or
            # another task already rebalanced), the verdict is stale --
            # evicting now could remove a healthy member.  Re-route
            # under the fresh ring instead.
            if self._placement.version == routed_version:
                # The version check above is the freshness guard: every
                # membership mutation (peer tables + ring) bumps
                # Placement.version, so reaching here means the peer
                # state the verdict was routed under is still current.
                self.remove_peer(  # sc-lint: disable=SC007
                    replicas[0], reason="failure"
                )

        fetch_start = perf_counter()
        body = await self._fetch_from_origin(url, size_hint, parent)
        self._m.phase_seconds["origin_fetch"].observe(
            perf_counter() - fetch_start
        )
        # Store only when this proxy belongs to the replica set -- the
        # degraded path (owner up but erroring) served the client from
        # the origin without creating an off-placement duplicate.
        if self.config.name in self._placement.replicas(digest):
            self._store(url, body)
        return body, "MISS"

    async def _forward_to_owner(
        self,
        owner: str,
        url: str,
        size_hint: str,
        parent: Span = NULL_SPAN,
    ) -> Tuple[str, bytes, str]:
        """One marked fetch to *owner*.

        Returns ``(verdict, body, owner_source)``: verdict ``"ok"``
        with the body and the owner's ``X-Cache`` verdict (``HIT`` from
        its cache, ``MISS`` fetched from the origin on our behalf);
        ``"gone"`` when the peer cannot be reached at all (the caller
        rebalances and fails over); ``"error"`` when the peer answered
        but could not serve (its own origin path failed) -- the caller
        goes to the origin itself, never surfacing a 5xx to the client.
        """
        state = self._peers_by_name.get(owner)
        if state is None or not state.alive:
            return "gone", b"", ""
        with self.spans.start_span(
            "peer.forward",
            trace_id=parent.trace_id or None,
            parent_id=parent.span_id,
            proxy=self.config.name,
            peer=owner,
            url=url,
        ) as span:
            headers = {FORWARD_HEADER: self.config.name}
            if size_hint:
                headers["X-Size"] = size_hint
            if span.trace_id:
                headers[TRACE_HEADER] = span.context().header_value()
            self.stats.peer_forwards += 1
            self._m.peer_forwards.inc()
            fetch_start = perf_counter()
            try:
                response = await self._fetch(
                    state.address.host, state.address.http_port, url,
                    headers, span,
                )
            except (ConnectionError, ProtocolError, OSError):
                span.end(status="error")
                return "gone", b"", ""
            finally:
                self._m.phase_seconds["peer_fetch"].observe(
                    perf_counter() - fetch_start
                )
            if response.status != 200:
                span.set(status_code=response.status).end(status="error")
                return "error", b"", ""
            owner_source = response.header("x-cache", "MISS").upper()
            span.set(bytes=len(response.body), source=owner_source).end()
            return "ok", response.body, owner_source

    def _candidate_peers(self, url: str) -> List[_PeerState]:
        """Which peers to query for *url*, per the cooperation mode."""
        if self.config.mode is ProxyMode.NO_ICP or not self._peers:
            return []
        alive = [s for s in self._peers.values() if s.alive]
        if self.config.mode is ProxyMode.ICP:
            return alive
        return [
            s
            for s in alive
            if s.summary is not None and s.summary.may_contain(url)
        ]

    async def _query_peers(
        self,
        url: str,
        candidates: List[_PeerState],
        parent: Span = NULL_SPAN,
    ) -> Optional[_PeerState]:
        """Send ICP queries; return the first peer replying HIT.

        The round's ``icp.round`` span is what the queried peers join:
        its ids travel in the query datagram's Options/Option Data
        fields, and each reply lands as an ``icp.reply`` event on it.
        """
        if self._icp is None or self._icp.transport is None:
            return None
        self._request_counter += 1
        reqnum = self._request_counter & 0xFFFFFFFF
        outstanding = {s.address.icp_addr for s in candidates}
        with self.spans.start_span(
            "icp.round",
            trace_id=parent.trace_id or None,
            parent_id=parent.span_id,
            proxy=self.config.name,
            url=url,
            peers=len(candidates),
            reqnum=reqnum,
        ) as round_span:
            pending = _PendingQuery(outstanding, round_span)
            self._pending[reqnum] = pending
            transport = self._icp.transport
            query = IcpQuery(
                url=url,
                request_number=reqnum,
                trace_id=round_span.trace_id,
                parent_span=round_span.span_id,
            )
            encoded = query.encode()
            round_span.add_event("icp.query.sent", peers=len(candidates))
            for state in candidates:
                transport.sendto(encoded, state.address.icp_addr)
                self.stats.icp_queries_sent += 1
                self.stats.udp_sent += 1
                self._m.icp_queries_sent.inc()
                self._m.udp_sent.inc()
            round_start = perf_counter()
            try:
                winner_addr = await asyncio.wait_for(
                    pending.future, timeout=self.config.icp_timeout
                )
            except asyncio.TimeoutError:
                winner_addr = None
                self._m.icp_timeouts.inc()
                round_span.add_event(
                    "icp.timeout", waited=self.config.icp_timeout
                )
                logger.warning(
                    "proxy=%s icp query timeout url=%s peers=%d trace=%s",
                    self.config.name,
                    url,
                    len(candidates),
                    format_id(round_span.trace_id),
                )
            finally:
                self._pending.pop(reqnum, None)
                self._m.phase_seconds["icp_round"].observe(
                    perf_counter() - round_start
                )
            if winner_addr is None:
                round_span.set(hit=False).end()
                return None
            round_span.set(hit=True).end()
            return self._peers.get(winner_addr)

    async def _fetch_from_peer(
        self,
        peer: _PeerState,
        url: str,
        size_hint: str,
        parent: Span = NULL_SPAN,
    ) -> Optional[bytes]:
        """HTTP-fetch a remote hit; ``None`` if the peer no longer has it."""
        headers = {"X-Only-If-Cached": "1"}
        if size_hint:
            headers["X-Size"] = size_hint
        with self.spans.start_span(
            "peer.fetch",
            trace_id=parent.trace_id or None,
            parent_id=parent.span_id,
            proxy=self.config.name,
            peer=peer.address.name,
            url=url,
        ) as span:
            if span.trace_id:
                headers[TRACE_HEADER] = span.context().header_value()
            try:
                response = await self._fetch(
                    peer.address.host, peer.address.http_port, url,
                    headers, span,
                )
            except (ConnectionError, ProtocolError, OSError):
                span.end(status="error")
                return None
            if response.status != 200:
                span.set(status_code=response.status).end(status="error")
                return None
            span.set(bytes=len(response.body)).end()
            return response.body

    async def _fetch_from_origin(
        self, url: str, size_hint: str, parent: Span = NULL_SPAN
    ) -> bytes:
        headers = {"X-Size": size_hint} if size_hint else {}
        self.stats.origin_fetches += 1
        self._m.origin_fetches.inc()
        with self.spans.start_span(
            "origin.fetch",
            trace_id=parent.trace_id or None,
            parent_id=parent.span_id,
            proxy=self.config.name,
            url=url,
        ) as span:
            if span.trace_id:
                headers[TRACE_HEADER] = span.context().header_value()
            try:
                response = await self._fetch(
                    self.origin_address[0], self.origin_address[1], url,
                    headers, span,
                )
            except (ConnectionError, ProtocolError, OSError):
                span.end(status="error")
                raise
            if response.status != 200:
                span.set(status_code=response.status).end(status="error")
                raise ProxyError(
                    f"origin returned {response.status} for {url!r}"
                )
            span.set(bytes=len(response.body)).end()
            return response.body

    async def _fetch(
        self,
        host: str,
        port: int,
        url: str,
        headers: Dict[str, str],
        span: Span = NULL_SPAN,
    ) -> HttpResponse:
        """One upstream GET over a pooled keep-alive connection.

        A pooled connection may have been closed by the upstream while
        idle, so an exchange that fails on a *reused* connection is
        retried on the next one; each stale connection is consumed from
        the idle list, so the loop terminates with a fresh socket whose
        failure is genuine and propagates.
        """
        if self.config.pool_size <= 0:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                write_request(writer, url, headers, keep_alive=False)
                await writer.drain()
                return await read_response(reader)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, asyncio.CancelledError):
                    pass
        while True:
            conn = await self._pool.acquire(host, port)
            span.add_event(
                "pool.acquire",
                upstream=f"{host}:{port}",
                reused=conn.was_reused,
            )
            try:
                response = await self._exchange(conn, url, headers)
            except (ConnectionError, ProtocolError, OSError):
                self._pool.release(conn, reusable=False)
                if not conn.was_reused:
                    raise
                continue  # stale pooled connection; try the next one
            except BaseException:
                # Cancellation (or any other non-I/O exception) lands
                # between acquire and release: the exchange is
                # half-finished, so the socket must not be reused --
                # but it must go back through release() or it leaks.
                self._pool.release(conn, reusable=False)
                raise
            self._pool.release(conn, reusable=response.keep_alive)
            return response

    async def _exchange(
        self, conn: PooledConnection, url: str, headers: Dict[str, str]
    ) -> HttpResponse:
        """One request/response round trip on an open connection."""
        write_request(conn.writer, url, headers, keep_alive=True)
        await conn.writer.drain()
        return await read_response(conn.reader)

    # ------------------------------------------------------------------
    # Introspection used by tests and benchmarks
    # ------------------------------------------------------------------

    @property
    def cache(self) -> WebCache:
        """The document cache (read-only use expected)."""
        return self._cache

    @property
    def summary(self) -> LocalSummary:
        """This proxy's own local summary."""
        return self._node.local

    @property
    def placement(self) -> Placement:
        """This proxy's placement view (read-only use expected)."""
        return self._placement

    def peer_summary(
        self, icp_addr: Tuple[str, int]
    ) -> Optional[RemoteSummary]:
        """The current summary copy held for the peer at *icp_addr*."""
        state = self._peers.get(icp_addr)
        return state.summary if state else None
